//! Test-run configuration and failure reporting.

/// Mirror of `proptest::test_runner::Config` for the fields the workspace
/// touches. Extra fields exist only so struct-update syntax
/// (`..ProptestConfig::default()`) has something to fill in.
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for parity; the shim never persists failures.
    pub failure_persistence: Option<Box<dyn std::any::Any>>,
    /// Accepted for parity; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 128,
            failure_persistence: None,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Prints which case failed when a test body panics (the shim's substitute
/// for shrinking + persistence: the seed is derived from the test name and
/// case index, so the printed case number is enough to reproduce).
pub struct CaseGuard {
    name: &'static str,
    case: u32,
    passed: bool,
}

impl CaseGuard {
    pub fn new(name: &'static str, case: u32) -> Self {
        CaseGuard {
            name,
            case,
            passed: false,
        }
    }

    pub fn passed(mut self) {
        self.passed = true;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if !self.passed && std::thread::panicking() {
            eprintln!(
                "proptest-shim: {} failed at case {} (deterministic; rerun reproduces it)",
                self.name, self.case
            );
        }
    }
}
