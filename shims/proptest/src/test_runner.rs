//! Test-run configuration and failure reporting.

/// Mirror of `proptest::test_runner::Config` for the fields the workspace
/// touches. Extra fields exist only so struct-update syntax
/// (`..ProptestConfig::default()`) has something to fill in.
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for parity; the shim never persists failures.
    pub failure_persistence: Option<Box<dyn std::any::Any>>,
    /// Accepted for parity; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    /// Mirrors upstream proptest: the `PROPTEST_CASES` environment variable
    /// overrides the built-in case count, so CI can elevate coverage
    /// (`PROPTEST_CASES=256 cargo test ...`) without touching test sources.
    /// An explicit `cases:` in struct-update syntax still wins, as upstream;
    /// tests that want to stay env-tunable should use
    /// [`ProptestConfig::env_cases`] for their override.
    fn default() -> Self {
        ProptestConfig {
            cases: Self::env_cases(128),
            failure_persistence: None,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: Self::env_cases(cases),
            ..ProptestConfig::default()
        }
    }

    /// The `PROPTEST_CASES` environment override, or `fallback` when the
    /// variable is unset or unparsable. Used by [`Default`] and
    /// [`ProptestConfig::with_cases`]; also available to tests that spell
    /// out a custom per-test count but still want CI to be able to raise it.
    pub fn env_cases(fallback: u32) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(fallback)
    }
}

/// Prints which case failed when a test body panics (the shim's substitute
/// for shrinking + persistence: the seed is derived from the test name and
/// case index, so the printed case number is enough to reproduce).
pub struct CaseGuard {
    name: &'static str,
    case: u32,
    passed: bool,
}

impl CaseGuard {
    pub fn new(name: &'static str, case: u32) -> Self {
        CaseGuard {
            name,
            case,
            passed: false,
        }
    }

    pub fn passed(mut self) {
        self.passed = true;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if !self.passed && std::thread::panicking() {
            eprintln!(
                "proptest-shim: {} failed at case {} (deterministic; rerun reproduces it)",
                self.name, self.case
            );
        }
    }
}
