//! `option::of`: `Some` three times out of four, like the real crate's
//! default probability.

use crate::rng::TestRng;
use crate::strategy::Strategy;

pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.chance(3, 4) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
