//! `collection::vec`: vectors with a random length from a size range.

use std::ops::Range;

use crate::rng::TestRng;
use crate::strategy::Strategy;

#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    start: usize,
    /// Exclusive.
    end: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            start: range.start,
            end: range.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            start: exact,
            end: exact + 1,
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
