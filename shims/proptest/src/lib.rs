//! Offline shim for `proptest`: a small but *real* property-testing
//! framework implementing the API surface this workspace uses.
//!
//! What works like the real crate:
//! - `proptest! { ... }` with typed parameters (`x: u32`) and strategy
//!   parameters (`x in strat`), mixed freely, plus
//!   `#![proptest_config(...)]`,
//! - `Strategy` with `prop_map`, `prop_recursive`, `boxed`; strategies for
//!   integer/float ranges, tuples, `Just`, `any::<T>()`,
//!   `collection::vec`, `sample::select`, `option::of`, and simple
//!   `"[a-z]{m,n}"` string patterns,
//! - `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`,
//! - deterministic seeding: every (test, case) pair derives its seed from
//!   the test's module path and name, so runs are reproducible; set
//!   `PROPTEST_SHIM_SEED` to perturb all streams at once.
//!
//! What is intentionally missing: shrinking (a failing case panics with
//! its case number; rerun reproduces it exactly), persistence files, and
//! the full strategy combinator zoo.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod rng;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    /// The real prelude exposes the crate root as `prop` (for paths like
    /// `prop::collection::vec`).
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The `proptest!` macro: each contained `#[test] fn` runs its body for
/// `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr); ) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident ( $($params:tt)* ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            for __case in 0..config.cases {
                let mut __rng = $crate::rng::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let __guard = $crate::test_runner::CaseGuard::new(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $crate::__proptest_bind!(__rng; $($params)*);
                $body
                __guard.passed();
            }
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident; ) => {};
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $pat:pat in $strategy:expr) => {
        let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut $rng);
    };
    ($rng:ident; $pat:pat in $strategy:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Uniform choice between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}
