//! `sample::select`: uniform choice from a fixed set of values.

use crate::rng::TestRng;
use crate::strategy::Strategy;

pub struct Select<T> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.items[rng.below(self.items.len() as u64) as usize].clone()
    }
}

/// Accepts both `Vec<T>` and `&[T]` (the two forms the workspace uses).
pub fn select<T: Clone>(items: impl Into<Vec<T>>) -> Select<T> {
    let items = items.into();
    assert!(!items.is_empty(), "select() needs at least one item");
    Select { items }
}
