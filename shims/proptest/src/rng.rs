//! Deterministic RNG for test-case generation: SplitMix64, seeded per
//! (test name, case index) so failures reproduce without persistence
//! files.

#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seed for case `case` of test `name`, optionally perturbed by the
    /// `PROPTEST_SHIM_SEED` environment variable.
    pub fn for_case(name: &str, case: u32) -> Self {
        let env = std::env::var("PROPTEST_SHIM_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0);
        let mut rng = TestRng::new(fnv1a(name.as_bytes()) ^ env);
        // Decorrelate consecutive cases beyond a simple +1 on the state.
        for _ in 0..2 {
            rng.next_u64();
        }
        rng.state = rng
            .state
            .wrapping_add(u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        rng
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// `true` with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
