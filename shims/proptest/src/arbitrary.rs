//! `any::<T>()` and the `Arbitrary` trait for primitive types.
//!
//! Integer generation is edge-biased like the real crate's: roughly one in
//! eight values is drawn from `{0, 1, -1, MIN, MAX}`, the rest are uniform
//! bits. Floats are generated *from raw bits*, so infinities and NaNs (with
//! arbitrary payloads) appear — the codec and VM tests depend on that.

use std::marker::PhantomData;

use crate::rng::TestRng;
use crate::strategy::Strategy;

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                if rng.chance(1, 8) {
                    // All-bits-set is -1 for signed types and MAX (again)
                    // for unsigned ones.
                    const EDGES: [$t; 5] =
                        [0, 1, <$t>::MAX, <$t>::MIN, (0 as $t).wrapping_sub(1)];
                    EDGES[rng.below(EDGES.len() as u64) as usize]
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_int!(i8, u8, i16, u16, i32, u32, i64, u64, isize, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}
