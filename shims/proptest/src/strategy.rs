//! The `Strategy` trait and core combinators.

use std::ops::Range;
use std::rc::Rc;

use crate::rng::TestRng;

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, func: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            strategy: self,
            func,
        }
    }

    /// Recursive strategies: `recurse` receives the strategy for the
    /// previous depth level and returns the strategy for one level above
    /// it. Generation picks a random depth in `[0, depth]`, so sizes stay
    /// bounded; `_desired_size` and `_expected_branch_size` are accepted
    /// for signature parity and ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
        S: Strategy<Value = Self::Value> + 'static,
    {
        Recursive {
            base: self.boxed(),
            depth,
            recurse: Rc::new(move |inner| recurse(inner).boxed()),
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A clonable, type-erased strategy (the shim uses `Rc`, not `Arc`:
/// strategies live on one test thread).
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    strategy: S,
    func: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.func)(self.strategy.generate(rng))
    }
}

/// Uniform choice between strategies of the same value type
/// (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

pub struct Recursive<T> {
    pub(crate) base: BoxedStrategy<T>,
    pub(crate) depth: u32,
    pub(crate) recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
}

impl<T> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let levels = rng.below(u64::from(self.depth) + 1) as u32;
        let mut strategy = self.base.clone();
        for _ in 0..levels {
            strategy = (self.recurse)(strategy);
        }
        strategy.generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (self.start as i128, self.end as i128);
                assert!(start < end, "strategy range is empty");
                let width = (end - start) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (start + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, u8, i16, u16, i32, u32, i64, u64, isize, usize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let v = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                // Casting the unit draw to f32 can round up to 1.0, which
                // would land exactly on the exclusive upper bound.
                if v >= self.end {
                    self.start
                } else {
                    v
                }
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

/// String literals are strategies: `"[a-z]{1,8}"` produces strings
/// matching that (simple) pattern. See [`crate::string`] for the
/// supported subset.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}
