//! Tiny regex-subset string generator for string-literal strategies.
//!
//! Supported patterns: a single character class with an optional counted
//! repetition — `[a-z]{1,8}`, `[A-Za-z0-9_]{3}`, `[abc]` — which is all
//! the workspace's tests use. Unsupported patterns fall back to short
//! lowercase ASCII strings so generation never fails.

use crate::rng::TestRng;

struct ClassPattern {
    chars: Vec<char>,
    min: usize,
    /// Inclusive.
    max: usize,
}

fn parse(pattern: &str) -> Option<ClassPattern> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let tail = &rest[close + 1..];

    let mut chars = Vec::new();
    let mut it = class.chars().peekable();
    while let Some(c) = it.next() {
        if it.peek() == Some(&'-') {
            let mut look = it.clone();
            look.next(); // consume '-'
            if let Some(&hi) = look.peek() {
                if (c as u32) <= (hi as u32) {
                    for code in (c as u32)..=(hi as u32) {
                        chars.push(char::from_u32(code)?);
                    }
                    it = look;
                    it.next(); // consume hi
                    continue;
                }
            }
        }
        chars.push(c);
    }
    if chars.is_empty() {
        return None;
    }

    let (min, max) = if tail.is_empty() {
        (1, 1)
    } else {
        let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
        match counts.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
            None => {
                let n = counts.trim().parse().ok()?;
                (n, n)
            }
        }
    };
    if min > max {
        return None;
    }
    Some(ClassPattern { chars, min, max })
}

pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let parsed = parse(pattern).unwrap_or(ClassPattern {
        chars: ('a'..='z').collect(),
        min: 1,
        max: 8,
    });
    let len = parsed.min + rng.below((parsed.max - parsed.min + 1) as u64) as usize;
    (0..len)
        .map(|_| parsed.chars[rng.below(parsed.chars.len() as u64) as usize])
        .collect()
}
