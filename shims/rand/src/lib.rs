//! Offline shim for `rand` 0.8: the subset the synthetic workload
//! generator uses — `SmallRng::seed_from_u64` plus `Rng::{gen, gen_range,
//! gen_bool}`. The generator only needs *deterministic, well-mixed*
//! streams (workload shapes are seeded), not cryptographic or
//! statistically audited randomness, so SplitMix64 is plenty.

use std::ops::Range;

/// Stand-in for `rand::SeedableRng`; only `seed_from_u64` is used.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core RNG trait; blanket-provides the sampling helpers the workspace
/// uses, mirroring `rand::Rng`.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// `rng.gen::<T>()` — invoked as `r#gen` in 2024-ready code.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in `range` (half-open). Modulo sampling: biased by at
    /// most 2^-32 for the small ranges the generators draw from.
    fn gen_range<T: UniformSampled>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Types samplable uniformly over their whole domain (`Rng::gen`).
pub trait Standard: Sized {
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

/// Types samplable uniformly from a half-open range (`Rng::gen_range`).
pub trait UniformSampled: Sized {
    fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_int_sampling {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
        impl UniformSampled for $t {
            fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                let (start, end) = (range.start as i128, range.end as i128);
                assert!(start < end, "gen_range: empty range");
                let width = (end - start) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (start + offset as i128) as $t
            }
        }
    )*};
}

impl_int_sampling!(i8, u8, i16, u16, i32, u32, i64, u64, isize, usize);

macro_rules! impl_float_sampling {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng>(rng: &mut R) -> Self {
                // Uniform in [0, 1), like rand's Standard distribution.
                ((rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) as $t
            }
        }
        impl UniformSampled for $t {
            fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = range.start + (unit as $t) * (range.end - range.start);
                // Casting the unit draw to f32 can round up to 1.0, which
                // would land exactly on the exclusive upper bound.
                if v >= range.end {
                    range.start
                } else {
                    v
                }
            }
        }
    )*};
}

impl_float_sampling!(f32, f64);

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// SplitMix64: tiny, fast, passes BigCrush — the same niche rand's
    /// `SmallRng` fills (a small non-crypto PRNG).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}
