//! Offline shim for `criterion`: enough of the API for the workspace's
//! three benches (`criterion_group!`/`criterion_main!`, benchmark groups
//! with `sample_size`/`throughput`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`).
//!
//! Measurement model: per sample, time a batch of iterations sized so one
//! batch takes ≳1 ms, take `sample_size` samples, report the median
//! ns/iter (and MB/s or Melem/s when a `Throughput` is set). No warm-up
//! discipline, outlier analysis, or plots — numbers are indicative, not
//! criterion-grade statistics.

use std::fmt::Display;
use std::time::Instant;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    BytesDecimal(u64),
    Elements(u64),
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: Some(function.to_owned()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId {
            function: Some(function),
            parameter: None,
        }
    }
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        self.report(&id, &bencher.samples);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        self.report(&id, &bencher.samples);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, samples: &[f64]) {
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted.get(sorted.len() / 2).copied().unwrap_or(f64::NAN);
        let mut line = format!("{}/{}: {:>12.1} ns/iter", self.name, id.label(), median);
        match self.throughput {
            Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
                let mbps = n as f64 / median * 1e9 / 1e6;
                line.push_str(&format!(" ({mbps:.1} MB/s)"));
            }
            Some(Throughput::Elements(n)) => {
                let meps = n as f64 / median * 1e9 / 1e6;
                line.push_str(&format!(" ({meps:.2} Melem/s)"));
            }
            None => {}
        }
        println!("{line}");
    }
}

pub struct Bencher {
    /// ns/iter, one entry per sample.
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Size the batch so one sample is long enough to time reliably.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed.as_micros() >= 1000 || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_nanos() as f64 / batch as f64);
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
