//! Offline shim for `serde_derive`: the derives accept the same helper
//! attributes as the real crate (`#[serde(...)]`) and expand to nothing.
//! The workspace only tags types with `Serialize`/`Deserialize` for API
//! parity with the original Wasabi; actual serialization goes through the
//! hand-rolled `wasabi::json` module.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
