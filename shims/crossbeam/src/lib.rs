//! Offline shim for `crossbeam`: only `crossbeam::thread::scope`, built on
//! `std::thread::scope` (stable since Rust 1.63). The parallel
//! instrumenter (paper §3) and its tests are the only users.
//!
//! Differences from the real crate are confined to signatures the
//! workspace does not rely on: the scope closure and spawned closures
//! receive the same `&Scope` argument, handles expose `join()`, and a
//! panic anywhere inside the scope is surfaced as `Err` from `scope`.

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A panic payload, as in `std::thread::Result`.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Run `f` with a scope in which borrowing, scoped threads can be
    /// spawned. All threads are joined before `scope` returns; if any
    /// unjoined thread (or `f` itself) panicked, the panic payload is
    /// returned as `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}
