//! Offline shim for `crossbeam`: `crossbeam::thread::scope`, built on
//! `std::thread::scope` (stable since Rust 1.63), and the
//! `crossbeam::deque` work-stealing primitives (`Worker`/`Stealer`/
//! `Steal`). The parallel instrumenter (paper §3) and the
//! `wasabi::fleet` batch engine are the users.
//!
//! Differences from the real crate are confined to behavior the
//! workspace does not rely on: the scope closure and spawned closures
//! receive the same `&Scope` argument, handles expose `join()`, and a
//! panic anywhere inside the scope is surfaced as `Err` from `scope`.
//! The deques are lock-based (`Mutex<VecDeque>`) instead of the real
//! crate's lock-free Chase–Lev implementation — same API, same FIFO
//! owner order, `Steal::Retry` is never returned — which is plenty for
//! job-granularity scheduling (jobs here are whole instrument+execute
//! passes, not microtasks).

pub mod deque {
    //! Lock-based stand-in for `crossbeam-deque`: per-worker FIFO job
    //! queues with stealing.
    //!
    //! The owner pops from the front of its own queue; thieves steal from
    //! the back, so the oldest still-queued work stays with the owner and
    //! contention on short queues is minimal. All operations take the
    //! queue mutex, so (unlike the real crate) `Steal::Retry` is never
    //! produced — callers that match on it still compile and behave
    //! correctly.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The operation lost a race and should be retried (never
        /// produced by this lock-based shim; kept for API compatibility).
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(task) => Some(task),
                Steal::Empty | Steal::Retry => None,
            }
        }

        /// `true` if the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// A FIFO queue owned by one worker thread; other threads steal
    /// through [`Stealer`] handles.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// A new empty FIFO worker queue.
        pub fn new_fifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Enqueue a task at the back.
        pub fn push(&self, task: T) {
            self.queue.lock().unwrap().push_back(task);
        }

        /// Dequeue the oldest task (FIFO owner order).
        pub fn pop(&self) -> Option<T> {
            self.queue.lock().unwrap().pop_front()
        }

        /// `true` if the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.queue.lock().unwrap().len()
        }

        /// A handle other threads use to steal from this queue.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// A handle for stealing tasks from another worker's queue.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Steal one task from the back of the victim's queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().unwrap().pop_back() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// `true` if the victim's queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn owner_is_fifo_and_thieves_take_the_back() {
            let worker = Worker::new_fifo();
            let stealer = worker.stealer();
            worker.push(1);
            worker.push(2);
            worker.push(3);
            assert_eq!(worker.len(), 3);
            assert_eq!(worker.pop(), Some(1));
            assert_eq!(stealer.steal(), Steal::Success(3));
            assert_eq!(worker.pop(), Some(2));
            assert_eq!(worker.pop(), None);
            assert!(stealer.steal().is_empty());
        }

        #[test]
        fn concurrent_steals_deliver_every_task_once() {
            let worker = Worker::new_fifo();
            for i in 0..1000u32 {
                worker.push(i);
            }
            let total: u64 = std::thread::scope(|s| {
                let thieves: Vec<_> = (0..4)
                    .map(|_| {
                        let stealer = worker.stealer();
                        s.spawn(move || {
                            let mut sum = 0u64;
                            while let Steal::Success(task) = stealer.steal() {
                                sum += u64::from(task);
                            }
                            sum
                        })
                    })
                    .collect();
                let mut sum = 0u64;
                while let Some(task) = worker.pop() {
                    sum += u64::from(task);
                }
                sum + thieves.into_iter().map(|t| t.join().unwrap()).sum::<u64>()
            });
            assert_eq!(total, (0..1000u64).sum());
        }
    }
}

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A panic payload, as in `std::thread::Result`.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Run `f` with a scope in which borrowing, scoped threads can be
    /// spawned. All threads are joined before `scope` returns; if any
    /// unjoined thread (or `f` itself) panicked, the panic payload is
    /// returned as `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}
