//! Offline shim for `parking_lot`: the subset the workspace uses — an
//! `RwLock` with plain reads, writes, and *upgradable* reads.
//!
//! Implementation: a `std::sync::RwLock` for the data plus a separate
//! mutex serializing upgradable readers. An upgradable read holds the
//! upgrade mutex and a shared read guard, so it coexists with plain
//! readers; `upgrade` drops the shared guard and acquires the write lock
//! while still holding the upgrade mutex, so no two upgraders race. This
//! is weaker than parking_lot's truly atomic upgrade (a plain writer could
//! interleave), which is why `HookMap::get_or_insert` re-checks after
//! upgrading — exactly the pattern the real crate also recommends.
//!
//! Like parking_lot (and unlike std), lock poisoning is ignored.

use std::ops::{Deref, DerefMut};
use std::sync;
use std::sync::PoisonError;

#[derive(Debug, Default)]
pub struct RwLock<T> {
    data: sync::RwLock<T>,
    upgrade: sync::Mutex<()>,
}

pub struct RwLockReadGuard<'a, T>(sync::RwLockReadGuard<'a, T>);

pub struct RwLockWriteGuard<'a, T>(sync::RwLockWriteGuard<'a, T>);

pub struct RwLockUpgradableReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    _upgrade: sync::MutexGuard<'a, ()>,
    read: Option<sync::RwLockReadGuard<'a, T>>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            data: sync::RwLock::new(value),
            upgrade: sync::Mutex::new(()),
        }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.data.read().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.data.write().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn upgradable_read(&self) -> RwLockUpgradableReadGuard<'_, T> {
        let upgrade = self.upgrade.lock().unwrap_or_else(PoisonError::into_inner);
        let read = self.data.read().unwrap_or_else(PoisonError::into_inner);
        RwLockUpgradableReadGuard {
            lock: self,
            _upgrade: upgrade,
            read: Some(read),
        }
    }

    pub fn into_inner(self) -> T {
        self.data
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T> Deref for RwLockUpgradableReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.read.as_ref().expect("guard is live")
    }
}

impl<'a, T> RwLockUpgradableReadGuard<'a, T> {
    /// Consume the upgradable guard, returning an exclusive write guard.
    ///
    /// The upgrade mutex is held until the write lock is acquired, so at
    /// most one thread is ever between "read" and "write" here.
    pub fn upgrade(mut guard: Self) -> RwLockWriteGuard<'a, T> {
        guard.read.take();
        RwLockWriteGuard(
            guard
                .lock
                .data
                .write()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }
}
