//! Offline shim for `serde`: marker traits plus the no-op derive macros.
//!
//! The workspace derives `Serialize`/`Deserialize` on its AST types for
//! API parity with the original Wasabi sources but never serializes
//! through serde (the CLI uses the purpose-built `wasabi::json` module),
//! so marker traits are sufficient.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
