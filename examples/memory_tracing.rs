//! Memory access tracing for offline locality analysis (paper Table 4:
//! "detect cache-unfriendly access patterns").
//!
//! Traces a row-major and a column-major matrix traversal of the same
//! matrix and compares their locality.
//!
//! ```sh
//! cargo run --example memory_tracing
//! ```

use wasabi_repro::analyses::MemoryTracing;
use wasabi_repro::core::hooks::Analysis;
use wasabi_repro::core::AnalysisSession;
use wasabi_repro::workloads::dsl::*;
use wasabi_repro::workloads::{compile, Program};

fn traversal(name: &'static str, row_major: bool) -> Program {
    let n = 24;
    let index: Vec<IExpr> = if row_major {
        vec![v("i"), v("j")]
    } else {
        vec![v("j"), v("i")]
    };
    Program {
        name,
        arrays: vec![Program::array("A", &[n as u32, n as u32])],
        init: vec![],
        kernel: vec![
            set("s", fc(0.0)),
            for_(
                "i",
                c(0),
                c(n),
                vec![for_(
                    "j",
                    c(0),
                    c(n),
                    vec![
                        store("A", index.clone(), sc("s") + fc(1.0)),
                        set("s", sc("s") + ld("A", index.clone())),
                    ],
                )],
            ),
        ],
    }
}

fn trace(program: &Program) -> Result<MemoryTracing, Box<dyn std::error::Error>> {
    let module = compile(program);
    let mut tracing = MemoryTracing::new();
    let session = AnalysisSession::for_analysis(&module, &tracing)?;
    session.run(&mut tracing, "kernel", &[])?;
    Ok(tracing)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (label, row_major) in [("row-major", true), ("column-major", false)] {
        let tracing = trace(&traversal("traversal", row_major))?;
        println!("== {label} traversal");
        // accesses, bytes, cache-line locality, and dominant strides all
        // live in the structured report.
        println!("   {}", tracing.report().to_json());
        println!();
    }
    println!("row-major strides stay within a cache line; column-major strides");
    println!("jump a full row — exactly the cache-unfriendly pattern the");
    println!("paper's offline analysis is meant to spot.");
    Ok(())
}
