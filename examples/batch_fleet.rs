//! Batch analysis with the work-stealing fleet: many (module ×
//! analysis-set × input) jobs, one shared translated-module cache.
//!
//! Each distinct (module, hook set) pair is validated, instrumented, and
//! flat-IR-translated exactly once — every further job on it is a cache
//! hit that only pays instantiation + execution. Results come back in
//! submission order with per-job phase times and cache facts.
//!
//! Run with: `cargo run --release --example batch_fleet`

use std::sync::Arc;

use wasabi_repro::analyses::registry;
use wasabi_repro::core::fleet::Job;
use wasabi_repro::workloads::{compile, polybench};

fn main() {
    // A small corpus: four PolyBench kernels, shared via Arc.
    let kernels: Vec<(String, Arc<wasabi_repro::wasm::Module>)> = ["gemm", "atax", "mvt", "syrk"]
        .iter()
        .map(|name| {
            let program = polybench::by_name(name, 6).expect("known kernel");
            (format!("{name}.wasm"), Arc::new(compile(&program)))
        })
        .collect();

    // Two analysis sets per kernel = 8 jobs over 8 cache entries; running
    // the batch twice shows full warm-cache amortization.
    let mut fleet = registry::fleet().workers(4).build();
    for round in 0..2 {
        for (key, module) in &kernels {
            fleet.submit(
                Job::new(key.clone(), Arc::clone(module), "main", vec![])
                    .analyses(["instruction_mix", "call_graph"]),
            );
            fleet.submit(
                Job::new(key.clone(), Arc::clone(module), "main", vec![])
                    .analyses(["branch_coverage"]),
            );
        }
        let batch = fleet.run();
        assert!(batch.all_ok(), "all jobs succeed");
        println!(
            "round {round}: {} jobs on {} workers in {:.1} ms = {:.0} jobs/sec \
             ({} cache hits, {} misses, {} stolen)",
            batch.jobs.len(),
            batch.workers,
            batch.wall.as_secs_f64() * 1000.0,
            batch.jobs_per_sec(),
            batch.cache_hits,
            batch.cache_misses,
            batch.jobs.iter().filter(|j| j.stats.stolen).count(),
        );
        if round == 0 {
            assert_eq!(batch.cache_misses, 8, "one build per (module, hook set)");
        } else {
            assert_eq!(batch.cache_misses, 0, "second round is fully warm");
        }
    }

    // Reports are per job and in submission order, exactly as a
    // sequential Pipeline would produce them.
    let (key, module) = &kernels[0];
    fleet.submit(
        Job::new(key.clone(), Arc::clone(module), "main", vec![]).analyses(["instruction_mix"]),
    );
    let batch = fleet.run();
    let report = &batch.jobs[0].reports[0];
    println!(
        "sample report for {key}: analysis={}, {} bytes of JSON",
        report.analysis,
        report.to_json().len(),
    );
}
