//! Taint analysis with shadow memory (paper §2.3 and Table 4).
//!
//! A module reads a "secret" from a source import, launders it through
//! arithmetic, a local, and linear memory, and finally passes it to a
//! network-send sink. The analysis reports the flow without ever touching
//! the program's memory (memory shadowing happens on the host side).
//!
//! ```sh
//! cargo run --example taint_tracking
//! ```

use wasabi_repro::analyses::TaintAnalysis;
use wasabi_repro::core::hooks::Analysis;
use wasabi_repro::core::AnalysisSession;
use wasabi_repro::vm::host::HostFunctions;
use wasabi_repro::wasm::builder::ModuleBuilder;
use wasabi_repro::wasm::{LoadOp, StoreOp, Val, ValType};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut builder = ModuleBuilder::new();
    builder.memory(1, None);
    let read_secret = builder.import_function("env", "read_secret", &[], &[ValType::I32]);
    let send = builder.import_function("env", "send", &[ValType::I32], &[]);

    // main: secret = read_secret(); obfuscated = secret * 31 + 7;
    //       mem[128] = obfuscated; send(mem[128]);
    builder.function("main", &[], &[], |f| {
        let tmp = f.local(ValType::I32);
        f.call(read_secret);
        f.i32_const(31).i32_mul().i32_const(7).i32_add();
        f.set_local(tmp);
        f.i32_const(128).get_local(tmp).store(StoreOp::I32Store, 0);
        f.i32_const(128).load(LoadOp::I32Load, 0);
        f.call(send);
        // An innocuous send of a constant: must NOT be reported.
        f.i32_const(42).call(send);
    });
    let module = builder.finish();

    // Imports 0 and 1 are source and sink.
    let mut taint = TaintAnalysis::new(&[read_secret.to_u32()], &[send.to_u32()]);
    let session = AnalysisSession::for_analysis(&module, &taint)?;

    let mut host = HostFunctions::new();
    host.register("env", "read_secret", |_, _| Ok(vec![Val::I32(0xC0FFEE)]));
    host.register("env", "send", |args, _| {
        println!("  [network] send({:?})", args[0]);
        Ok(vec![])
    });

    println!("running the program:");
    session.run_with_host(&mut taint, &mut host, "main", &[])?;

    println!();
    println!("{}", taint.report().to_json());
    for flow in taint.flows() {
        println!(
            "  ILLEGAL FLOW: value tainted at {} reaches sink call at {} (function {}, argument {})",
            flow.source, flow.sink_call, flow.sink_func, flow.arg_index
        );
    }

    Ok(())
}
