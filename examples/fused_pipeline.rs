//! All eight Table-4 analyses of the paper, fused onto ONE
//! instrumentation and execution pass over a PolyBench kernel (the
//! pipeline generalization of §2.4.2 selective instrumentation).
//!
//! ```sh
//! cargo run --release --example fused_pipeline
//! ```

use wasabi_repro::analyses::registry;
use wasabi_repro::core::{stats, Wasabi};
use wasabi_repro::workloads::{compile, polybench};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = compile(&polybench::by_name("gemm", 12).expect("known kernel"));

    let mut analyses = registry::table4();
    let instr_before = stats::instrumentation_passes();
    let exec_before = stats::execution_passes();

    let mut builder = Wasabi::builder();
    for analysis in &mut analyses {
        builder = builder.analysis(analysis.as_mut());
    }
    let mut pipeline = builder.build(&module)?;
    pipeline.run("main", &[])?;

    eprintln!(
        "ran {} analyses over gemm in {} instrumentation pass(es) and {} execution pass(es)",
        pipeline.len(),
        stats::instrumentation_passes() - instr_before,
        stats::execution_passes() - exec_before,
    );
    for report in pipeline.reports() {
        println!("{}", report.to_json());
    }
    Ok(())
}
