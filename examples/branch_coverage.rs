//! The paper's Figure 7: branch coverage with four hooks.
//!
//! Runs a module under two test suites and reports which branches remain
//! partially covered — the "assess the quality of tests" use case.
//!
//! ```sh
//! cargo run --example branch_coverage
//! ```

use wasabi_repro::analyses::{BranchCoverage, InstructionCoverage};
use wasabi_repro::core::AnalysisSession;
use wasabi_repro::wasm::builder::ModuleBuilder;
use wasabi_repro::wasm::{BinaryOp, Val, ValType};

/// A function with input-dependent branching: classifies a number.
fn classifier() -> wasabi_repro::wasm::Module {
    let mut builder = ModuleBuilder::new();
    builder.function("classify", &[ValType::I32], &[ValType::I32], |f| {
        // if x < 0 { return -1 }
        f.get_local(0u32).i32_const(0).binary(BinaryOp::I32LtS);
        f.if_(None).i32_const(-1).return_().end();
        // if x == 0 { return 0 }
        f.get_local(0u32).i32_const(0).binary(BinaryOp::I32Eq);
        f.if_(None).i32_const(0).return_().end();
        // switch (x & 3): small dispatch
        f.block(None).block(None).block(None);
        f.get_local(0u32).i32_const(3).binary(BinaryOp::I32And);
        f.br_table(vec![0, 1], 2);
        f.end();
        f.i32_const(10).return_();
        f.end();
        f.i32_const(20).return_();
        f.end();
        f.i32_const(30);
    });
    builder.finish()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = classifier();

    let mut branch_cov = BranchCoverage::new();
    let mut instr_cov = InstructionCoverage::new();
    let branch_session = AnalysisSession::for_analysis(&module, &branch_cov)?;
    let instr_session = AnalysisSession::for_analysis(&module, &instr_cov)?;

    let test_suites: [&[i32]; 2] = [&[5], &[5, -3, 0, 4, 6]];
    for inputs in test_suites {
        for &input in inputs {
            branch_session.run(&mut branch_cov, "classify", &[Val::I32(input)])?;
            instr_session.run(&mut instr_cov, "classify", &[Val::I32(input)])?;
        }
        println!("after inputs {inputs:?}:");
        println!(
            "  instruction coverage: {:.0}%",
            instr_cov.ratio(instr_session.info()) * 100.0
        );
        for (loc, outcomes) in branch_cov.branches() {
            println!("  branch at {loc}: outcomes seen {outcomes:?}");
        }
        let partial = branch_cov.partially_covered();
        if partial.is_empty() {
            println!("  all observed branches covered in both directions");
        } else {
            println!("  partially covered branches: {partial:?}");
        }
        println!();
    }

    Ok(())
}
