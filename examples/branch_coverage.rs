//! The paper's Figure 7: branch coverage with four hooks.
//!
//! Runs a module under two test suites and reports which branches remain
//! partially covered — the "assess the quality of tests" use case.
//!
//! ```sh
//! cargo run --example branch_coverage
//! ```

use wasabi_repro::analyses::{BranchCoverage, InstructionCoverage};
use wasabi_repro::core::Wasabi;
use wasabi_repro::wasm::builder::ModuleBuilder;
use wasabi_repro::wasm::{BinaryOp, Val, ValType};

/// A function with input-dependent branching: classifies a number.
fn classifier() -> wasabi_repro::wasm::Module {
    let mut builder = ModuleBuilder::new();
    builder.function("classify", &[ValType::I32], &[ValType::I32], |f| {
        // if x < 0 { return -1 }
        f.get_local(0u32).i32_const(0).binary(BinaryOp::I32LtS);
        f.if_(None).i32_const(-1).return_().end();
        // if x == 0 { return 0 }
        f.get_local(0u32).i32_const(0).binary(BinaryOp::I32Eq);
        f.if_(None).i32_const(0).return_().end();
        // switch (x & 3): small dispatch
        f.block(None).block(None).block(None);
        f.get_local(0u32).i32_const(3).binary(BinaryOp::I32And);
        f.br_table(vec![0, 1], 2);
        f.end();
        f.i32_const(10).return_();
        f.end();
        f.i32_const(20).return_();
        f.end();
        f.i32_const(30);
    });
    builder.finish()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = classifier();

    // Both coverage analyses fused: ONE instrumented module, ONE execution
    // per input, each analysis only sees its subscribed hooks.
    let mut branch_cov = BranchCoverage::new();
    let mut instr_cov = InstructionCoverage::new();
    let mut pipeline = Wasabi::builder()
        .analysis(&mut branch_cov)
        .analysis(&mut instr_cov)
        .build(&module)?;

    let test_suites: [&[i32]; 2] = [&[5], &[5, -3, 0, 4, 6]];
    for inputs in test_suites {
        for &input in inputs {
            pipeline.run("classify", &[Val::I32(input)])?;
        }
        println!("after inputs {inputs:?}:");
        for report in pipeline.reports() {
            println!("  {}", report.to_json());
        }
        println!();
    }

    drop(pipeline);
    let partial = branch_cov.partially_covered();
    if partial.is_empty() {
        println!("all observed branches covered in both directions");
    } else {
        println!("partially covered branches remain: {partial:?}");
    }

    Ok(())
}
