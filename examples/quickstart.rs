//! Quickstart: fuse two analyses onto one instrumentation + execution
//! pass with the pipeline API, then inspect their structured reports.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use wasabi_repro::analyses::{CallGraph, InstructionMix};
use wasabi_repro::core::Wasabi;
use wasabi_repro::wasm::builder::ModuleBuilder;
use wasabi_repro::wasm::{Val, ValType};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A program to analyze. Normally this comes from `decode()`-ing a
    //    .wasm file; here we build one: iterative factorial.
    let mut builder = ModuleBuilder::new();
    builder.function("factorial", &[ValType::I64], &[ValType::I64], |f| {
        let acc = f.local(ValType::I64);
        let i = f.local(ValType::I64);
        f.i64_const(1).set_local(acc);
        f.i64_const(1).set_local(i);
        f.block(None).loop_(None);
        f.get_local(i)
            .get_local(0u32)
            .binary(wasabi_repro::wasm::BinaryOp::I64GtS)
            .br_if(1);
        f.get_local(acc)
            .get_local(i)
            .binary(wasabi_repro::wasm::BinaryOp::I64Mul);
        f.set_local(acc);
        f.get_local(i)
            .i64_const(1)
            .binary(wasabi_repro::wasm::BinaryOp::I64Add);
        f.set_local(i);
        f.br(0).end().end();
        f.get_local(acc);
    });
    let module = builder.finish();

    // 2. Pick analyses. Each declares the hooks it needs; the pipeline
    //    instruments once for the UNION and dispatches per hook, so the
    //    call-graph analysis pays nothing for the mix's const/local
    //    traffic.
    let mut mix = InstructionMix::new();
    let mut graph = CallGraph::new();

    // 3. One instrumentation pass, one execution pass — any number of
    //    analyses.
    let mut pipeline = Wasabi::builder()
        .analysis(&mut mix)
        .analysis(&mut graph)
        .build(&module)?;
    let results = pipeline.run("factorial", &[Val::I64(10)])?;
    println!("factorial(10) = {}", results[0]);

    // 4. Every analysis emits a structured JSON report.
    for report in pipeline.reports() {
        println!("{}", report.to_json());
    }

    // 5. The concrete analysis values stay accessible too.
    drop(pipeline);
    println!();
    println!("top instructions: {:?}", mix.top(3));

    Ok(())
}
