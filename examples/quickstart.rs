//! Quickstart: instrument a module, run it under an analysis, inspect the
//! results.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use wasabi_repro::analyses::InstructionMix;
use wasabi_repro::core::AnalysisSession;
use wasabi_repro::wasm::builder::ModuleBuilder;
use wasabi_repro::wasm::{Val, ValType};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A program to analyze. Normally this comes from `decode()`-ing a
    //    .wasm file; here we build one: iterative factorial.
    let mut builder = ModuleBuilder::new();
    builder.function("factorial", &[ValType::I64], &[ValType::I64], |f| {
        let acc = f.local(ValType::I64);
        let i = f.local(ValType::I64);
        f.i64_const(1).set_local(acc);
        f.i64_const(1).set_local(i);
        f.block(None).loop_(None);
        f.get_local(i)
            .get_local(0u32)
            .binary(wasabi_repro::wasm::BinaryOp::I64GtS)
            .br_if(1);
        f.get_local(acc)
            .get_local(i)
            .binary(wasabi_repro::wasm::BinaryOp::I64Mul);
        f.set_local(acc);
        f.get_local(i)
            .i64_const(1)
            .binary(wasabi_repro::wasm::BinaryOp::I64Add);
        f.set_local(i);
        f.br(0).end().end();
        f.get_local(acc);
    });
    let module = builder.finish();

    // 2. Pick an analysis. `InstructionMix` counts every executed
    //    instruction; its `hooks()` drive selective instrumentation.
    let mut analysis = InstructionMix::new();

    // 3. Instrument once, run as often as you like.
    let session = AnalysisSession::for_analysis(&module, &analysis)?;
    let results = session.run(&mut analysis, "factorial", &[Val::I64(10)])?;

    println!("factorial(10) = {}", results[0]);
    println!();
    println!("{:<16} {:>8}", "instruction", "count");
    println!("{:-<16} {:->8}", "", "");
    for (name, count) in analysis.top(10) {
        println!("{name:<16} {count:>8}");
    }
    println!("{:<16} {:>8}", "total", analysis.total());

    Ok(())
}
