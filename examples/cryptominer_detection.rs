//! The paper's Figure 1: cryptominer detection via instruction signatures.
//!
//! Profiles a hash-like "mining" kernel and a numeric PolyBench kernel with
//! the same ten-line analysis and prints the signatures and verdicts.
//!
//! ```sh
//! cargo run --example cryptominer_detection
//! ```

use wasabi_repro::analyses::CryptominerDetection;
use wasabi_repro::core::hooks::Analysis;
use wasabi_repro::core::AnalysisSession;
use wasabi_repro::workloads::{compile, polybench, synthetic};

fn profile(
    name: &str,
    module: &wasabi_repro::wasm::Module,
    export: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut detector = CryptominerDetection::new();
    let session = AnalysisSession::for_analysis(module, &detector)?;
    session.run(&mut detector, export, &[])?;

    println!("== {name}");
    // The structured report carries signature, ratio, and verdict.
    println!("   {}", detector.report().to_json());
    println!(
        "   verdict: {}",
        if detector.is_likely_miner() {
            "LIKELY MINER"
        } else {
            "benign"
        }
    );
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Cryptominer detection (paper Fig. 1 / SEISMIC profiling)\n");

    let miner = synthetic::miner(200_000);
    profile("suspicious page script", &miner, "mine")?;

    let gemm = compile(&polybench::by_name("gemm", 16).expect("known kernel"));
    profile("numeric kernel (gemm)", &gemm, "main")?;

    Ok(())
}
