//! Property test for the batch fleet (ISSUE 5 acceptance criterion):
//! N jobs pushed through a work-stealing `Fleet` — random worker counts,
//! shared `ModuleCache`, random job→module assignment, random analysis
//! subsets — produce report JSON **identical** to the same jobs run
//! sequentially through the `Pipeline` API, and in submission order.
//!
//! Also: the shared cache performs **exactly one** instrument+translate
//! per distinct (module, analysis hook set), no matter how many jobs or
//! workers touch it, observed through the cache's own counters (immune to
//! the process-global stats other tests mutate concurrently).

use std::sync::Arc;

use proptest::prelude::*;

use wasabi_repro::analyses::registry;
use wasabi_repro::core::cache::ModuleCache;
use wasabi_repro::core::fleet::Job;
use wasabi_repro::core::hooks::Analysis;
use wasabi_repro::core::Wasabi;
use wasabi_repro::wasm::Module;
use wasabi_repro::workloads::synthetic::{synthetic_app, SyntheticConfig};

/// Reports of `names` run fused through a sequential [`Wasabi`] pipeline.
fn sequential_reports(module: &Module, names: &[String]) -> Vec<String> {
    let mut analyses: Vec<Box<dyn Analysis>> = names
        .iter()
        .map(|name| registry::by_name(name).expect("registered"))
        .collect();
    let mut builder = Wasabi::builder();
    for analysis in &mut analyses {
        builder = builder.analysis(analysis.as_mut());
    }
    let mut pipeline = builder.build(module).expect("instruments");
    pipeline.run("main", &[]).expect("runs");
    pipeline
        .reports()
        .iter()
        .map(|report| report.to_json())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        ..ProptestConfig::default()
    })]

    #[test]
    fn fleet_batches_match_sequential_pipelines(
        seed in any::<u64>(),
        module_count in 1usize..4,
        job_count in 1usize..10,
        workers in 1usize..7,
        // Per-job analysis subsets, decoded from bitmasks (0 = no
        // analyses: the job runs uninstrumented).
        masks in proptest::collection::vec(0u32..512, 10),
        picks in proptest::collection::vec(0usize..4, 10),
    ) {
        let modules: Vec<Arc<Module>> = (0..module_count)
            .map(|i| {
                Arc::new(synthetic_app(&SyntheticConfig {
                    seed: seed.wrapping_add(i as u64),
                    function_count: 3,
                    body_statements: 3,
                }))
            })
            .collect();

        // Random job list over the module corpus.
        let jobs: Vec<(usize, Vec<String>)> = (0..job_count)
            .map(|j| {
                let module = picks[j] % module_count;
                let names: Vec<String> = registry::NAMES
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| masks[j] & (1 << i) != 0)
                    .map(|(_, name)| name.to_string())
                    .collect();
                (module, names)
            })
            .collect();

        // Sequential baseline: one pipeline per job, in submission order.
        let expected: Vec<Vec<String>> = jobs
            .iter()
            .map(|(module, names)| sequential_reports(&modules[*module], names))
            .collect();

        // The same jobs through a shared-cache fleet.
        let cache = ModuleCache::shared();
        let mut fleet = registry::fleet()
            .workers(workers)
            .cache(Arc::clone(&cache))
            .build();
        for (module, names) in &jobs {
            fleet.submit(
                Job::new(format!("m{module}"), Arc::clone(&modules[*module]), "main", vec![])
                    .analyses(names.iter().cloned()),
            );
        }
        let batch = fleet.run();

        prop_assert!(batch.all_ok());
        prop_assert_eq!(batch.jobs.len(), job_count);
        for (i, outcome) in batch.jobs.iter().enumerate() {
            prop_assert_eq!(outcome.job, i, "submission order preserved");
            let got: Vec<String> = outcome.reports.iter().map(|r| r.to_json()).collect();
            prop_assert_eq!(
                &got,
                &expected[i],
                "job {} (module {}, workers {})",
                i,
                jobs[i].0,
                workers
            );
        }

        // Exactly one translation per distinct (module, hook set): the
        // cache's own counters say how many builds happened.
        let distinct: std::collections::HashSet<(usize, Vec<String>)> = jobs
            .iter()
            .map(|(module, names)| {
                // The cache keys on the UNION HOOK SET, not the name list;
                // map names to their hook set to count distinct entries.
                let mut hooks: Vec<String> = names
                    .iter()
                    .flat_map(|n| {
                        registry::by_name(n)
                            .expect("registered")
                            .hooks()
                            .iter()
                            .map(|h| h.name().to_string())
                            .collect::<Vec<_>>()
                    })
                    .collect();
                hooks.sort();
                hooks.dedup();
                (*module, hooks)
            })
            .collect();
        prop_assert_eq!(cache.misses(), distinct.len() as u64);
        prop_assert_eq!(cache.hits(), (job_count - distinct.len()) as u64);
        prop_assert_eq!(cache.len(), distinct.len());
    }
}

/// Deterministic (non-property) cache sharing test: J jobs over D modules
/// translate exactly D times, and re-running the same fleet over its warm
/// cache translates zero times more.
#[test]
fn one_translation_per_distinct_module_across_batches() {
    let modules: Vec<Arc<Module>> = (0..3)
        .map(|i| {
            Arc::new(synthetic_app(&SyntheticConfig {
                seed: 17 + i,
                function_count: 3,
                body_statements: 3,
            }))
        })
        .collect();

    let cache = ModuleCache::shared();
    let mut fleet = registry::fleet()
        .workers(4)
        .cache(Arc::clone(&cache))
        .build();
    for round in 0..4 {
        for (i, module) in modules.iter().enumerate() {
            fleet.submit(
                Job::new(format!("m{i}"), Arc::clone(module), "main", vec![])
                    .analyses(["instruction_mix"]),
            );
        }
        let batch = fleet.run();
        assert!(batch.all_ok());
        if round == 0 {
            assert_eq!(batch.cache_misses, 3, "first batch builds each module once");
        } else {
            assert_eq!(batch.cache_misses, 0, "later batches are fully warm");
            assert_eq!(batch.cache_hits, 3);
        }
    }
    assert_eq!(
        cache.misses(),
        3,
        "exactly one translation per distinct module"
    );
    assert_eq!(cache.hits(), 9);

    // A different analysis set on the same modules is a different hook
    // set, hence new entries — still exactly one build each.
    for (i, module) in modules.iter().enumerate() {
        fleet.submit(
            Job::new(format!("m{i}"), Arc::clone(module), "main", vec![])
                .analyses(["memory_tracing"]),
        );
    }
    assert!(fleet.run().all_ok());
    assert_eq!(cache.misses(), 6);
    assert_eq!(cache.len(), 6);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        ..ProptestConfig::default()
    })]

    /// PR 7 satellite: the streaming completion callback delivers the
    /// SAME result set as a submission-ordered batch run — every job
    /// exactly once, payloads identical once re-sorted by submission
    /// index — and the callback fires in completion order (per-outcome
    /// delivery indices exist for every job; nothing is held back until
    /// the end).
    #[test]
    fn streamed_outcomes_match_submission_ordered_batches(
        seed in any::<u64>(),
        module_count in 1usize..3,
        job_count in 1usize..8,
        workers in 1usize..5,
        masks in proptest::collection::vec(0u32..512, 8),
        picks in proptest::collection::vec(0usize..3, 8),
    ) {
        let modules: Vec<Arc<Module>> = (0..module_count)
            .map(|i| {
                Arc::new(synthetic_app(&SyntheticConfig {
                    seed: seed.wrapping_add(i as u64),
                    function_count: 3,
                    body_statements: 3,
                }))
            })
            .collect();
        let jobs: Vec<(usize, Vec<String>)> = (0..job_count)
            .map(|j| {
                let module = picks[j] % module_count;
                let names: Vec<String> = registry::NAMES
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| masks[j] & (1 << i) != 0)
                    .map(|(_, name)| name.to_string())
                    .collect();
                (module, names)
            })
            .collect();

        let build = |cache: &Arc<ModuleCache>| {
            let mut fleet = registry::fleet()
                .workers(workers)
                .cache(Arc::clone(cache))
                .build();
            for (module, names) in &jobs {
                fleet.submit(
                    Job::new(
                        format!("m{module}"),
                        Arc::clone(&modules[*module]),
                        "main",
                        vec![],
                    )
                    .analyses(names.iter().cloned()),
                );
            }
            fleet
        };

        // Reference: the submission-ordered batch API.
        let batch = build(&ModuleCache::shared()).run();
        prop_assert!(batch.all_ok());

        // Same jobs, fresh fleet + cache, through the streaming API.
        let mut streamed = Vec::new();
        let summary = build(&ModuleCache::shared()).run_streaming(|outcome| {
            streamed.push(outcome);
        });

        // Summary agrees with the batch on everything deterministic.
        prop_assert_eq!(summary.jobs, batch.jobs.len());
        prop_assert_eq!(summary.cache_hits, batch.cache_hits);
        prop_assert_eq!(summary.cache_misses, batch.cache_misses);

        // Every job exactly once (completion order is a permutation of
        // the submission indices)...
        let mut seen: Vec<usize> = streamed.iter().map(|o| o.job).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..job_count).collect::<Vec<_>>());

        // ...and payload-identical to the batch once re-sorted into
        // submission order.
        streamed.sort_by_key(|o| o.job);
        for (streamed, batched) in streamed.iter().zip(&batch.jobs) {
            prop_assert_eq!(&streamed.key, &batched.key);
            prop_assert_eq!(&streamed.invoke, &batched.invoke);
            prop_assert_eq!(
                format!("{:?}", streamed.result),
                format!("{:?}", batched.result)
            );
            let streamed_reports: Vec<String> =
                streamed.reports.iter().map(|r| r.to_json()).collect();
            let batched_reports: Vec<String> =
                batched.reports.iter().map(|r| r.to_json()).collect();
            prop_assert_eq!(streamed_reports, batched_reports);
            // NOT compared: per-job cache_hit. Which racing job wins the
            // build slot is scheduling-dependent; only the totals are
            // deterministic (asserted on the summaries above).
        }
    }
}
