//! The minimal end-to-end proof that the workspace is wired correctly:
//! build a tiny module, instrument it with a single hook
//! (`HookSet::of(&[Hook::Binary])`), execute it on the VM, and assert
//! both that the computation is unchanged and that the hook actually
//! fired with the right operands.

use wasabi_repro::core::event::{AnalysisCtx, BinaryEvt};
use wasabi_repro::core::hooks::{Analysis, Hook, HookSet};
use wasabi_repro::core::AnalysisSession;
use wasabi_repro::wasm::builder::ModuleBuilder;
use wasabi_repro::wasm::{BinaryOp, Val, ValType};

/// Records every `binary` hook invocation.
#[derive(Default)]
struct BinarySpy {
    calls: Vec<(BinaryOp, Val, Val, Val)>,
}

impl Analysis for BinarySpy {
    fn hooks(&self) -> HookSet {
        HookSet::of(&[Hook::Binary])
    }

    fn binary(&mut self, _: &AnalysisCtx, evt: &BinaryEvt) {
        self.calls.push((evt.op, evt.first, evt.second, evt.result));
    }
}

#[test]
fn binary_hook_fires_end_to_end() {
    // f(x) = x * 3 + 1 — two binary instructions per invocation.
    let mut builder = ModuleBuilder::new();
    builder.function("f", &[ValType::I32], &[ValType::I32], |f| {
        f.get_local(0u32)
            .i32_const(3)
            .i32_mul()
            .i32_const(1)
            .i32_add();
    });
    let module = builder.finish();

    let mut spy = BinarySpy::default();
    let session = AnalysisSession::for_analysis(&module, &spy).expect("instruments");
    let result = session.run(&mut spy, "f", &[Val::I32(5)]).expect("runs");

    // The instrumented module computes the same result as the original
    // program would...
    assert_eq!(result, vec![Val::I32(16)]);

    // ...and the Binary hook observed both operations with exact operands.
    assert_eq!(
        spy.calls,
        vec![
            (BinaryOp::I32Mul, Val::I32(5), Val::I32(3), Val::I32(15)),
            (BinaryOp::I32Add, Val::I32(15), Val::I32(1), Val::I32(16)),
        ]
    );
}

#[test]
fn selective_instrumentation_skips_other_hooks() {
    // With only the Binary hook enabled, a call-free, memory-free function
    // must trigger no hook other than `binary` — checked indirectly: the
    // spy above observed exactly the two binary ops and `run` succeeded,
    // so here assert the complementary case of an empty hook set.
    #[derive(Default)]
    struct CountEverything {
        binaries: usize,
    }
    impl Analysis for CountEverything {
        fn hooks(&self) -> HookSet {
            HookSet::empty()
        }
        fn binary(&mut self, _: &AnalysisCtx, _: &BinaryEvt) {
            self.binaries += 1;
        }
    }

    let mut builder = ModuleBuilder::new();
    builder.function("f", &[ValType::I32], &[ValType::I32], |f| {
        f.get_local(0u32).i32_const(2).i32_mul();
    });
    let module = builder.finish();

    let mut analysis = CountEverything::default();
    let session = AnalysisSession::for_analysis(&module, &analysis).expect("instruments");
    let result = session
        .run(&mut analysis, "f", &[Val::I32(21)])
        .expect("runs");

    assert_eq!(result, vec![Val::I32(42)]);
    assert_eq!(analysis.binaries, 0, "no hooks enabled, none may fire");
}
