//! Edge-case fixtures for the instrumenter, in the spirit of the paper's
//! validation against the 63 spec-suite programs (§4.3): tricky control
//! flow, block result values carried through branches, traps interleaved
//! with hooks, and wide mixed-type call signatures.

use wasabi_repro::core::hooks::{Hook, HookSet, NoAnalysis};
use wasabi_repro::core::{AnalysisSession, WasabiHost};
use wasabi_repro::vm::{EmptyHost, Instance, Trap};
use wasabi_repro::wasm::builder::ModuleBuilder;
use wasabi_repro::wasm::validate::validate;
use wasabi_repro::wasm::{BinaryOp, Module, Val, ValType};

/// Original and fully instrumented runs must agree (results or traps).
fn assert_faithful(module: &Module, export: &str, args: &[Val]) -> Result<Vec<Val>, Trap> {
    validate(module).expect("fixture is valid");
    let mut host = EmptyHost;
    let mut instance = Instance::instantiate(module.clone(), &mut host).expect("instantiates");
    let original = instance.invoke_export(export, args, &mut host);

    for hooks in [
        HookSet::all(),
        HookSet::of(&[Hook::End, Hook::Br, Hook::BrIf]),
    ] {
        let session = AnalysisSession::new(module, hooks).expect("instruments");
        validate(session.module()).expect("instrumented fixture validates");
        let mut analysis = NoAnalysis;
        let mut whost = WasabiHost::new(session.info(), &mut analysis);
        let mut instance =
            Instance::instantiate(session.module().clone(), &mut whost).expect("instantiates");
        let instrumented = instance.invoke_export(export, args, &mut whost);
        assert_eq!(original, instrumented, "hooks {hooks} diverged");
    }
    original
}

#[test]
fn branch_carrying_value_out_of_nested_blocks() {
    // A br that carries a block result across two traversed blocks: the
    // end-hook calls inserted before the br must not disturb the carried
    // value.
    let mut builder = ModuleBuilder::new();
    builder.function("f", &[ValType::I32], &[ValType::I32], |f| {
        f.block(Some(ValType::I32));
        f.block(None);
        f.loop_(None);
        f.get_local(0u32).i32_const(100).i32_add();
        f.br(2); // carries the value out of loop, block, to the outer block
        f.end();
        f.end();
        f.i32_const(-1); // unreachable filler for the outer block's result
        f.end();
    });
    let r = assert_faithful(&builder.finish(), "f", &[Val::I32(5)]).unwrap();
    assert_eq!(r, vec![Val::I32(105)]);
}

#[test]
fn br_if_to_block_with_result() {
    // br_if to a block with a result type: the carried value must survive
    // both the taken and non-taken path, with the conditional end-hook
    // wrapper in between.
    let mut builder = ModuleBuilder::new();
    builder.function("f", &[ValType::I32], &[ValType::I32], |f| {
        f.block(Some(ValType::I32));
        f.i32_const(7);
        f.get_local(0u32);
        f.br_if(0);
        f.drop_();
        f.i32_const(8);
        f.end();
    });
    let module = builder.finish();
    assert_eq!(
        assert_faithful(&module, "f", &[Val::I32(1)]).unwrap(),
        vec![Val::I32(7)]
    );
    assert_eq!(
        assert_faithful(&module, "f", &[Val::I32(0)]).unwrap(),
        vec![Val::I32(8)]
    );
}

#[test]
fn if_else_with_result_value() {
    let mut builder = ModuleBuilder::new();
    builder.function("f", &[ValType::I32], &[ValType::F64], |f| {
        f.get_local(0u32);
        f.if_(Some(ValType::F64));
        f.f64_const(1.5);
        f.else_();
        f.f64_const(-1.5);
        f.end();
    });
    let module = builder.finish();
    assert_eq!(
        assert_faithful(&module, "f", &[Val::I32(1)]).unwrap(),
        vec![Val::F64(1.5)]
    );
    assert_eq!(
        assert_faithful(&module, "f", &[Val::I32(0)]).unwrap(),
        vec![Val::F64(-1.5)]
    );
}

#[test]
fn loop_with_result_type() {
    // Loops may declare result types in Wasm 1.0 (the label still carries
    // nothing).
    let mut builder = ModuleBuilder::new();
    builder.function("f", &[], &[ValType::I32], |f| {
        let i = f.local(ValType::I32);
        f.loop_(Some(ValType::I32));
        // Leave i on the stack as the loop result; br_if consumes only the
        // comparison (branching back resets to the loop-entry height).
        f.get_local(i)
            .i32_const(1)
            .i32_add()
            .tee_local(i)
            .set_local(i);
        f.get_local(i);
        f.get_local(i)
            .i32_const(3)
            .binary(BinaryOp::I32LtS)
            .br_if(0);
        f.end();
        f.drop_();
        f.get_local(i);
    });
    let r = assert_faithful(&builder.finish(), "f", &[]).unwrap();
    assert_eq!(r, vec![Val::I32(3)]);
}

#[test]
fn trap_mid_function_with_hooks() {
    // Division by zero after some instrumented instructions: both runs
    // trap identically.
    let mut builder = ModuleBuilder::new();
    builder.function("f", &[ValType::I32], &[ValType::I32], |f| {
        f.i32_const(100).get_local(0u32).binary(BinaryOp::I32DivS);
    });
    let module = builder.finish();
    assert_eq!(
        assert_faithful(&module, "f", &[Val::I32(0)]).unwrap_err(),
        Trap::IntegerDivideByZero
    );
    assert_eq!(
        assert_faithful(&module, "f", &[Val::I32(4)]).unwrap(),
        vec![Val::I32(25)]
    );
}

#[test]
fn indirect_call_trap_after_call_pre_hook() {
    // call_indirect to an out-of-bounds slot: the call_pre hook fires,
    // then the trap happens — identically in both runs.
    let mut builder = ModuleBuilder::new();
    let id = builder.function("", &[], &[ValType::I32], |f| {
        f.i32_const(1);
    });
    builder.table(1);
    builder.elements(0, vec![id]);
    builder.function("f", &[ValType::I32], &[ValType::I32], |f| {
        f.get_local(0u32);
        f.call_indirect(&[], &[ValType::I32]);
    });
    let module = builder.finish();
    assert_eq!(
        assert_faithful(&module, "f", &[Val::I32(5)]).unwrap_err(),
        Trap::OutOfBoundsTableAccess
    );
    assert_eq!(
        assert_faithful(&module, "f", &[Val::I32(0)]).unwrap(),
        vec![Val::I32(1)]
    );
}

#[test]
fn wide_mixed_type_call_signature() {
    // A call with many mixed parameters including several i64s: the
    // monomorphized call_pre hook must split/restore everything correctly.
    let params = [
        ValType::I64,
        ValType::I32,
        ValType::F64,
        ValType::I64,
        ValType::F32,
        ValType::I64,
        ValType::I32,
    ];
    let mut builder = ModuleBuilder::new();
    let callee = builder.function("", &params, &[ValType::I64], |f| {
        // Fold everything into an i64.
        f.get_local(0u32);
        f.get_local(1u32)
            .unary(wasabi_repro::wasm::UnaryOp::I64ExtendSI32);
        f.binary(BinaryOp::I64Add);
        f.get_local(3u32).binary(BinaryOp::I64Xor);
        f.get_local(5u32).binary(BinaryOp::I64Sub);
        f.get_local(6u32)
            .unary(wasabi_repro::wasm::UnaryOp::I64ExtendSI32);
        f.binary(BinaryOp::I64Mul);
    });
    builder.function("f", &[], &[ValType::I64], |f| {
        f.i64_const(0x1234_5678_9abc_def0u64 as i64);
        f.i32_const(-5);
        f.f64_const(2.5);
        f.i64_const(-1);
        f.f32_const(1.5);
        f.i64_const(i64::MIN);
        f.i32_const(3);
        f.call(callee);
    });
    let module = builder.finish();
    let r = assert_faithful(&module, "f", &[]).unwrap();
    assert_eq!(r.len(), 1);
    assert!(r[0].as_i64().is_some());
}

#[test]
fn start_function_grows_memory() {
    let mut builder = ModuleBuilder::new();
    builder.memory(1, None);
    let start = builder.function("", &[], &[], |f| {
        f.i32_const(2).memory_grow().drop_();
    });
    builder.start(start);
    builder.function("f", &[], &[ValType::I32], |f| {
        f.memory_size();
    });
    let r = assert_faithful(&builder.finish(), "f", &[]).unwrap();
    assert_eq!(r, vec![Val::I32(3)]);
}

#[test]
fn deeply_nested_blocks() {
    // 32 levels of nesting with a branch from the innermost to several
    // intermediate levels.
    let mut builder = ModuleBuilder::new();
    builder.function("f", &[ValType::I32], &[ValType::I32], |f| {
        let acc = f.local(ValType::I32);
        for _ in 0..32 {
            f.block(None);
        }
        f.get_local(0u32).br_if(15);
        f.get_local(acc).i32_const(1).i32_add().set_local(acc);
        for _ in 0..32 {
            f.end();
            f.get_local(acc).i32_const(1).i32_add().set_local(acc);
        }
        f.get_local(acc);
    });
    let module = builder.finish();
    let taken = assert_faithful(&module, "f", &[Val::I32(1)]).unwrap();
    let not_taken = assert_faithful(&module, "f", &[Val::I32(0)]).unwrap();
    // Taken: lands right after the 16th `end`, before its `+1`, so the 17
    // increments after ends 16..=32 run; the inner `+1` is skipped.
    assert_eq!(taken, vec![Val::I32(17)]);
    assert_eq!(not_taken, vec![Val::I32(33)]);
}

#[test]
fn dead_code_after_branches_in_blocks() {
    let mut builder = ModuleBuilder::new();
    builder.function("f", &[], &[ValType::I32], |f| {
        f.block(None);
        f.br(0);
        // Dead code with its own (never-executed) nested structure.
        f.i32_const(1).drop_();
        f.block(None).i32_const(0).br_if(0).end();
        f.end();
        f.i32_const(9);
    });
    let r = assert_faithful(&builder.finish(), "f", &[]).unwrap();
    assert_eq!(r, vec![Val::I32(9)]);
}

#[test]
fn return_from_within_loop_in_block() {
    let mut builder = ModuleBuilder::new();
    builder.function("f", &[ValType::I32], &[ValType::I32], |f| {
        let i = f.local(ValType::I32);
        f.block(None);
        f.loop_(None);
        f.get_local(i).i32_const(1).i32_add().tee_local(i);
        f.get_local(0u32).binary(BinaryOp::I32GeS);
        f.if_(None);
        f.get_local(i).i32_const(1000).i32_add().return_();
        f.end();
        f.br(0);
        f.end();
        f.end();
        f.i32_const(-1);
    });
    let r = assert_faithful(&builder.finish(), "f", &[Val::I32(4)]).unwrap();
    assert_eq!(r, vec![Val::I32(1004)]);
}

#[test]
fn large_br_table_with_end_replay() {
    // A 64-entry branch table over 65 nested blocks: the statically
    // extracted per-entry end lists (paper §2.4.5) have up to 65 entries.
    const ARMS: u32 = 64;
    let mut builder = ModuleBuilder::new();
    builder.function("f", &[ValType::I32], &[ValType::I32], |f| {
        let acc = f.local(ValType::I32);
        for _ in 0..=ARMS {
            f.block(None);
        }
        f.get_local(0u32);
        f.br_table((0..ARMS).collect(), ARMS);
        f.end();
        for arm in 0..ARMS {
            f.get_local(acc)
                .i32_const(arm as i32)
                .i32_add()
                .set_local(acc);
            f.end();
        }
        f.get_local(acc);
    });
    let module = builder.finish();
    // Entry k lands after the (k+1)-th end, before arm k's increment, so
    // arms k..ARMS all run: acc = sum(k..64).
    for k in [0u32, 1, 31, 63, 64, 200] {
        let taken = k.min(ARMS);
        let expected: i32 = (taken..ARMS).map(|a| a as i32).sum();
        let r = assert_faithful(&module, "f", &[Val::I32(k as i32)]).unwrap();
        assert_eq!(r, vec![Val::I32(expected)], "entry {k}");
    }
}

#[test]
fn recursive_function_fully_instrumented() {
    // Recursive fibonacci: hook calls add transient host frames but must
    // not change results or the wasm call-depth semantics.
    let mut builder = ModuleBuilder::new();
    builder.function("fib", &[ValType::I32], &[ValType::I32], |f| {
        f.get_local(0u32).i32_const(2).binary(BinaryOp::I32LtS);
        f.if_(Some(ValType::I32));
        f.get_local(0u32);
        f.else_();
        f.get_local(0u32).i32_const(1).i32_sub();
        f.call(wasabi_repro::wasm::Idx::from(0u32));
        f.get_local(0u32).i32_const(2).i32_sub();
        f.call(wasabi_repro::wasm::Idx::from(0u32));
        f.i32_add();
        f.end();
    });
    let module = builder.finish();
    let r = assert_faithful(&module, "fib", &[Val::I32(12)]).unwrap();
    assert_eq!(r, vec![Val::I32(144)]);
}

#[test]
fn branch_to_function_label_acts_as_return() {
    // A br whose label targets the implicit function block exits the
    // function, carrying the result — with end hooks for every frame.
    let mut builder = ModuleBuilder::new();
    builder.function("f", &[ValType::I32], &[ValType::I32], |f| {
        f.block(None);
        f.block(None);
        f.get_local(0u32);
        f.if_(None);
        f.i32_const(77);
        f.br(3); // 0=if, 1=inner block, 2=outer block, 3=function
        f.end();
        f.end();
        f.end();
        f.i32_const(-1);
    });
    let module = builder.finish();
    assert_eq!(
        assert_faithful(&module, "f", &[Val::I32(1)]).unwrap(),
        vec![Val::I32(77)]
    );
    assert_eq!(
        assert_faithful(&module, "f", &[Val::I32(0)]).unwrap(),
        vec![Val::I32(-1)]
    );
}

#[test]
fn empty_function_bodies() {
    let mut builder = ModuleBuilder::new();
    let empty = builder.function("", &[], &[], |_| {});
    builder.function("f", &[], &[ValType::I32], |f| {
        f.call(empty).call(empty).i32_const(11);
    });
    let r = assert_faithful(&builder.finish(), "f", &[]).unwrap();
    assert_eq!(r, vec![Val::I32(11)]);
}
