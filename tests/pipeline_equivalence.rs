//! Property test for the fused pipeline (ISSUE 2 acceptance criterion):
//! a fused `Pipeline` run over N analyses produces **bit-identical**
//! per-analysis results to N independent `AnalysisSession` runs, on
//! random well-typed modules.
//!
//! "Bit-identical" is checked two ways: through the structured reports
//! for every registered analysis (deterministic serialization of each
//! analysis' findings — some reports aggregate, so this alone could miss
//! a divergence that preserves aggregates), and through *full internal
//! state* (complete traces, covered-location sets, branch-outcome maps)
//! for concrete analysis types in `full_state_matches_event_for_event`.

use proptest::prelude::*;

use wasabi_repro::analyses::registry;
use wasabi_repro::core::hooks::Analysis;
use wasabi_repro::core::{AnalysisSession, Wasabi};
use wasabi_repro::workloads::synthetic::{synthetic_app, SyntheticConfig};
use wasabi_repro::workloads::{compile, polybench};

/// Run `names` sequentially, one instrument+execute pass each, and return
/// each analysis' report JSON.
fn sequential_reports(module: &wasabi_repro::wasm::Module, names: &[&str]) -> Vec<String> {
    names
        .iter()
        .map(|name| {
            let mut analysis = registry::by_name(name).expect("registered");
            let session =
                AnalysisSession::for_analysis(module, analysis.as_ref()).expect("instruments");
            session.run(analysis.as_mut(), "main", &[]).expect("runs");
            analysis.report().to_json()
        })
        .collect()
}

/// Run `names` fused in one pipeline pass and return the report JSONs.
fn fused_reports(module: &wasabi_repro::wasm::Module, names: &[&str]) -> Vec<String> {
    let mut analyses: Vec<Box<dyn Analysis>> = names
        .iter()
        .map(|name| registry::by_name(name).expect("registered"))
        .collect();
    let mut builder = Wasabi::builder();
    for analysis in &mut analyses {
        builder = builder.analysis(analysis.as_mut());
    }
    let mut pipeline = builder.build(module).expect("instruments");
    pipeline.run("main", &[]).expect("runs");
    pipeline
        .reports()
        .iter()
        .map(|report| report.to_json())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    #[test]
    fn fused_pipeline_matches_independent_sessions(
        seed in any::<u64>(),
        function_count in 2usize..6,
        body_statements in 2usize..6,
        // Non-empty subset of the 9 registered analyses, as a bitmask.
        mask in 1u32..512,
    ) {
        let module = synthetic_app(&SyntheticConfig {
            seed,
            function_count,
            body_statements,
        });
        let names: Vec<&str> = registry::NAMES
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, name)| *name)
            .collect();

        let expected = sequential_reports(&module, &names);
        let fused = fused_reports(&module, &names);
        prop_assert_eq!(fused, expected);
    }
}

#[test]
fn full_state_matches_event_for_event() {
    // Reports aggregate; this compares the analyses' COMPLETE internal
    // state, so a fused-dispatch bug that reorders or drops single
    // events while preserving aggregates is still caught.
    use wasabi_repro::analyses::{BranchCoverage, InstructionCoverage, MemoryTracing};

    let module = compile(&polybench::by_name("gemm", 8).expect("known kernel"));

    let mut seq_trace = MemoryTracing::new();
    let session = AnalysisSession::for_analysis(&module, &seq_trace).unwrap();
    session.run(&mut seq_trace, "main", &[]).unwrap();
    let mut seq_cov = InstructionCoverage::new();
    let session = AnalysisSession::for_analysis(&module, &seq_cov).unwrap();
    session.run(&mut seq_cov, "main", &[]).unwrap();
    let mut seq_branches = BranchCoverage::new();
    let session = AnalysisSession::for_analysis(&module, &seq_branches).unwrap();
    session.run(&mut seq_branches, "main", &[]).unwrap();

    let mut trace = MemoryTracing::new();
    let mut cov = InstructionCoverage::new();
    let mut branches = BranchCoverage::new();
    let mut pipeline = Wasabi::builder()
        .analysis(&mut trace)
        .analysis(&mut cov)
        .analysis(&mut branches)
        .build(&module)
        .unwrap();
    pipeline.run("main", &[]).unwrap();
    drop(pipeline);

    // Every access in order, every covered location, every outcome set.
    assert_eq!(trace.trace(), seq_trace.trace());
    assert_eq!(cov.covered(), seq_cov.covered());
    assert_eq!(branches.branches(), seq_branches.branches());
    assert!(!trace.trace().is_empty() && !cov.covered().is_empty());
}

#[test]
fn all_nine_analyses_agree_on_a_polybench_kernel() {
    // The deterministic anchor for the property above: every registered
    // analysis at once, on a real workload.
    let module = compile(&polybench::by_name("gemm", 8).expect("known kernel"));
    let names: Vec<&str> = registry::NAMES.to_vec();
    let expected = sequential_reports(&module, &names);
    let fused = fused_reports(&module, &names);
    assert_eq!(fused, expected);
    // And the reports are actually non-trivial.
    assert!(expected
        .iter()
        .any(|json| json.contains("\"total\"") && !json.contains("\"total\":0")));
}
