//! Cross-crate integration: each of the paper's eight analyses (Table 4)
//! applied to real workloads, checking analysis-level invariants.

use wasabi_repro::analyses::{
    BasicBlockProfiling, BranchCoverage, CallGraph, CryptominerDetection, InstructionCoverage,
    InstructionMix, MemoryTracing, TaintAnalysis,
};
use wasabi_repro::core::AnalysisSession;
use wasabi_repro::vm::{EmptyHost, Instance};
use wasabi_repro::workloads::{compile, polybench, synthetic};

fn gemm_module() -> wasabi_repro::wasm::Module {
    compile(&polybench::by_name("gemm", 8).expect("known"))
}

#[test]
fn instruction_mix_total_matches_vm_instruction_count() {
    // The analysis sees every original instruction the VM executes —
    // cross-check the hook-based count against the interpreter's own
    // counter on the *uninstrumented* module.
    let module = gemm_module();
    let mut host = EmptyHost;
    let mut instance = Instance::instantiate(module.clone(), &mut host).unwrap();
    instance.invoke_export("main", &[], &mut host).unwrap();
    let vm_count = instance.executed_instrs();

    let mut mix = InstructionMix::new();
    let session = AnalysisSession::for_analysis(&module, &mix).unwrap();
    session.run(&mut mix, "main", &[]).unwrap();

    // The two counters differ systematically: the VM executes `end`/`else`
    // opcodes (not counted by the mix analysis), while the mix analysis
    // counts a loop entry per *iteration* (the begin hook fires each time,
    // paper Table 3 row 5) where the VM executes the `loop` opcode once.
    // They must still be the same order of magnitude.
    assert!(mix.total() > vm_count / 2, "{} vs {vm_count}", mix.total());
    assert!(mix.total() < vm_count * 2, "{} vs {vm_count}", mix.total());
    assert!(mix.counts()["f64.add"] > 0);
    assert!(mix.counts()["f64.mul"] > 0);
    assert_eq!(
        mix.counts()["call"],
        3, // main calls init, kernel, checksum
    );
}

#[test]
fn basic_block_profile_finds_hot_inner_loop() {
    let module = gemm_module();
    let mut profile = BasicBlockProfiling::new();
    let session = AnalysisSession::for_analysis(&module, &profile).unwrap();
    session.run(&mut profile, "main", &[]).unwrap();

    let hottest = profile.hottest(1)[0];
    // The hottest block must be a loop executed far more often than any
    // function is entered.
    assert_eq!(hottest.1, wasabi_repro::core::BlockKind::Loop);
    assert!(hottest.2 > 100);
}

#[test]
fn coverage_is_full_for_straight_line_kernels_after_one_run() {
    // gemm has no input-dependent branches: one run covers everything
    // except nothing — i.e. ratio == 1.0.
    let module = gemm_module();
    let mut coverage = InstructionCoverage::new();
    let session = AnalysisSession::for_analysis(&module, &coverage).unwrap();
    session.run(&mut coverage, "main", &[]).unwrap();
    let ratio = coverage.ratio(session.info());
    assert!(
        (ratio - 1.0).abs() < 1e-9,
        "gemm should be fully covered, got {ratio}"
    );
}

#[test]
fn branch_coverage_sees_loop_exits_both_ways() {
    let module = gemm_module();
    let mut coverage = BranchCoverage::new();
    let session = AnalysisSession::for_analysis(&module, &coverage).unwrap();
    session.run(&mut coverage, "main", &[]).unwrap();
    // Every loop's exit br_if is taken (on exit) and not taken (while
    // iterating): all branches fully covered.
    assert!(!coverage.branches().is_empty());
    assert!(coverage.partially_covered().is_empty());
}

#[test]
fn call_graph_of_kernel_is_main_to_phases() {
    let module = gemm_module();
    let mut graph = CallGraph::new();
    let session = AnalysisSession::for_analysis(&module, &graph).unwrap();
    session.run(&mut graph, "main", &[]).unwrap();
    // main (3) calls init (0), kernel (1), checksum (2) exactly once each.
    assert_eq!(graph.edges().len(), 3);
    assert!(graph.edges().values().all(|&count| count == 1));
}

#[test]
fn call_graph_of_synthetic_app_is_rich() {
    let module = synthetic::synthetic_app(&synthetic::SyntheticConfig::small());
    let mut graph = CallGraph::new();
    let session = AnalysisSession::for_analysis(&module, &graph).unwrap();
    session.run(&mut graph, "main", &[]).unwrap();
    assert!(graph.edges().len() > 10, "got {}", graph.edges().len());
    // The app performs indirect calls from main.
    assert!(graph.edges().keys().any(|&edge| graph.is_indirect(edge)));
}

#[test]
fn taint_analysis_handles_kernel_without_sources() {
    // No sources configured: running a whole kernel must produce no flows
    // and keep the shadow state consistent (no panics, balanced frames).
    let module = gemm_module();
    let mut taint = TaintAnalysis::new(&[], &[]);
    let session = AnalysisSession::for_analysis(&module, &taint).unwrap();
    session.run(&mut taint, "main", &[]).unwrap();
    assert!(taint.flows().is_empty());
}

#[test]
fn cryptominer_detector_separates_miner_from_kernels() {
    let mut detector = CryptominerDetection::new();
    let miner = synthetic::miner(50_000);
    let session = AnalysisSession::for_analysis(&miner, &detector).unwrap();
    session.run(&mut detector, "mine", &[]).unwrap();
    assert!(detector.is_likely_miner());

    for name in ["gemm", "jacobi-2d"] {
        let mut detector = CryptominerDetection::new();
        let module = compile(&polybench::by_name(name, 8).expect("known"));
        let session = AnalysisSession::for_analysis(&module, &detector).unwrap();
        session.run(&mut detector, "main", &[]).unwrap();
        assert!(!detector.is_likely_miner(), "{name} misclassified");
    }
}

#[test]
fn fused_analyses_match_separate_runs() {
    // Running two analyses fused over ONE execution (union hook set with
    // per-hook dispatch) must give each the same results as its own
    // dedicated run.
    use wasabi_repro::core::Wasabi;

    let module = gemm_module();

    let mut separate_graph = CallGraph::new();
    let session = AnalysisSession::for_analysis(&module, &separate_graph).unwrap();
    session.run(&mut separate_graph, "main", &[]).unwrap();

    let mut separate_profile = BasicBlockProfiling::new();
    let session = AnalysisSession::for_analysis(&module, &separate_profile).unwrap();
    session.run(&mut separate_profile, "main", &[]).unwrap();

    let mut graph = CallGraph::new();
    let mut profile = BasicBlockProfiling::new();
    let mut pipeline = Wasabi::builder()
        .analysis(&mut graph)
        .analysis(&mut profile)
        .build(&module)
        .unwrap();
    pipeline.run("main", &[]).unwrap();
    drop(pipeline);

    assert_eq!(graph.edges(), separate_graph.edges());
    assert_eq!(profile.counts(), separate_profile.counts());
}

#[test]
fn memory_tracing_matches_kernel_structure() {
    let module = gemm_module();
    let mut tracing = MemoryTracing::new();
    let session = AnalysisSession::for_analysis(&module, &tracing).unwrap();
    session.run(&mut tracing, "main", &[]).unwrap();
    let (read, written) = tracing.bytes_transferred();
    assert!(read > 0 && written > 0);
    // gemm reads much more than it writes (A and B per C update).
    assert!(read > written);
    // All accesses are 8-byte f64 accesses.
    assert!(tracing.trace().iter().all(|a| a.bytes == 8));
}
