//! Differential suite for the host-call intrinsic fast path (ISSUE 4
//! acceptance criterion): random modules instrumented for random hook sets
//! are executed three ways —
//!
//! 1. **intrinsic**: the flat IR with `Op::HostCall`/`Op::HostCallConst`
//!    (the production path),
//! 2. **generic flat**: the flat IR translated without host-call
//!    intrinsics (the pre-intrinsic fallback, still exercised by
//!    `call_indirect` to imports),
//! 3. **Reference**: the structured-walk oracle with the generic call
//!    machinery.
//!
//! All three must produce **bit-identical** hook event streams (recorded
//! event-for-event with locations and payloads), analysis reports,
//! results/traps, and `executed_instrs` — including under fuel exhaustion,
//! which can preempt execution in the middle of a folded
//! const+const+call group. The host-call path counters additionally prove
//! that the intrinsic path actually fired on path 1 and that paths 2 and 3
//! really took the generic fallback.

use proptest::prelude::*;

use wasabi_repro::core::event::{
    AnalysisCtx, BinaryEvt, BlockEvt, BranchEvt, BranchTableEvt, CallEvt, CallPostEvt, EndEvt,
    GlobalEvt, IfEvt, LoadEvt, LocalEvt, MemGrowEvt, MemSizeEvt, ReturnEvt, SelectEvt, StoreEvt,
    UnaryEvt, ValEvt,
};
use wasabi_repro::core::hooks::{Analysis, Hook, HookSet};
use wasabi_repro::core::report::{JsonValue, Report};
use wasabi_repro::core::{instrument, ModuleInfo, WasabiHost};
use wasabi_repro::vm::{Instance, Reference, TranslatedModule, Trap};
use wasabi_repro::wasm::{Module, Val};
use wasabi_repro::workloads::synthetic::{synthetic_app, SyntheticConfig};
use wasabi_repro::workloads::{compile, polybench};

/// Records every delivered event as a formatted line (location + full
/// payload), so two runs can be compared event-for-event.
struct Recorder {
    subscribed: HookSet,
    log: Vec<String>,
}

impl Recorder {
    fn new(subscribed: HookSet) -> Self {
        Recorder {
            subscribed,
            log: Vec::new(),
        }
    }

    fn push(&mut self, ctx: &AnalysisCtx, line: String) {
        self.log
            .push(format!("{}:{} {line}", ctx.loc.func, ctx.loc.instr));
    }
}

impl Analysis for Recorder {
    fn name(&self) -> &str {
        "recorder"
    }

    fn hooks(&self) -> HookSet {
        self.subscribed
    }

    fn start(&mut self, ctx: &AnalysisCtx) {
        self.push(ctx, "start".to_string());
    }
    fn nop(&mut self, ctx: &AnalysisCtx) {
        self.push(ctx, "nop".to_string());
    }
    fn unreachable(&mut self, ctx: &AnalysisCtx) {
        self.push(ctx, "unreachable".to_string());
    }
    fn if_(&mut self, ctx: &AnalysisCtx, evt: &IfEvt) {
        self.push(ctx, format!("{evt:?}"));
    }
    fn br(&mut self, ctx: &AnalysisCtx, evt: &BranchEvt) {
        self.push(ctx, format!("br {evt:?}"));
    }
    fn br_if(&mut self, ctx: &AnalysisCtx, evt: &BranchEvt) {
        self.push(ctx, format!("br_if {evt:?}"));
    }
    fn br_table(&mut self, ctx: &AnalysisCtx, evt: &BranchTableEvt) {
        self.push(ctx, format!("{evt:?}"));
    }
    fn begin(&mut self, ctx: &AnalysisCtx, evt: &BlockEvt) {
        self.push(ctx, format!("begin {evt:?}"));
    }
    fn end(&mut self, ctx: &AnalysisCtx, evt: &EndEvt) {
        self.push(ctx, format!("{evt:?}"));
    }
    fn memory_size(&mut self, ctx: &AnalysisCtx, evt: &MemSizeEvt) {
        self.push(ctx, format!("{evt:?}"));
    }
    fn memory_grow(&mut self, ctx: &AnalysisCtx, evt: &MemGrowEvt) {
        self.push(ctx, format!("{evt:?}"));
    }
    fn const_(&mut self, ctx: &AnalysisCtx, evt: &ValEvt) {
        self.push(ctx, format!("const {evt:?}"));
    }
    fn drop_(&mut self, ctx: &AnalysisCtx, evt: &ValEvt) {
        self.push(ctx, format!("drop {evt:?}"));
    }
    fn select(&mut self, ctx: &AnalysisCtx, evt: &SelectEvt) {
        self.push(ctx, format!("{evt:?}"));
    }
    fn unary(&mut self, ctx: &AnalysisCtx, evt: &UnaryEvt) {
        self.push(ctx, format!("{evt:?}"));
    }
    fn binary(&mut self, ctx: &AnalysisCtx, evt: &BinaryEvt) {
        self.push(ctx, format!("{evt:?}"));
    }
    fn load(&mut self, ctx: &AnalysisCtx, evt: &LoadEvt) {
        self.push(ctx, format!("{evt:?}"));
    }
    fn store(&mut self, ctx: &AnalysisCtx, evt: &StoreEvt) {
        self.push(ctx, format!("{evt:?}"));
    }
    fn local(&mut self, ctx: &AnalysisCtx, evt: &LocalEvt) {
        self.push(ctx, format!("local {evt:?}"));
    }
    fn global(&mut self, ctx: &AnalysisCtx, evt: &GlobalEvt) {
        self.push(ctx, format!("global {evt:?}"));
    }
    fn return_(&mut self, ctx: &AnalysisCtx, evt: &ReturnEvt) {
        self.push(ctx, format!("{evt:?}"));
    }
    fn call_pre(&mut self, ctx: &AnalysisCtx, evt: &CallEvt) {
        self.push(ctx, format!("{evt:?}"));
    }
    fn call_post(&mut self, ctx: &AnalysisCtx, evt: &CallPostEvt) {
        self.push(ctx, format!("{evt:?}"));
    }

    fn report(&self) -> Report {
        Report::new(
            "recorder",
            JsonValue::object([
                ("events", JsonValue::UInt(self.log.len() as u64)),
                (
                    "last",
                    self.log
                        .last()
                        .map(|s| JsonValue::Str(s.clone()))
                        .unwrap_or(JsonValue::Null),
                ),
            ]),
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Path {
    Intrinsic,
    GenericFlat,
    Reference,
}

struct Outcome {
    result: Result<Vec<Val>, Trap>,
    executed_instrs: u64,
    host_calls_fast: u64,
    host_calls_slow: u64,
    log: Vec<String>,
    report: String,
}

/// Execute the instrumented module's `main` along one of the three paths.
fn run_path(
    instrumented: &Module,
    info: &ModuleInfo,
    hooks: HookSet,
    fuel: Option<u64>,
    path: Path,
) -> Outcome {
    let translated = match path {
        Path::Intrinsic => TranslatedModule::new(instrumented.clone()),
        Path::GenericFlat | Path::Reference => {
            TranslatedModule::new_without_host_intrinsics(instrumented.clone())
        }
    }
    .expect("instrumented module validates");

    let mut recorder = Recorder::new(hooks);
    let mut host = WasabiHost::new(info, &mut recorder);
    let mut instance =
        Instance::instantiate_translated(&translated, &mut host).expect("instantiates");
    instance.set_fuel(fuel);
    let result = match path {
        Path::Reference => {
            let reference = Reference::new(instrumented);
            reference.invoke_export(&mut instance, "main", &[], &mut host)
        }
        _ => instance.invoke_export("main", &[], &mut host),
    };
    let (host_calls_fast, host_calls_slow) = instance.host_call_counts();
    let executed_instrs = instance.executed_instrs();
    drop(host);
    let report = recorder.report().to_json();
    Outcome {
        result,
        executed_instrs,
        host_calls_fast,
        host_calls_slow,
        log: recorder.log,
        report,
    }
}

/// Assert two outcomes are bit-identical in everything observable.
fn assert_equivalent(a: &Outcome, b: &Outcome, what: &str) {
    assert_eq!(a.result, b.result, "{what}: results/traps");
    assert_eq!(a.executed_instrs, b.executed_instrs, "{what}: instrs");
    assert_eq!(a.log.len(), b.log.len(), "{what}: event count");
    for (i, (x, y)) in a.log.iter().zip(&b.log).enumerate() {
        assert_eq!(x, y, "{what}: event #{i}");
    }
    assert_eq!(a.report, b.report, "{what}: reports");
    // Every path performs the same host calls, only the dispatch route
    // differs.
    assert_eq!(
        a.host_calls_fast + a.host_calls_slow,
        b.host_calls_fast + b.host_calls_slow,
        "{what}: total host calls"
    );
}

fn hook_set_from_mask(mask: u32) -> HookSet {
    Hook::ALL
        .into_iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, hook)| hook)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        ..ProptestConfig::default()
    })]

    #[test]
    fn intrinsic_path_matches_reference_on_random_instrumented_modules(
        seed in any::<u64>(),
        function_count in 2usize..6,
        body_statements in 2usize..6,
        mask in 1u32..(1 << 23),
        fuel in prop::option::of(1u64..30_000),
    ) {
        let module = synthetic_app(&SyntheticConfig {
            seed,
            function_count,
            body_statements,
        });
        let hooks = hook_set_from_mask(mask);
        let (instrumented, info) = instrument(&module, hooks).expect("instruments");

        let intrinsic = run_path(&instrumented, &info, hooks, fuel, Path::Intrinsic);
        let generic = run_path(&instrumented, &info, hooks, fuel, Path::GenericFlat);
        let reference = run_path(&instrumented, &info, hooks, fuel, Path::Reference);

        assert_equivalent(&intrinsic, &generic, "intrinsic vs generic flat");
        assert_equivalent(&intrinsic, &reference, "intrinsic vs reference");

        // The fallback paths must not touch the intrinsic ops, and any
        // direct hook call the module makes must take the fast path on the
        // intrinsic translation.
        prop_assert_eq!(generic.host_calls_fast, 0);
        prop_assert_eq!(reference.host_calls_fast, 0);
        prop_assert!(
            intrinsic.host_calls_slow <= reference.host_calls_slow,
            "intrinsic path must not add generic host calls"
        );
    }
}

#[test]
fn all_hooks_on_a_polybench_kernel_match_the_oracle() {
    // Deterministic anchor: full instrumentation over a real kernel. The
    // intrinsic fast path must fire (the whole point of the PR) and the
    // event stream must equal the structured-walk oracle's.
    let module = compile(&polybench::by_name("jacobi-1d", 5).expect("known kernel"));
    let hooks = HookSet::all();
    let (instrumented, info) = instrument(&module, hooks).expect("instruments");

    let intrinsic = run_path(&instrumented, &info, hooks, None, Path::Intrinsic);
    let reference = run_path(&instrumented, &info, hooks, None, Path::Reference);

    assert_equivalent(&intrinsic, &reference, "all-hooks kernel");
    assert!(
        intrinsic.host_calls_fast > 0,
        "intrinsic path must actually fire"
    );
    assert_eq!(
        intrinsic.host_calls_fast + intrinsic.host_calls_slow,
        reference.host_calls_slow + reference.host_calls_fast,
    );
    assert!(!intrinsic.log.is_empty());
}

#[test]
fn fuel_sweep_preempts_identically_across_paths() {
    // Fuel exhaustion can land on any member of a folded
    // const+const+call hook group; the trap point, the instruction count,
    // and the event-stream prefix must match the oracle for every budget.
    let module = synthetic_app(&SyntheticConfig {
        seed: 0xD1FF,
        function_count: 3,
        body_statements: 4,
    });
    let hooks = HookSet::of(&[
        Hook::Const,
        Hook::Binary,
        Hook::Local,
        Hook::Begin,
        Hook::End,
    ]);
    let (instrumented, info) = instrument(&module, hooks).expect("instruments");

    for fuel in (1..200).step_by(7) {
        let intrinsic = run_path(&instrumented, &info, hooks, Some(fuel), Path::Intrinsic);
        let reference = run_path(&instrumented, &info, hooks, Some(fuel), Path::Reference);
        assert_equivalent(&intrinsic, &reference, &format!("fuel {fuel}"));
    }
}
