//! Three-way differential oracle for the two instrumentation paths
//! (ISSUE 6 acceptance criterion): random modules × random hook subsets
//! are executed along —
//!
//! 1. **direct-emit**: hook calls emitted straight into the flat IR from
//!    the *uninstrumented* module (`AnalysisSession::direct`, the default
//!    production path since ISSUE 6),
//! 2. **binary-rewrite + flat**: the paper's §2.4 rewriting, translated
//!    with host-call intrinsics (the previous production path, now the
//!    product path for standalone `.wasm` output — and this oracle's
//!    middle arm), plus its no-intrinsics generic-flat variant,
//! 3. **Reference**: the structured-walk oracle over the rewritten
//!    module, with the generic call machinery.
//!
//! All paths must produce **bit-identical** hook event streams (recorded
//! event-for-event with locations and payloads), analysis reports,
//! results/traps, `executed_instrs`, final linear-memory contents, and
//! final globals — including under fuel exhaustion, which can preempt
//! execution in the middle of an injected const+const+call hook group,
//! and including *subscription subsets*: when the analysis subscribes to
//! fewer hooks than were instrumented, the direct path retires the dead
//! hook calls at the dispatch arm (`Host::is_noop` masking) while the
//! rewrite paths cross the host boundary and return early — the
//! observable behavior must not differ. The host-call path counters
//! additionally prove that each arm really took its intended dispatch
//! route.

use proptest::prelude::*;

use wasabi_repro::core::event::{
    AnalysisCtx, BinaryEvt, BlockEvt, BranchEvt, BranchTableEvt, CallEvt, CallPostEvt, EndEvt,
    GlobalEvt, IfEvt, LoadEvt, LocalEvt, MemGrowEvt, MemSizeEvt, ReturnEvt, SelectEvt, StoreEvt,
    UnaryEvt, ValEvt,
};
use wasabi_repro::core::hooks::{Analysis, Hook, HookSet};
use wasabi_repro::core::report::{JsonValue, Report};
use wasabi_repro::core::{instrument, AnalysisSession, ModuleInfo, WasabiHost};
use wasabi_repro::vm::{CohortRunner, Instance, Reference, TranslatedModule, Trap};
use wasabi_repro::wasm::{Module, Val};
use wasabi_repro::workloads::synthetic::{synthetic_app, SyntheticConfig};
use wasabi_repro::workloads::{compile, polybench};

/// Records every delivered event as a formatted line (location + full
/// payload), so two runs can be compared event-for-event.
struct Recorder {
    subscribed: HookSet,
    log: Vec<String>,
}

impl Recorder {
    fn new(subscribed: HookSet) -> Self {
        Recorder {
            subscribed,
            log: Vec::new(),
        }
    }

    fn push(&mut self, ctx: &AnalysisCtx, line: String) {
        // The `i<N>` prefix is the cohort member tag (always `i0` for
        // single-instance runs); the cohort leg partitions on it.
        self.log.push(format!(
            "i{} {}:{} {line}",
            ctx.instance, ctx.loc.func, ctx.loc.instr
        ));
    }
}

impl Analysis for Recorder {
    fn name(&self) -> &str {
        "recorder"
    }

    fn hooks(&self) -> HookSet {
        self.subscribed
    }

    fn start(&mut self, ctx: &AnalysisCtx) {
        self.push(ctx, "start".to_string());
    }
    fn nop(&mut self, ctx: &AnalysisCtx) {
        self.push(ctx, "nop".to_string());
    }
    fn unreachable(&mut self, ctx: &AnalysisCtx) {
        self.push(ctx, "unreachable".to_string());
    }
    fn if_(&mut self, ctx: &AnalysisCtx, evt: &IfEvt) {
        self.push(ctx, format!("{evt:?}"));
    }
    fn br(&mut self, ctx: &AnalysisCtx, evt: &BranchEvt) {
        self.push(ctx, format!("br {evt:?}"));
    }
    fn br_if(&mut self, ctx: &AnalysisCtx, evt: &BranchEvt) {
        self.push(ctx, format!("br_if {evt:?}"));
    }
    fn br_table(&mut self, ctx: &AnalysisCtx, evt: &BranchTableEvt) {
        self.push(ctx, format!("{evt:?}"));
    }
    fn begin(&mut self, ctx: &AnalysisCtx, evt: &BlockEvt) {
        self.push(ctx, format!("begin {evt:?}"));
    }
    fn end(&mut self, ctx: &AnalysisCtx, evt: &EndEvt) {
        self.push(ctx, format!("{evt:?}"));
    }
    fn memory_size(&mut self, ctx: &AnalysisCtx, evt: &MemSizeEvt) {
        self.push(ctx, format!("{evt:?}"));
    }
    fn memory_grow(&mut self, ctx: &AnalysisCtx, evt: &MemGrowEvt) {
        self.push(ctx, format!("{evt:?}"));
    }
    fn const_(&mut self, ctx: &AnalysisCtx, evt: &ValEvt) {
        self.push(ctx, format!("const {evt:?}"));
    }
    fn drop_(&mut self, ctx: &AnalysisCtx, evt: &ValEvt) {
        self.push(ctx, format!("drop {evt:?}"));
    }
    fn select(&mut self, ctx: &AnalysisCtx, evt: &SelectEvt) {
        self.push(ctx, format!("{evt:?}"));
    }
    fn unary(&mut self, ctx: &AnalysisCtx, evt: &UnaryEvt) {
        self.push(ctx, format!("{evt:?}"));
    }
    fn binary(&mut self, ctx: &AnalysisCtx, evt: &BinaryEvt) {
        self.push(ctx, format!("{evt:?}"));
    }
    fn load(&mut self, ctx: &AnalysisCtx, evt: &LoadEvt) {
        self.push(ctx, format!("{evt:?}"));
    }
    fn store(&mut self, ctx: &AnalysisCtx, evt: &StoreEvt) {
        self.push(ctx, format!("{evt:?}"));
    }
    fn local(&mut self, ctx: &AnalysisCtx, evt: &LocalEvt) {
        self.push(ctx, format!("local {evt:?}"));
    }
    fn global(&mut self, ctx: &AnalysisCtx, evt: &GlobalEvt) {
        self.push(ctx, format!("global {evt:?}"));
    }
    fn return_(&mut self, ctx: &AnalysisCtx, evt: &ReturnEvt) {
        self.push(ctx, format!("{evt:?}"));
    }
    fn call_pre(&mut self, ctx: &AnalysisCtx, evt: &CallEvt) {
        self.push(ctx, format!("{evt:?}"));
    }
    fn call_post(&mut self, ctx: &AnalysisCtx, evt: &CallPostEvt) {
        self.push(ctx, format!("{evt:?}"));
    }

    fn report(&self) -> Report {
        Report::new(
            "recorder",
            JsonValue::object([
                ("events", JsonValue::UInt(self.log.len() as u64)),
                (
                    "last",
                    self.log
                        .last()
                        .map(|s| JsonValue::Str(s.clone()))
                        .unwrap_or(JsonValue::Null),
                ),
            ]),
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Path {
    DirectEmit,
    Intrinsic,
    GenericFlat,
    Reference,
}

struct Outcome {
    result: Result<Vec<Val>, Trap>,
    executed_instrs: u64,
    host_calls_fast: u64,
    host_calls_slow: u64,
    log: Vec<String>,
    report: String,
    globals: Vec<Val>,
    memory: Option<u64>,
}

/// Both instrumentation paths' artifacts for one (module, hook set) pair:
/// the rewrite path's instrumented module (also the `Reference` oracle's
/// input) and the direct-emit session built from the *original* module.
struct Prepared {
    instrumented: Module,
    rewrite_info: ModuleInfo,
    direct: AnalysisSession,
}

fn prepare(module: &Module, instr_hooks: HookSet) -> Prepared {
    let (instrumented, rewrite_info) = instrument(module, instr_hooks).expect("instruments");
    let direct = AnalysisSession::direct(module, instr_hooks).expect("instruments");
    Prepared {
        instrumented,
        rewrite_info,
        direct,
    }
}

/// Execute `main` along one of the four arms, with the analysis subscribed
/// to `subscribed` (a subset of the instrumented hooks — the difference is
/// where masking/skipping kicks in).
fn run_path(prepared: &Prepared, subscribed: HookSet, fuel: Option<u64>, path: Path) -> Outcome {
    let rewrite_translated;
    let (translated, info) = match path {
        Path::DirectEmit => (prepared.direct.translated(), prepared.direct.info()),
        Path::Intrinsic => {
            rewrite_translated = TranslatedModule::new(prepared.instrumented.clone())
                .expect("instrumented module validates");
            (&rewrite_translated, &prepared.rewrite_info)
        }
        Path::GenericFlat | Path::Reference => {
            rewrite_translated =
                TranslatedModule::new_without_host_intrinsics(prepared.instrumented.clone())
                    .expect("instrumented module validates");
            (&rewrite_translated, &prepared.rewrite_info)
        }
    };

    let mut recorder = Recorder::new(subscribed);
    let mut host = WasabiHost::new(info, &mut recorder);
    let mut instance =
        Instance::instantiate_translated(translated, &mut host).expect("instantiates");
    instance.set_fuel(fuel);
    let result = match path {
        Path::Reference => {
            let reference = Reference::new(&prepared.instrumented);
            reference.invoke_export(&mut instance, "main", &[], &mut host)
        }
        _ => instance.invoke_export("main", &[], &mut host),
    };
    let (host_calls_fast, host_calls_slow) = instance.host_call_counts();
    let executed_instrs = instance.executed_instrs();
    let globals = instance.globals().to_vec();
    let memory = instance.memory().map(|m| m.checksum());
    drop(host);
    let report = recorder.report().to_json();
    Outcome {
        result,
        executed_instrs,
        host_calls_fast,
        host_calls_slow,
        log: recorder.log,
        report,
        globals,
        memory,
    }
}

/// Assert two outcomes are bit-identical in everything observable.
fn assert_equivalent(a: &Outcome, b: &Outcome, what: &str) {
    assert_eq!(a.result, b.result, "{what}: results/traps");
    assert_eq!(a.executed_instrs, b.executed_instrs, "{what}: instrs");
    assert_eq!(a.log.len(), b.log.len(), "{what}: event count");
    for (i, (x, y)) in a.log.iter().zip(&b.log).enumerate() {
        assert_eq!(x, y, "{what}: event #{i}");
    }
    assert_eq!(a.report, b.report, "{what}: reports");
    assert_eq!(a.globals, b.globals, "{what}: final globals");
    assert_eq!(a.memory, b.memory, "{what}: final linear memory");
    // Every path performs the same host calls, only the dispatch route
    // differs.
    assert_eq!(
        a.host_calls_fast + a.host_calls_slow,
        b.host_calls_fast + b.host_calls_slow,
        "{what}: total host calls"
    );
}

fn hook_set_from_mask(mask: u32) -> HookSet {
    Hook::ALL
        .into_iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, hook)| hook)
        .collect()
}

proptest! {
    // 10 random modules by default keeps `cargo test` fast; CI elevates
    // coverage via `PROPTEST_CASES` (see ci.sh), which overrides this.
    #![proptest_config(ProptestConfig {
        cases: ProptestConfig::env_cases(10),
        ..ProptestConfig::default()
    })]

    #[test]
    fn direct_emit_matches_rewrite_and_reference_on_random_modules(
        seed in any::<u64>(),
        function_count in 2usize..6,
        body_statements in 2usize..6,
        mask in 1u32..(1 << 23),
        submask in 0u32..(1 << 23),
        fuel in prop::option::of(1u64..30_000),
    ) {
        let module = synthetic_app(&SyntheticConfig {
            seed,
            function_count,
            body_statements,
        });
        // Instrument for `hooks`, subscribe the analysis only to a subset
        // of them: on the direct path the unsubscribed remainder is
        // retired by `is_noop` masking, on the rewrite paths it crosses
        // the host boundary and returns early — behavior must not differ.
        let hooks = hook_set_from_mask(mask);
        let subscribed = hook_set_from_mask(mask & submask);
        let prepared = prepare(&module, hooks);

        let direct = run_path(&prepared, subscribed, fuel, Path::DirectEmit);
        let intrinsic = run_path(&prepared, subscribed, fuel, Path::Intrinsic);
        let generic = run_path(&prepared, subscribed, fuel, Path::GenericFlat);
        let reference = run_path(&prepared, subscribed, fuel, Path::Reference);

        assert_equivalent(&direct, &intrinsic, "direct-emit vs rewrite intrinsic");
        assert_equivalent(&direct, &generic, "direct-emit vs rewrite generic flat");
        assert_equivalent(&direct, &reference, "direct-emit vs reference");

        // The fallback paths must not touch the intrinsic ops, and hook
        // calls must take the fast path on both production arms.
        prop_assert_eq!(generic.host_calls_fast, 0);
        prop_assert_eq!(reference.host_calls_fast, 0);
        prop_assert!(
            intrinsic.host_calls_slow <= reference.host_calls_slow,
            "intrinsic path must not add generic host calls"
        );
        prop_assert!(
            direct.host_calls_slow <= intrinsic.host_calls_slow,
            "direct-emit path must not add generic host calls"
        );
    }
}

#[test]
fn all_hooks_on_a_polybench_kernel_match_the_oracle() {
    // Deterministic anchor: full instrumentation over a real kernel. Both
    // production fast paths must fire and the event streams must equal
    // the structured-walk oracle's.
    let module = compile(&polybench::by_name("jacobi-1d", 5).expect("known kernel"));
    let hooks = HookSet::all();
    let prepared = prepare(&module, hooks);

    let direct = run_path(&prepared, hooks, None, Path::DirectEmit);
    let intrinsic = run_path(&prepared, hooks, None, Path::Intrinsic);
    let reference = run_path(&prepared, hooks, None, Path::Reference);

    assert_equivalent(&direct, &intrinsic, "all-hooks kernel, direct vs rewrite");
    assert_equivalent(&direct, &reference, "all-hooks kernel, direct vs oracle");
    assert!(
        direct.host_calls_fast > 0 && intrinsic.host_calls_fast > 0,
        "both production fast paths must actually fire"
    );
    assert_eq!(
        direct.host_calls_fast + direct.host_calls_slow,
        reference.host_calls_slow + reference.host_calls_fast,
    );
    assert!(!direct.log.is_empty());
}

#[test]
fn unsubscribed_hooks_are_masked_without_observable_difference() {
    // The Fig. 9 bench shape: instrument for ALL hooks, subscribe to NONE.
    // The direct path retires every hook call at the dispatch arm
    // (`is_noop` masking — no marshalling, no host boundary) yet must stay
    // indistinguishable from the oracle in results, instruction counts,
    // memory, and globals. Zero events on every arm, by construction.
    let module = compile(&polybench::by_name("jacobi-1d", 5).expect("known kernel"));
    let prepared = prepare(&module, HookSet::all());

    let direct = run_path(&prepared, HookSet::empty(), None, Path::DirectEmit);
    let reference = run_path(&prepared, HookSet::empty(), None, Path::Reference);

    assert_equivalent(&direct, &reference, "all instrumented, none subscribed");
    assert!(direct.log.is_empty() && reference.log.is_empty());
    assert!(
        direct.host_calls_fast > 0,
        "masked hook calls still count as fast-path dispatches"
    );
}

#[test]
fn fuel_sweep_preempts_identically_across_paths() {
    // Fuel exhaustion can land on any member of an injected
    // const+const+call hook group; the trap point, the instruction count,
    // and the event-stream prefix must match the oracle for every budget
    // on BOTH production paths — including with a subscription subset, so
    // the direct path's masked (is_noop) dispatch arm is exercised
    // mid-group too.
    let module = synthetic_app(&SyntheticConfig {
        seed: 0xD1FF,
        function_count: 3,
        body_statements: 4,
    });
    let hooks = HookSet::of(&[
        Hook::Const,
        Hook::Binary,
        Hook::Local,
        Hook::Begin,
        Hook::End,
    ]);
    let subscribed = HookSet::of(&[Hook::Const, Hook::Begin, Hook::End]);
    let prepared = prepare(&module, hooks);

    for fuel in (1..200).step_by(7) {
        for subs in [hooks, subscribed] {
            let direct = run_path(&prepared, subs, Some(fuel), Path::DirectEmit);
            let intrinsic = run_path(&prepared, subs, Some(fuel), Path::Intrinsic);
            let reference = run_path(&prepared, subs, Some(fuel), Path::Reference);
            assert_equivalent(&direct, &intrinsic, &format!("fuel {fuel} direct/rewrite"));
            assert_equivalent(&direct, &reference, &format!("fuel {fuel} direct/oracle"));
        }
    }
}

#[test]
fn cohort_events_partition_into_per_instance_sequential_logs() {
    // Cohort leg of the oracle (ISSUE 10): N members of one instrumented
    // module interleaved through a CohortRunner share ONE analysis, whose
    // events arrive tagged with `ctx.instance`. Partitioning the fused
    // event log by that tag must reproduce each member's standalone
    // sequential log exactly — same events, same order, same trap point —
    // with no bleed between members. `main` is nullary, so per-member fuel
    // limits provide the divergence: members retire in different rounds,
    // some mid-hook-group.
    let module = synthetic_app(&SyntheticConfig {
        seed: 0xC0407,
        function_count: 3,
        body_statements: 4,
    });
    let hooks = HookSet::of(&[
        Hook::Const,
        Hook::Binary,
        Hook::Local,
        Hook::Begin,
        Hook::End,
    ]);
    let prepared = prepare(&module, hooks);
    let fuels: [Option<u64>; 6] = [None, Some(40), Some(173), Some(9), None, Some(1000)];

    // Cohort arm: one shared recorder across all members, small chunk so
    // members genuinely interleave (several suspend points per hook-dense
    // function body).
    let mut recorder = Recorder::new(hooks);
    let mut host = WasabiHost::new(prepared.direct.info(), &mut recorder);
    let mut cohort = CohortRunner::new(17);
    for fuel in fuels {
        cohort.admit_with_fuel(
            prepared.direct.translated(),
            None,
            fuel,
            "main",
            &[],
            &mut host,
        );
    }
    cohort.run(&mut host);
    let outcomes = cohort.finish();
    drop(host);

    // Partition the fused log by member tag. Every line must carry a tag
    // naming an admitted member — anything else is tag bleed.
    let mut streams: Vec<Vec<&str>> = vec![Vec::new(); fuels.len()];
    for line in &recorder.log {
        let (tag, event) = line.split_once(' ').expect("tagged event line");
        let idx: usize = tag
            .strip_prefix('i')
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("malformed member tag in {line:?}"));
        assert!(
            idx < fuels.len(),
            "tag bleed: unknown member {idx} in {line:?}"
        );
        streams[idx].push(event);
    }

    for (idx, fuel) in fuels.iter().enumerate() {
        let expected = run_path(&prepared, hooks, *fuel, Path::DirectEmit);
        let expected_stream: Vec<&str> = expected
            .log
            .iter()
            .map(|line| {
                line.strip_prefix("i0 ")
                    .expect("sequential events are tagged instance 0")
            })
            .collect();
        assert_eq!(
            streams[idx], expected_stream,
            "member {idx} (fuel {fuel:?}): per-instance event stream"
        );
        assert_eq!(
            outcomes[idx].result, expected.result,
            "member {idx}: result/trap"
        );
        assert_eq!(
            outcomes[idx].executed_instrs, expected.executed_instrs,
            "member {idx}: executed instrs"
        );
        assert_eq!(
            (outcomes[idx].host_calls_fast, outcomes[idx].host_calls_slow),
            (expected.host_calls_fast, expected.host_calls_slow),
            "member {idx}: host-call route counters"
        );
    }
    // The partition is exhaustive: no event was dropped or duplicated.
    assert_eq!(
        recorder.log.len(),
        streams.iter().map(Vec::len).sum::<usize>()
    );
    assert!(
        streams.iter().all(|s| !s.is_empty()),
        "every member produced events"
    );
}
