//! RQ2, validator part (paper §4.3): "Running wasm-validate [...] on all 32
//! fully instrumented programs shows that all the instrumented code passes
//! the validator." Our substitute validator is `wasabi_wasm::validate`
//! (DESIGN.md §3), and we additionally require that the instrumented binary
//! survives an encode/decode round-trip.

use wasabi_repro::core::hooks::{Hook, HookSet};
use wasabi_repro::core::instrument;
use wasabi_repro::wasm::decode::decode;
use wasabi_repro::wasm::encode::encode;
use wasabi_repro::wasm::validate::validate;
use wasabi_repro::workloads::{compile, polybench, synthetic};

#[test]
fn all_kernels_fully_instrumented_validate() {
    for program in polybench::all(8) {
        let module = compile(&program);
        let (instrumented, info) = instrument(&module, HookSet::all()).expect("instruments");
        validate(&instrumented)
            .unwrap_or_else(|e| panic!("{}: instrumented module invalid: {e}", program.name));
        assert!(!info.hooks.is_empty());

        // The binary encoding of the instrumented module also validates
        // after decoding (what an engine would see).
        let decoded = decode(&encode(&instrumented)).expect("decodes");
        validate(&decoded)
            .unwrap_or_else(|e| panic!("{}: roundtripped module invalid: {e}", program.name));
    }
}

#[test]
fn every_single_hook_instrumentation_validates() {
    let module = compile(&polybench::by_name("ludcmp", 8).expect("known"));
    for hook in Hook::ALL {
        let (instrumented, _) = instrument(&module, HookSet::of(&[hook])).expect("instruments");
        validate(&instrumented)
            .unwrap_or_else(|e| panic!("hook {hook}: instrumented module invalid: {e}"));
    }
}

#[test]
fn synthetic_apps_instrumented_validate() {
    for config in [
        synthetic::SyntheticConfig::small(),
        synthetic::SyntheticConfig {
            seed: 7,
            function_count: 200,
            body_statements: 16,
        },
    ] {
        let module = synthetic::synthetic_app(&config);
        let (instrumented, _) = instrument(&module, HookSet::all()).expect("instruments");
        validate(&instrumented).expect("instrumented synthetic app validates");
    }
}

#[test]
fn instrumentation_reports_original_function_info() {
    let module = compile(&polybench::by_name("gemm", 8).expect("known"));
    let (_, info) = instrument(&module, HookSet::all()).expect("instruments");
    assert_eq!(
        info.original_function_count as usize,
        module.functions.len()
    );
    // init, kernel, checksum, main.
    let exports: Vec<&str> = info
        .functions
        .iter()
        .flat_map(|f| f.export.iter().map(String::as_str))
        .collect();
    for export in ["init", "kernel", "checksum", "main"] {
        assert!(exports.contains(&export), "missing {export}");
    }
}

#[test]
fn hook_count_is_stable_for_equal_input() {
    let module = compile(&polybench::by_name("gemm", 8).expect("known"));
    let (_, a) = instrument(&module, HookSet::all()).expect("instruments");
    let (_, b) = instrument(&module, HookSet::all()).expect("instruments");
    assert_eq!(a.hooks.len(), b.hooks.len());
}
