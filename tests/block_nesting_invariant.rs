//! The dynamic block-nesting invariant of paper §2.4.5: at runtime, every
//! `begin` event is matched by exactly one `end` event with the same block
//! kind and begin location, in properly nested (stack) order — no matter
//! how control leaves the block (fall-through, `br`, `br_if`, `br_table`,
//! or `return`).
//!
//! A checking analysis maintains the block stack and asserts the pairing on
//! every `end`; any missed or duplicated end-hook call anywhere in the
//! instrumenter would break it.

use wasabi_repro::core::event::{AnalysisCtx, BlockEvt, EndEvt};
use wasabi_repro::core::hooks::{Analysis, BlockKind, Hook, HookSet};
use wasabi_repro::core::location::Location;
use wasabi_repro::core::AnalysisSession;
use wasabi_repro::wasm::builder::ModuleBuilder;
use wasabi_repro::wasm::{BinaryOp, Val, ValType};
use wasabi_repro::workloads::{compile, polybench, synthetic};

#[derive(Default)]
struct NestingChecker {
    stack: Vec<(BlockKind, Location)>,
    max_depth: usize,
    pairs_checked: u64,
}

impl Analysis for NestingChecker {
    fn hooks(&self) -> HookSet {
        HookSet::of(&[Hook::Begin, Hook::End])
    }

    fn begin(&mut self, ctx: &AnalysisCtx, evt: &BlockEvt) {
        self.stack.push((evt.kind, ctx.loc));
        self.max_depth = self.max_depth.max(self.stack.len());
    }

    fn end(&mut self, ctx: &AnalysisCtx, evt: &EndEvt) {
        let (loc, kind, begin) = (ctx.loc, evt.kind, evt.begin);
        let (open_kind, open_loc) = self
            .stack
            .pop()
            .unwrap_or_else(|| panic!("end {kind} at {loc} with empty block stack"));
        assert_eq!(
            (open_kind, open_loc),
            (kind, begin),
            "end at {loc} closes ({kind}, {begin}) but the innermost open \
             block is ({open_kind}, {open_loc})"
        );
        self.pairs_checked += 1;
    }
}

fn check(module: &wasabi_repro::wasm::Module, export: &str, args: &[Val]) -> NestingChecker {
    let mut checker = NestingChecker::default();
    let session = AnalysisSession::for_analysis(module, &checker).expect("instruments");
    session.run(&mut checker, export, args).expect("runs");
    assert!(
        checker.stack.is_empty(),
        "{} blocks left open at exit",
        checker.stack.len()
    );
    checker
}

#[test]
fn nesting_is_balanced_on_all_30_kernels() {
    for program in polybench::all(6) {
        let module = compile(&program);
        let checker = check(&module, "main", &[]);
        assert!(
            checker.pairs_checked > 10,
            "{}: suspiciously few blocks",
            program.name
        );
    }
}

#[test]
fn nesting_is_balanced_on_synthetic_app() {
    let module = synthetic::synthetic_app(&synthetic::SyntheticConfig::small());
    let checker = check(&module, "main", &[]);
    assert!(checker.max_depth > 2, "app should nest calls and blocks");
}

#[test]
fn nesting_is_balanced_across_every_exit_kind() {
    // One function per exit mechanism out of a loop-in-block nest.
    let mut builder = ModuleBuilder::new();
    builder.function("via_br", &[], &[], |f| {
        f.block(None).loop_(None).br(1).end().end();
    });
    builder.function("via_br_if", &[ValType::I32], &[], |f| {
        f.block(None).loop_(None);
        f.get_local(0u32).br_if(1);
        f.br(0).end().end();
    });
    builder.function("via_br_table", &[ValType::I32], &[], |f| {
        f.block(None).block(None).loop_(None);
        f.get_local(0u32).br_table(vec![1, 2], 2);
        f.end().end().end();
    });
    builder.function("via_return", &[], &[], |f| {
        f.block(None).loop_(None).return_().end().end();
    });
    builder.function("all", &[], &[], |f| {
        let via_br = wasabi_repro::wasm::Idx::from(0u32);
        let via_br_if = wasabi_repro::wasm::Idx::from(1u32);
        let via_br_table = wasabi_repro::wasm::Idx::from(2u32);
        let via_return = wasabi_repro::wasm::Idx::from(3u32);
        f.call(via_br);
        f.i32_const(1).call(via_br_if);
        f.i32_const(0).call(via_br_table);
        f.i32_const(1).call(via_br_table);
        f.i32_const(9).call(via_br_table);
        f.call(via_return);
    });
    let module = builder.finish();
    let checker = check(&module, "all", &[]);
    assert!(checker.pairs_checked >= 20);
}

#[test]
fn nesting_survives_iteration_heavy_loops() {
    let mut builder = ModuleBuilder::new();
    builder.function("spin", &[ValType::I32], &[], |f| {
        let i = f.local(ValType::I32);
        f.block(None).loop_(None);
        f.get_local(i)
            .get_local(0u32)
            .binary(BinaryOp::I32GeS)
            .br_if(1);
        f.get_local(i).i32_const(1).i32_add().set_local(i);
        f.br(0).end().end();
    });
    let module = builder.finish();
    let checker = check(&module, "spin", &[Val::I32(500)]);
    // Each iteration is one loop begin/end pair (paper: "loop begin hook is
    // called once per iteration").
    assert!(checker.pairs_checked >= 500, "{}", checker.pairs_checked);
}
