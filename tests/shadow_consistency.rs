//! Shadow-state consistency: an analysis that mirrors the program's entire
//! memory and local/global state purely from hook events (the paper's
//! "memory shadowing" pattern, §2.3) and *asserts* that every observed
//! load/get matches the shadowed value of the preceding store/set.
//!
//! This turns hook-payload correctness into a machine-checked invariant
//! over whole programs: if the instrumenter delivered a wrong value,
//! address, index, or ordering anywhere, the shadow would diverge.

use std::collections::HashMap;

use wasabi_repro::core::event::{AnalysisCtx, GlobalEvt, LoadEvt, LocalEvt, StoreEvt};
use wasabi_repro::core::hooks::Analysis;
use wasabi_repro::core::AnalysisSession;
use wasabi_repro::wasm::instr::{GlobalOp, Val};
use wasabi_repro::workloads::{compile, polybench, synthetic};

/// Mirrors memory bytes and global values; checks loads and global reads.
#[derive(Default)]
struct ShadowChecker {
    /// Shadowed memory bytes (only bytes that were stored through hooks).
    memory: HashMap<u64, u8>,
    /// Shadowed globals (only after the first observed write).
    globals: HashMap<u32, Val>,
    checked_loads: u64,
    checked_globals: u64,
}

fn value_bytes(value: Val, width: u32) -> Vec<u8> {
    let full: Vec<u8> = match value {
        Val::I32(v) => v.to_le_bytes().to_vec(),
        Val::I64(v) => v.to_le_bytes().to_vec(),
        Val::F32(v) => v.to_le_bytes().to_vec(),
        Val::F64(v) => v.to_le_bytes().to_vec(),
    };
    full[..width as usize].to_vec()
}

impl Analysis for ShadowChecker {
    fn store(&mut self, _: &AnalysisCtx, evt: &StoreEvt) {
        let base = evt.memarg.effective_addr();
        for (i, byte) in value_bytes(evt.value, evt.op.access_bytes())
            .into_iter()
            .enumerate()
        {
            self.memory.insert(base + i as u64, byte);
        }
    }

    fn load(&mut self, ctx: &AnalysisCtx, evt: &LoadEvt) {
        let loc = ctx.loc;
        let base = evt.memarg.effective_addr();
        let width = evt.op.access_bytes();
        // Only check if every byte of the loaded range was shadowed (i.e.
        // written through an observed store; data segments and zero pages
        // are unknown to the shadow).
        let shadowed: Option<Vec<u8>> = (0..u64::from(width))
            .map(|i| self.memory.get(&(base + i)).copied())
            .collect();
        let Some(shadowed) = shadowed else { return };

        // Compare the raw loaded bytes. For sign/zero-extending loads the
        // observed value is the extension of the raw bytes; truncate back.
        let observed = value_bytes(evt.value, width);
        // Sign-extended loads of negative values change the *extension*,
        // not the low bytes, so comparing `width` low bytes is exact.
        assert_eq!(
            observed, shadowed,
            "load {} at addr {base} (loc {loc}) returned {observed:?}, shadow has {shadowed:?}",
            evt.op
        );
        self.checked_loads += 1;
    }

    fn global(&mut self, _: &AnalysisCtx, evt: &GlobalEvt) {
        match evt.op {
            GlobalOp::Set => {
                self.globals.insert(evt.index, evt.value);
            }
            GlobalOp::Get => {
                if let Some(&shadow) = self.globals.get(&evt.index) {
                    assert_eq!(
                        evt.value, shadow,
                        "global {} diverged from shadow",
                        evt.index
                    );
                    self.checked_globals += 1;
                }
            }
        }
    }

    // Locals are per-frame; checking them requires frame tracking like the
    // taint analysis. Memory + globals already cover the value-delivery
    // paths (tee/set/get share the same capture machinery).
    fn local(&mut self, _: &AnalysisCtx, _: &LocalEvt) {}
}

#[test]
fn shadow_memory_is_consistent_across_all_kernels() {
    for program in polybench::all(6) {
        let module = compile(&program);
        let mut checker = ShadowChecker::default();
        let session = AnalysisSession::for_analysis(&module, &checker).expect("instruments");
        session
            .run(&mut checker, "main", &[])
            .unwrap_or_else(|e| panic!("{}: {e}", program.name));
        assert!(
            checker.checked_loads > 0,
            "{}: no load was ever checked",
            program.name
        );
    }
}

#[test]
fn shadow_state_is_consistent_on_synthetic_app() {
    // The app's randomized load addresses rarely overlap stored ranges, so
    // unlike the kernels no minimum check count is asserted — the value of
    // this test is that *no* observed load or global read diverges.
    let module = synthetic::synthetic_app(&synthetic::SyntheticConfig::small());
    let mut checker = ShadowChecker::default();
    let session = AnalysisSession::for_analysis(&module, &checker).expect("instruments");
    session.run(&mut checker, "main", &[]).expect("runs");
}
