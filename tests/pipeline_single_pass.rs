//! Acceptance criterion for the fused pipeline: running all eight Table-4
//! analyses through one `Pipeline` performs exactly ONE instrumentation
//! pass and ONE execution pass.
//!
//! This file deliberately contains a single `#[test]`: the pass counters
//! are process-wide, and a dedicated integration-test binary is its own
//! process, so no concurrently running test can perturb the deltas.

use wasabi_repro::analyses::registry;
use wasabi_repro::core::{stats, Wasabi};
use wasabi_repro::workloads::{compile, polybench};

#[test]
fn eight_table4_analyses_fused_cost_one_pass_each_way() {
    let module = compile(&polybench::by_name("gemm", 8).expect("known kernel"));

    let mut analyses = registry::table4();
    assert_eq!(analyses.len(), 8);

    let instr_before = stats::instrumentation_passes();
    let exec_before = stats::execution_passes();

    let mut builder = Wasabi::builder();
    for analysis in &mut analyses {
        builder = builder.analysis(analysis.as_mut());
    }
    let mut pipeline = builder.build(&module).expect("instruments");
    pipeline.run("main", &[]).expect("runs");

    assert_eq!(
        stats::instrumentation_passes() - instr_before,
        1,
        "8 fused analyses must instrument exactly once"
    );
    assert_eq!(
        stats::execution_passes() - exec_before,
        1,
        "8 fused analyses must execute exactly once"
    );

    // All eight subscribed and reported; the union hook set is full
    // (several Table-4 analyses use all hooks).
    assert_eq!(pipeline.len(), 8);
    assert_eq!(pipeline.hooks().len(), 23);
    let reports = pipeline.reports();
    assert_eq!(reports.len(), 8);
    for (report, name) in reports.iter().zip(registry::TABLE4_NAMES) {
        assert_eq!(report.analysis, name);
        assert!(!report.data.is_null(), "{name} must report real data");
    }

    // The sequential equivalent really is 8× the work.
    let instr_before = stats::instrumentation_passes();
    for analysis in registry::table4().iter_mut() {
        let session = wasabi_repro::core::AnalysisSession::for_analysis(&module, analysis.as_ref())
            .expect("instruments");
        session.run(analysis.as_mut(), "main", &[]).expect("runs");
    }
    assert_eq!(stats::instrumentation_passes() - instr_before, 8);
}
