//! Asserts the public analysis API surface of paper Table 2: all 23 hooks
//! exist with the documented argument structure. A compile-time contract —
//! if a hook signature changes, this file stops compiling.

use wasabi_repro::core::hooks::{Analysis, BlockKind, Hook, HookSet, MemArg};
use wasabi_repro::core::location::{BranchTarget, Location};
use wasabi_repro::wasm::instr::{BinaryOp, GlobalOp, LoadOp, LocalOp, StoreOp, UnaryOp, Val};

/// An analysis that overrides every hook with the exact Table 2 signature.
#[derive(Default)]
struct FullSurface {
    events: u64,
}

impl Analysis for FullSurface {
    fn hooks(&self) -> HookSet {
        HookSet::all()
    }

    fn start(&mut self, _loc: Location) {
        self.events += 1;
    }
    fn nop(&mut self, _loc: Location) {
        self.events += 1;
    }
    fn unreachable(&mut self, _loc: Location) {
        self.events += 1;
    }
    fn if_(&mut self, _loc: Location, _condition: bool) {
        self.events += 1;
    }
    fn br(&mut self, _loc: Location, _target: BranchTarget) {
        self.events += 1;
    }
    fn br_if(&mut self, _loc: Location, _target: BranchTarget, _condition: bool) {
        self.events += 1;
    }
    fn br_table(
        &mut self,
        _loc: Location,
        _table: &[BranchTarget],
        _default: BranchTarget,
        _table_index: u32,
    ) {
        self.events += 1;
    }
    fn begin(&mut self, _loc: Location, _kind: BlockKind) {
        self.events += 1;
    }
    fn end(&mut self, _loc: Location, _kind: BlockKind, _begin: Location) {
        self.events += 1;
    }
    fn memory_size(&mut self, _loc: Location, _current_pages: u32) {
        self.events += 1;
    }
    fn memory_grow(&mut self, _loc: Location, _delta: u32, _previous_pages: i32) {
        self.events += 1;
    }
    fn const_(&mut self, _loc: Location, _value: Val) {
        self.events += 1;
    }
    fn drop_(&mut self, _loc: Location, _value: Val) {
        self.events += 1;
    }
    fn select(&mut self, _loc: Location, _condition: bool, _first: Val, _second: Val) {
        self.events += 1;
    }
    fn unary(&mut self, _loc: Location, _op: UnaryOp, _input: Val, _result: Val) {
        self.events += 1;
    }
    fn binary(&mut self, _loc: Location, _op: BinaryOp, _first: Val, _second: Val, _result: Val) {
        self.events += 1;
    }
    fn load(&mut self, _loc: Location, _op: LoadOp, _memarg: MemArg, _value: Val) {
        self.events += 1;
    }
    fn store(&mut self, _loc: Location, _op: StoreOp, _memarg: MemArg, _value: Val) {
        self.events += 1;
    }
    fn local(&mut self, _loc: Location, _op: LocalOp, _index: u32, _value: Val) {
        self.events += 1;
    }
    fn global(&mut self, _loc: Location, _op: GlobalOp, _index: u32, _value: Val) {
        self.events += 1;
    }
    fn return_(&mut self, _loc: Location, _results: &[Val]) {
        self.events += 1;
    }
    fn call_pre(&mut self, _loc: Location, _func: u32, _args: &[Val], _table_index: Option<u32>) {
        self.events += 1;
    }
    fn call_post(&mut self, _loc: Location, _results: &[Val]) {
        self.events += 1;
    }
}

#[test]
fn the_api_has_exactly_23_hooks() {
    // Paper §2.3: "Wasabi's API provides 23 hooks only" (Table 2 plus the
    // five from its caption).
    assert_eq!(Hook::ALL.len(), 23);
}

#[test]
fn every_hook_can_fire() {
    // A module touching all hook kinds; every hook must fire at least once.
    use wasabi_repro::wasm::builder::ModuleBuilder;
    use wasabi_repro::wasm::ValType;

    let mut builder = ModuleBuilder::new();
    builder.memory(1, None);
    let g = builder.global(Val::I32(0));
    let callee = builder.function("", &[ValType::I32], &[ValType::I32], |f| {
        f.get_local(0u32).i32_const(1).i32_add().return_();
    });
    builder.table(1);
    builder.elements(0, vec![callee]);
    let start = builder.function("", &[], &[], |f| {
        f.nop();
    });
    builder.start(start);
    builder.function("exercise", &[], &[], |f| {
        f.nop();
        // const, binary, unary, drop, select
        f.i32_const(1).i32_const(2).i32_add();
        f.unary(wasabi_repro::wasm::UnaryOp::I32Eqz).drop_();
        f.i32_const(1).i32_const(2).i32_const(0).select().drop_();
        // local, global
        let l = f.local(ValType::I32);
        f.i32_const(5).set_local(l);
        f.get_global(g).set_global(g);
        // memory
        f.i32_const(0)
            .i32_const(7)
            .store(wasabi_repro::wasm::StoreOp::I32Store, 0);
        f.i32_const(0)
            .load(wasabi_repro::wasm::LoadOp::I32Load, 0)
            .drop_();
        f.memory_size().drop_();
        f.i32_const(0).memory_grow().drop_();
        // control flow
        f.i32_const(1).if_(None).nop().else_().nop().end();
        f.block(None).i32_const(1).br_if(0).end();
        f.block(None).br(0).end();
        f.block(None).i32_const(0).br_table(vec![0], 0).end();
        // calls
        f.i32_const(1).call(callee).drop_();
        f.i32_const(2).i32_const(0);
        f.call_indirect(&[ValType::I32], &[ValType::I32]);
        f.drop_();
    });
    let module = builder.finish();

    let mut surface = FullSurface::default();
    let session =
        wasabi_repro::core::AnalysisSession::for_analysis(&module, &surface).expect("instruments");
    session.run(&mut surface, "exercise", &[]).expect("runs");
    assert!(surface.events > 40, "only {} events", surface.events);

    // All monomorphized low-level hooks trace back to the 23 high-level
    // hooks.
    for hook in session.info().hooks.iter() {
        assert!(Hook::ALL.contains(&hook.hook()));
    }
}

#[test]
fn unreachable_hook_fires_via_trap() {
    use wasabi_repro::wasm::builder::ModuleBuilder;
    let mut builder = ModuleBuilder::new();
    builder.function("boom", &[], &[], |f| {
        f.unreachable();
    });
    let mut surface = FullSurface::default();
    let session =
        wasabi_repro::core::AnalysisSession::for_analysis(&builder.finish(), &surface).unwrap();
    let err = session.run(&mut surface, "boom", &[]).unwrap_err();
    assert!(matches!(err, wasabi_repro::core::AnalysisError::Trap(_)));
    assert!(surface.events >= 1);
}
