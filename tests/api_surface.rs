//! Asserts the public analysis API surface of paper Table 2: all 23 hooks
//! exist with the documented `(ctx, typed event)` structure. A compile-time
//! contract — if a hook signature or an event payload field changes, this
//! file stops compiling.

use wasabi_repro::core::event::{
    AnalysisCtx, BinaryEvt, BlockEvt, BranchEvt, BranchTableEvt, CallEvt, CallPostEvt, EndEvt,
    GlobalEvt, IfEvt, LoadEvt, LocalEvt, MemGrowEvt, MemSizeEvt, ReturnEvt, SelectEvt, StoreEvt,
    UnaryEvt, ValEvt,
};
use wasabi_repro::core::hooks::{Analysis, Hook, HookSet};
use wasabi_repro::core::location::{BranchTarget, Location};
use wasabi_repro::wasm::instr::Val;

/// An analysis that overrides every hook and touches every documented
/// payload field of its typed event.
#[derive(Default)]
struct FullSurface {
    events: u64,
}

impl Analysis for FullSurface {
    fn hooks(&self) -> HookSet {
        HookSet::all()
    }

    fn start(&mut self, ctx: &AnalysisCtx) {
        let _loc: Location = ctx.loc;
        self.events += 1;
    }
    fn nop(&mut self, _ctx: &AnalysisCtx) {
        self.events += 1;
    }
    fn unreachable(&mut self, _ctx: &AnalysisCtx) {
        self.events += 1;
    }
    fn if_(&mut self, _ctx: &AnalysisCtx, evt: &IfEvt) {
        let _condition: bool = evt.condition;
        self.events += 1;
    }
    fn br(&mut self, _ctx: &AnalysisCtx, evt: &BranchEvt) {
        let _target: BranchTarget = evt.target;
        assert!(evt.condition.is_none(), "br is unconditional");
        self.events += 1;
    }
    fn br_if(&mut self, _ctx: &AnalysisCtx, evt: &BranchEvt) {
        let _target: BranchTarget = evt.target;
        let _condition: bool = evt.condition.expect("br_if carries a condition");
        self.events += 1;
    }
    fn br_table(&mut self, _ctx: &AnalysisCtx, evt: &BranchTableEvt<'_>) {
        let _table: &[BranchTarget] = evt.targets;
        let _default: BranchTarget = evt.default;
        let _index: u32 = evt.index;
        self.events += 1;
    }
    fn begin(&mut self, _ctx: &AnalysisCtx, evt: &BlockEvt) {
        let _name: &str = evt.kind.name();
        self.events += 1;
    }
    fn end(&mut self, _ctx: &AnalysisCtx, evt: &EndEvt) {
        let _begin: Location = evt.begin;
        let _name: &str = evt.kind.name();
        self.events += 1;
    }
    fn memory_size(&mut self, _ctx: &AnalysisCtx, evt: &MemSizeEvt) {
        let _pages: u32 = evt.pages;
        self.events += 1;
    }
    fn memory_grow(&mut self, _ctx: &AnalysisCtx, evt: &MemGrowEvt) {
        let _delta: u32 = evt.delta;
        let _previous: i32 = evt.previous_pages;
        self.events += 1;
    }
    fn const_(&mut self, _ctx: &AnalysisCtx, evt: &ValEvt) {
        let _value: Val = evt.value;
        self.events += 1;
    }
    fn drop_(&mut self, _ctx: &AnalysisCtx, evt: &ValEvt) {
        let _value: Val = evt.value;
        self.events += 1;
    }
    fn select(&mut self, _ctx: &AnalysisCtx, evt: &SelectEvt) {
        let _cond: bool = evt.condition;
        let (_first, _second): (Val, Val) = (evt.first, evt.second);
        self.events += 1;
    }
    fn unary(&mut self, _ctx: &AnalysisCtx, evt: &UnaryEvt) {
        let (_input, _result): (Val, Val) = (evt.input, evt.result);
        let _name: &str = evt.op.name();
        self.events += 1;
    }
    fn binary(&mut self, _ctx: &AnalysisCtx, evt: &BinaryEvt) {
        let (_first, _second, _result): (Val, Val, Val) = (evt.first, evt.second, evt.result);
        let _name: &str = evt.op.name();
        self.events += 1;
    }
    fn load(&mut self, _ctx: &AnalysisCtx, evt: &LoadEvt) {
        let _addr: u64 = evt.memarg.effective_addr();
        let _value: Val = evt.value;
        self.events += 1;
    }
    fn store(&mut self, _ctx: &AnalysisCtx, evt: &StoreEvt) {
        let _addr: u64 = evt.memarg.effective_addr();
        let _value: Val = evt.value;
        self.events += 1;
    }
    fn local(&mut self, _ctx: &AnalysisCtx, evt: &LocalEvt) {
        let _index: u32 = evt.index;
        let _value: Val = evt.value;
        self.events += 1;
    }
    fn global(&mut self, _ctx: &AnalysisCtx, evt: &GlobalEvt) {
        let _index: u32 = evt.index;
        let _value: Val = evt.value;
        self.events += 1;
    }
    fn return_(&mut self, _ctx: &AnalysisCtx, evt: &ReturnEvt<'_>) {
        let _results: &[Val] = evt.results;
        self.events += 1;
    }
    fn call_pre(&mut self, _ctx: &AnalysisCtx, evt: &CallEvt<'_>) {
        let _func: u32 = evt.func;
        let _args: &[Val] = evt.args;
        let _table_index: Option<u32> = evt.table_index;
        self.events += 1;
    }
    fn call_post(&mut self, _ctx: &AnalysisCtx, evt: &CallPostEvt<'_>) {
        let _results: &[Val] = evt.results;
        self.events += 1;
    }
}

#[test]
fn the_api_has_exactly_23_hooks() {
    // Paper §2.3: "Wasabi's API provides 23 hooks only" (Table 2 plus the
    // five from its caption).
    assert_eq!(Hook::ALL.len(), 23);
}

#[test]
fn every_hook_can_fire() {
    // A module touching all hook kinds; every hook must fire at least once.
    use wasabi_repro::wasm::builder::ModuleBuilder;
    use wasabi_repro::wasm::ValType;

    let mut builder = ModuleBuilder::new();
    builder.memory(1, None);
    let g = builder.global(Val::I32(0));
    let callee = builder.function("", &[ValType::I32], &[ValType::I32], |f| {
        f.get_local(0u32).i32_const(1).i32_add().return_();
    });
    builder.table(1);
    builder.elements(0, vec![callee]);
    let start = builder.function("", &[], &[], |f| {
        f.nop();
    });
    builder.start(start);
    builder.function("exercise", &[], &[], |f| {
        f.nop();
        // const, binary, unary, drop, select
        f.i32_const(1).i32_const(2).i32_add();
        f.unary(wasabi_repro::wasm::UnaryOp::I32Eqz).drop_();
        f.i32_const(1).i32_const(2).i32_const(0).select().drop_();
        // local, global
        let l = f.local(ValType::I32);
        f.i32_const(5).set_local(l);
        f.get_global(g).set_global(g);
        // memory
        f.i32_const(0)
            .i32_const(7)
            .store(wasabi_repro::wasm::StoreOp::I32Store, 0);
        f.i32_const(0)
            .load(wasabi_repro::wasm::LoadOp::I32Load, 0)
            .drop_();
        f.memory_size().drop_();
        f.i32_const(0).memory_grow().drop_();
        // control flow
        f.i32_const(1).if_(None).nop().else_().nop().end();
        f.block(None).i32_const(1).br_if(0).end();
        f.block(None).br(0).end();
        f.block(None).i32_const(0).br_table(vec![0], 0).end();
        // calls
        f.i32_const(1).call(callee).drop_();
        f.i32_const(2).i32_const(0);
        f.call_indirect(&[ValType::I32], &[ValType::I32]);
        f.drop_();
    });
    let module = builder.finish();

    let mut surface = FullSurface::default();
    let session =
        wasabi_repro::core::AnalysisSession::for_analysis(&module, &surface).expect("instruments");
    session.run(&mut surface, "exercise", &[]).expect("runs");
    assert!(surface.events > 40, "only {} events", surface.events);

    // All monomorphized low-level hooks trace back to the 23 high-level
    // hooks.
    for hook in session.info().hooks.iter() {
        assert!(Hook::ALL.contains(&hook.hook()));
    }
}

#[test]
fn unreachable_hook_fires_via_trap() {
    use wasabi_repro::wasm::builder::ModuleBuilder;
    let mut builder = ModuleBuilder::new();
    builder.function("boom", &[], &[], |f| {
        f.unreachable();
    });
    let mut surface = FullSurface::default();
    let session =
        wasabi_repro::core::AnalysisSession::for_analysis(&builder.finish(), &surface).unwrap();
    let err = session.run(&mut surface, "boom", &[]).unwrap_err();
    assert!(matches!(err, wasabi_repro::core::AnalysisError::Trap(_)));
    assert!(surface.events >= 1);
}
