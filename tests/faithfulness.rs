//! RQ2 (paper §4.3): "Do the instrumented WebAssembly programs remain
//! faithful to the original execution?"
//!
//! The paper compiles each PolyBench program with an option to print
//! intermediate results and compares original vs. fully instrumented runs.
//! Here every kernel returns a checksum over all its arrays; we compare the
//! checksum and the final linear-memory state between the uninstrumented
//! run and runs under various hook sets.

use wasabi_repro::core::hooks::{Hook, HookSet, NoAnalysis};
use wasabi_repro::core::{AnalysisSession, WasabiHost};
use wasabi_repro::vm::{EmptyHost, Instance};
use wasabi_repro::wasm::{Module, Val};
use wasabi_repro::workloads::{compile, polybench, synthetic};

const PROBLEM_SIZE: u32 = 6;

fn run_original(module: &Module) -> (Vec<Val>, u64) {
    let mut host = EmptyHost;
    let mut instance = Instance::instantiate(module.clone(), &mut host).expect("instantiates");
    let results = instance
        .invoke_export("main", &[], &mut host)
        .expect("runs");
    let checksum = instance.memory().map_or(0, |m| m.checksum());
    (results, checksum)
}

fn run_instrumented(module: &Module, hooks: HookSet) -> (Vec<Val>, u64) {
    let session = AnalysisSession::new(module, hooks).expect("instruments");
    let mut analysis = NoAnalysis;
    let mut host = WasabiHost::new(session.info(), &mut analysis);
    let mut instance =
        Instance::instantiate(session.module().clone(), &mut host).expect("instantiates");
    let results = instance
        .invoke_export("main", &[], &mut host)
        .expect("runs");
    let checksum = instance.memory().map_or(0, |m| m.checksum());
    (results, checksum)
}

#[test]
fn all_30_kernels_fully_instrumented_are_faithful() {
    for program in polybench::all(PROBLEM_SIZE) {
        let module = compile(&program);
        let original = run_original(&module);
        let instrumented = run_instrumented(&module, HookSet::all());
        assert_eq!(
            original, instrumented,
            "{}: fully instrumented run diverges",
            program.name
        );
    }
}

#[test]
fn kernels_are_faithful_under_every_single_hook() {
    // Selective instrumentation must be independent per hook (paper
    // §2.4.2). Checking every hook on every kernel is O(30×23) runs; use a
    // representative kernel per structural family instead.
    for name in ["gemm", "cholesky", "nussinov", "adi", "durbin"] {
        let module = compile(&polybench::by_name(name, PROBLEM_SIZE).expect("known"));
        let original = run_original(&module);
        for hook in Hook::ALL {
            let instrumented = run_instrumented(&module, HookSet::of(&[hook]));
            assert_eq!(
                original, instrumented,
                "{name} diverges when instrumenting only {hook}"
            );
        }
    }
}

#[test]
fn synthetic_app_fully_instrumented_is_faithful() {
    let module = synthetic::synthetic_app(&synthetic::SyntheticConfig::small());
    let original = run_original(&module);
    let instrumented = run_instrumented(&module, HookSet::all());
    assert_eq!(original, instrumented);
}

#[test]
fn instrumented_kernel_runs_attached_analyses_without_perturbation() {
    // Running a *real* analysis (not NoAnalysis) must not change behaviour
    // either: analyses only observe.
    let module = compile(&polybench::by_name("atax", PROBLEM_SIZE).expect("known"));
    let original = run_original(&module);

    let mut mix = wasabi_repro::analyses::InstructionMix::new();
    let session = AnalysisSession::for_analysis(&module, &mix).expect("instruments");
    let results = session.run(&mut mix, "main", &[]).expect("runs");
    assert_eq!(original.0, results);
    assert!(mix.total() > 0);
}

#[test]
fn repeated_runs_are_reproducible() {
    let module = compile(&polybench::by_name("jacobi-2d", PROBLEM_SIZE).expect("known"));
    let a = run_instrumented(&module, HookSet::all());
    let b = run_instrumented(&module, HookSet::all());
    assert_eq!(a, b);
}
