//! Umbrella crate for the Wasabi reproduction workspace.
//!
//! Re-exports the public crates so that the root `examples/` and `tests/`
//! (and downstream users who want a single dependency) can reach the whole
//! system through one import:
//!
//! ```
//! use wasabi_repro::wasm::Module;
//! let module = Module::new();
//! assert_eq!(module.functions.len(), 0);
//! ```

pub use wasabi as core;
pub use wasabi_analyses as analyses;
pub use wasabi_server as server;
pub use wasabi_vm as vm;
pub use wasabi_wasm as wasm;
pub use wasabi_workloads as workloads;
