//! Content-addressed module store.
//!
//! Uploaded wasm binaries are keyed by [`wasabi::cache::content_key`]
//! over their raw bytes, so a client (or ten clients) re-uploading the
//! same module costs one decode and one stored [`Module`] — the second
//! upload is acknowledged as a **dedup hit** without touching the stored
//! entry. Submit requests then name modules by hash, which is what makes
//! the daemon's warm [`wasabi::ModuleCache`] effective across
//! connections: the same bytes always map to the same cache key.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use wasabi::cache::content_key;
use wasabi_wasm::decode::decode;
use wasabi_wasm::error::DecodeError;
use wasabi_wasm::module::Module;

/// Receipt for one upload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UploadReceipt {
    /// The module's content key (`fnv64:<16 hex>`).
    pub hash: String,
    /// `true` if identical bytes were already stored (no decode happened).
    pub dedup: bool,
}

/// Thread-safe content-addressed store of decoded modules.
#[derive(Debug, Default)]
pub struct ContentStore {
    modules: Mutex<HashMap<String, Arc<Module>>>,
    uploads: AtomicU64,
    dedup_hits: AtomicU64,
}

impl ContentStore {
    /// An empty store.
    pub fn new() -> Self {
        ContentStore::default()
    }

    /// Store `bytes` content-addressed. Identical bytes dedup: the module
    /// is decoded at most once per distinct content.
    ///
    /// # Errors
    ///
    /// If the bytes do not decode as a wasm module (nothing is stored).
    pub fn insert(&self, bytes: &[u8]) -> Result<UploadReceipt, DecodeError> {
        self.uploads.fetch_add(1, Ordering::Relaxed);
        let hash = content_key(bytes);
        {
            let modules = self.modules.lock().expect("store lock");
            if modules.contains_key(&hash) {
                self.dedup_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(UploadReceipt { hash, dedup: true });
            }
        }
        // Decode outside the lock: a big module must not stall other
        // connections' lookups. A racing identical upload just wastes one
        // decode; the entry stays single.
        let module = Arc::new(decode(bytes)?);
        let mut modules = self.modules.lock().expect("store lock");
        if modules.insert(hash.clone(), module).is_some() {
            self.dedup_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(UploadReceipt { hash, dedup: true });
        }
        Ok(UploadReceipt { hash, dedup: false })
    }

    /// The module stored under `hash`, if any.
    pub fn get(&self, hash: &str) -> Option<Arc<Module>> {
        self.modules.lock().expect("store lock").get(hash).cloned()
    }

    /// Distinct modules stored.
    pub fn len(&self) -> usize {
        self.modules.lock().expect("store lock").len()
    }

    /// `true` if nothing has been stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total `upload` calls (including dedup hits and failed decodes).
    pub fn uploads(&self) -> u64 {
        self.uploads.load(Ordering::Relaxed)
    }

    /// Uploads that found their bytes already stored.
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use wasabi_wasm::builder::ModuleBuilder;
    use wasabi_wasm::encode::encode;
    use wasabi_wasm::types::ValType;

    fn wasm(constant: i32) -> Vec<u8> {
        let mut builder = ModuleBuilder::new();
        builder.function("main", &[], &[ValType::I32], |f| {
            f.i32_const(constant);
        });
        encode(&builder.finish())
    }

    #[test]
    fn identical_bytes_dedup_and_distinct_bytes_do_not() {
        let store = ContentStore::new();
        let a = wasm(1);
        let b = wasm(2);

        let first = store.insert(&a).expect("decodes");
        assert!(!first.dedup);
        let again = store.insert(&a).expect("decodes");
        assert!(again.dedup);
        assert_eq!(again.hash, first.hash);

        let other = store.insert(&b).expect("decodes");
        assert!(!other.dedup);
        assert_ne!(other.hash, first.hash);

        assert_eq!(store.len(), 2);
        assert_eq!(store.uploads(), 3);
        assert_eq!(store.dedup_hits(), 1);
        assert!(store.get(&first.hash).is_some());
        assert!(store.get("fnv64:0000000000000000").is_none());
    }

    #[test]
    fn invalid_bytes_store_nothing() {
        let store = ContentStore::new();
        assert!(store.insert(b"not wasm at all").is_err());
        assert!(store.is_empty());
        assert_eq!(store.uploads(), 1);
    }
}
