//! `wasabi-client` — talk to a running `wasabid` daemon.
//!
//! Uploads modules, submits jobs (streaming one JSON line per result as
//! the daemon finishes it), queries status, drains, shuts down. All
//! behavior lives in [`wasabi_server::cli::client_main`]; this bin only
//! maps the result to an exit code.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(message) = wasabi_server::cli::client_main(args) {
        eprintln!("wasabi-client: {message}");
        std::process::exit(1);
    }
}
