//! `wasabid` — the persistent wasabi analysis daemon.
//!
//! Binds a unix-domain (default) or TCP socket and serves uploads and
//! analysis jobs until a client drains it. All behavior lives in
//! [`wasabi_server::cli::serve_main`]; this bin only maps the result to
//! an exit code.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(message) = wasabi_server::cli::serve_main(args) {
        eprintln!("wasabid: {message}");
        std::process::exit(1);
    }
}
