//! The `wasabid` wire protocol: length-prefixed JSON frames.
//!
//! Every message — request or response — is one **frame**: a 4-byte
//! big-endian payload length followed by that many bytes of UTF-8 JSON,
//! written with the canonical [`wasabi::json::emit`] serializer and read
//! back with the strict, depth-limited [`wasabi::json::parse`] parser.
//! The depth limit is what lets the daemon treat every byte a client
//! sends as hostile: a megabyte of `[`s is a parse error, not a stack
//! overflow, and an oversized length prefix is rejected *before* any
//! allocation ([`MAX_FRAME`]).
//!
//! Requests and responses are JSON objects tagged with a `"type"` member;
//! [`Request`] and [`Response`] are the typed views with exact
//! `to_json`/`from_json` round-trips — the client and the daemon speak
//! through these, never through ad-hoc JSON.
//!
//! | request | response(s) |
//! |---|---|
//! | `upload` | `uploaded` (content-addressed: re-uploads dedup) |
//! | `submit` | streamed `result` per job as it finishes, then `done` |
//! | `cancel` | `cancelled` (fires the cancel tokens of a tagged submit) |
//! | `status` | `status` |
//! | `drain` | `draining` (refuse new work, finish in-flight, exit) |
//! | `shutdown` | `shutting_down` |
//! | anything else | `error` with a machine-readable [`ErrorCode`] |
//!
//! A `submit` may carry a client-chosen `tag`; a concurrent connection
//! can then `cancel` that tag to fire the cancel tokens of every job in
//! the batch. Cancellation is keyed by tag — not by a daemon-assigned id
//! — so the submit response stream stays exactly `result*` + `done` and
//! existing raw-protocol consumers keep working unchanged.

use std::io::{self, Read, Write};

use wasabi::json::{self, JsonParseError};
use wasabi::report::{JsonValue, Report};
use wasabi_wasm::instr::Val;
use wasabi_wasm::module::Module;
use wasabi_wasm::types::ValType;

/// Hard cap on a frame's payload size (64 MiB). A length prefix past
/// this is rejected before any buffer is allocated: a four-byte lie must
/// not cost four gigabytes.
pub const MAX_FRAME: usize = 64 << 20;

/// Why reading a frame failed.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The peer closed (or the stream errored) in the *middle* of a
    /// frame: a truncated header or payload.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME`].
    TooLarge(usize),
    /// The payload is not valid JSON (or not valid UTF-8).
    Malformed(String),
    /// A transport error other than clean EOF.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "connection closed mid-frame"),
            FrameError::TooLarge(len) => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            FrameError::Malformed(e) => write!(f, "malformed frame payload: {e}"),
            FrameError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<JsonParseError> for FrameError {
    fn from(e: JsonParseError) -> Self {
        FrameError::Malformed(e.to_string())
    }
}

/// Write `value` as one frame: 4-byte big-endian length + canonical JSON.
///
/// # Errors
///
/// Fails on transport errors, or if the rendered payload exceeds
/// [`MAX_FRAME`] (the daemon never produces such a frame; a caller
/// framing arbitrary data could).
pub fn write_frame(writer: &mut impl Write, value: &JsonValue) -> io::Result<()> {
    let payload = json::emit(value);
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame payload of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    let len = (payload.len() as u32).to_be_bytes();
    writer.write_all(&len)?;
    writer.write_all(payload.as_bytes())?;
    writer.flush()
}

/// Read one frame, blocking until it is complete (the client-side
/// counterpart of [`write_frame`]; the daemon uses the resumable
/// [`FrameReader`] so idle reads can observe lifecycle changes).
///
/// # Errors
///
/// [`FrameError::Closed`] on clean EOF between frames; see [`FrameError`]
/// for the rest.
pub fn read_frame(reader: &mut impl Read) -> Result<JsonValue, FrameError> {
    let mut frames = FrameReader::new();
    loop {
        if let Some(value) = frames.poll(reader)? {
            return Ok(value);
        }
        // poll() only returns None on WouldBlock/TimedOut; on a stream
        // without a read timeout it never does, so this loop is the
        // timeout-tolerant retry for sockets that have one.
    }
}

/// Resumable frame reader: accumulates header and payload bytes across
/// reads, so a socket read timeout between (or even inside) frames
/// surfaces as `Ok(None)` — an *idle tick* the daemon uses to check its
/// lifecycle — instead of losing partial data the way `read_exact` would.
#[derive(Debug, Default)]
pub struct FrameReader {
    header: [u8; 4],
    header_got: usize,
    payload: Vec<u8>,
    payload_need: Option<usize>,
}

impl FrameReader {
    /// A reader with no partial frame buffered.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// `true` while a frame is partially read (a tick in this state that
    /// meets EOF is a truncation, not a clean close).
    pub fn mid_frame(&self) -> bool {
        self.header_got > 0 || self.payload_need.is_some()
    }

    /// Advance by whatever bytes are available. Returns `Ok(Some(value))`
    /// when a full frame was assembled, `Ok(None)` when the read timed
    /// out first (no data lost — call again).
    ///
    /// # Errors
    ///
    /// See [`FrameError`]; clean EOF is [`FrameError::Closed`] only
    /// between frames, [`FrameError::Truncated`] inside one.
    pub fn poll(&mut self, reader: &mut impl Read) -> Result<Option<JsonValue>, FrameError> {
        loop {
            // Phase 1: the 4-byte length prefix.
            while self.payload_need.is_none() {
                match reader.read(&mut self.header[self.header_got..]) {
                    Ok(0) => {
                        return Err(if self.header_got == 0 {
                            FrameError::Closed
                        } else {
                            FrameError::Truncated
                        });
                    }
                    Ok(n) => {
                        self.header_got += n;
                        if self.header_got == 4 {
                            let len = u32::from_be_bytes(self.header) as usize;
                            if len > MAX_FRAME {
                                // Reset so the caller *could* keep the
                                // connection; the daemon closes it (the
                                // stream still carries the lied-about
                                // payload).
                                self.header_got = 0;
                                return Err(FrameError::TooLarge(len));
                            }
                            self.payload = Vec::with_capacity(len);
                            self.payload_need = Some(len);
                        }
                    }
                    Err(e) => return self.map_read_error(e),
                }
            }

            // Phase 2: the payload.
            let need = self.payload_need.expect("set in phase 1");
            while self.payload.len() < need {
                let mut chunk = [0u8; 64 * 1024];
                let want = (need - self.payload.len()).min(chunk.len());
                match reader.read(&mut chunk[..want]) {
                    Ok(0) => return Err(FrameError::Truncated),
                    Ok(n) => self.payload.extend_from_slice(&chunk[..n]),
                    Err(e) => return self.map_read_error(e),
                }
            }

            // Frame complete: reset state BEFORE parsing, so a parse
            // error leaves the reader aligned on the next frame.
            self.header_got = 0;
            self.payload_need = None;
            let payload = std::mem::take(&mut self.payload);
            let text = String::from_utf8(payload)
                .map_err(|_| FrameError::Malformed("payload is not UTF-8".to_string()))?;
            return Ok(Some(json::parse(&text)?));
        }
    }

    fn map_read_error(&self, e: io::Error) -> Result<Option<JsonValue>, FrameError> {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => Ok(None),
            io::ErrorKind::Interrupted => Ok(None),
            _ => Err(FrameError::Io(e)),
        }
    }
}

/// Lowercase hex encoding for wasm bytes inside `upload` frames (the
/// protocol is JSON; binary payloads ride as hex strings).
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for byte in bytes {
        out.push(char::from_digit((byte >> 4) as u32, 16).expect("nibble"));
        out.push(char::from_digit((byte & 0xf) as u32, 16).expect("nibble"));
    }
    out
}

/// Inverse of [`hex_encode`].
///
/// # Errors
///
/// Odd length or a non-hex digit, with its position.
pub fn hex_decode(text: &str) -> Result<Vec<u8>, String> {
    if text.len() % 2 != 0 {
        return Err("hex string has odd length".to_string());
    }
    let digits = text.as_bytes();
    let mut out = Vec::with_capacity(text.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16);
        let lo = (pair[1] as char).to_digit(16);
        match (hi, lo) {
            (Some(hi), Some(lo)) => out.push(((hi << 4) | lo) as u8),
            _ => return Err(format!("invalid hex digits {:?}", pair)),
        }
    }
    Ok(out)
}

/// One job inside a `submit` request: a module **by content hash** (it
/// must have been uploaded first), the analyses to run, and the export +
/// arguments to invoke. Args are raw JSON values, typed against the
/// export's signature by the daemon ([`typed_args`]).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Content key of the module ([`wasabi::cache::content_key`] over its
    /// wasm bytes), as returned by the `uploaded` response.
    pub hash: String,
    /// Registry names of the analyses to run fused over this job.
    pub analyses: Vec<String>,
    /// The export to invoke.
    pub invoke: String,
    /// Raw argument values from the client.
    pub args: Vec<JsonValue>,
    /// Sweep inputs: one raw argument array per cohort instance. When
    /// set, the job expands into a cohort of instances sharing one
    /// translated module, and the daemon streams one `result` frame per
    /// instance (each tagged with its `instance` index) instead of a
    /// single frame. Mutually exclusive with non-empty `args`.
    pub sweep_args: Option<Vec<Vec<JsonValue>>>,
    /// Wall-clock deadline for this job in milliseconds, measured from
    /// the moment a fleet worker dequeues it (`None`: ungoverned). An
    /// expired job fails with a structured error; its worker survives.
    pub deadline_ms: Option<u64>,
}

/// A request frame, typed.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Store a module content-addressed; re-uploads of identical bytes
    /// dedup server-side.
    Upload {
        /// The raw wasm binary.
        bytes: Vec<u8>,
    },
    /// Run jobs; the daemon streams one `result` frame per job as it
    /// finishes, then a final `done` frame.
    Submit {
        /// The jobs, in submission order.
        jobs: Vec<JobSpec>,
        /// Client-chosen batch tag; a concurrent `cancel` request with
        /// the same tag fires every job's cancel token. Empty: untagged
        /// (still sheddable, never cancellable by name).
        tag: String,
    },
    /// Fire the cancel tokens of every in-flight `submit` whose tag
    /// matches. Cancelled jobs fail with a structured error on their own
    /// stream; this request's connection gets a `cancelled` count.
    Cancel {
        /// The tag to cancel.
        tag: String,
    },
    /// Report counters and lifecycle state.
    Status,
    /// Stop accepting work, finish in-flight jobs, then exit.
    Drain,
    /// Exit as soon as in-flight work completes (like drain, but set
    /// directly to the stopped state: idle connections close immediately).
    Shutdown,
}

impl Request {
    /// Render as a frame payload.
    pub fn to_json(&self) -> JsonValue {
        match self {
            Request::Upload { bytes } => JsonValue::object([
                ("type", JsonValue::from("upload")),
                ("bytes", JsonValue::from(hex_encode(bytes))),
            ]),
            Request::Submit { jobs, tag } => {
                let mut pairs = vec![
                    ("type", JsonValue::from("submit")),
                    (
                        "jobs",
                        JsonValue::array(jobs.iter().map(|job| {
                            let mut members = vec![
                                ("hash", JsonValue::from(job.hash.clone())),
                                (
                                    "analyses",
                                    JsonValue::array(
                                        job.analyses.iter().map(|a| JsonValue::from(a.clone())),
                                    ),
                                ),
                                ("invoke", JsonValue::from(job.invoke.clone())),
                                ("args", JsonValue::Array(job.args.clone())),
                            ];
                            if let Some(rows) = &job.sweep_args {
                                members.push((
                                    "sweep_args",
                                    JsonValue::array(
                                        rows.iter().map(|row| JsonValue::Array(row.clone())),
                                    ),
                                ));
                            }
                            if let Some(ms) = job.deadline_ms {
                                members.push(("deadline_ms", JsonValue::from(ms)));
                            }
                            JsonValue::object(members)
                        })),
                    ),
                ];
                if !tag.is_empty() {
                    pairs.push(("tag", JsonValue::from(tag.clone())));
                }
                JsonValue::object(pairs)
            }
            Request::Cancel { tag } => JsonValue::object([
                ("type", JsonValue::from("cancel")),
                ("tag", JsonValue::from(tag.clone())),
            ]),
            Request::Status => JsonValue::object([("type", JsonValue::from("status"))]),
            Request::Drain => JsonValue::object([("type", JsonValue::from("drain"))]),
            Request::Shutdown => JsonValue::object([("type", JsonValue::from("shutdown"))]),
        }
    }

    /// Parse a frame payload into a typed request.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the missing/mistyped member or the
    /// unknown `"type"` — the daemon wraps it in an `error` response with
    /// [`ErrorCode::UnknownRequest`] or [`ErrorCode::BadRequest`].
    pub fn from_json(value: &JsonValue) -> Result<Request, RequestError> {
        let kind = value
            .get("type")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| RequestError::bad("request has no string \"type\" member"))?;
        match kind {
            "upload" => {
                let text = value
                    .get("bytes")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| RequestError::bad("upload has no string \"bytes\""))?;
                let bytes = hex_decode(text)
                    .map_err(|e| RequestError::bad(&format!("upload bytes: {e}")))?;
                Ok(Request::Upload { bytes })
            }
            "submit" => {
                let jobs = value
                    .get("jobs")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| RequestError::bad("submit has no \"jobs\" array"))?;
                let jobs = jobs
                    .iter()
                    .enumerate()
                    .map(|(i, job)| {
                        let bad = |what: &str| RequestError::bad(&format!("job {i}: {what}"));
                        let hash = job
                            .get("hash")
                            .and_then(JsonValue::as_str)
                            .ok_or_else(|| bad("missing string \"hash\""))?
                            .to_string();
                        let analyses = match job.get("analyses") {
                            None => Vec::new(),
                            Some(list) => list
                                .as_array()
                                .ok_or_else(|| bad("\"analyses\" must be an array"))?
                                .iter()
                                .map(|name| {
                                    name.as_str()
                                        .map(str::to_string)
                                        .ok_or_else(|| bad("analysis names must be strings"))
                                })
                                .collect::<Result<_, _>>()?,
                        };
                        let invoke = match job.get("invoke") {
                            None => "main".to_string(),
                            Some(v) => v
                                .as_str()
                                .ok_or_else(|| bad("\"invoke\" must be a string"))?
                                .to_string(),
                        };
                        let args = match job.get("args") {
                            None => Vec::new(),
                            Some(v) => v
                                .as_array()
                                .ok_or_else(|| bad("\"args\" must be an array"))?
                                .to_vec(),
                        };
                        let sweep_args = match job.get("sweep_args") {
                            None => None,
                            Some(v) => Some(
                                v.as_array()
                                    .ok_or_else(|| bad("\"sweep_args\" must be an array"))?
                                    .iter()
                                    .map(|row| {
                                        row.as_array()
                                            .map(<[JsonValue]>::to_vec)
                                            .ok_or_else(|| bad("sweep_args entries must be arrays"))
                                    })
                                    .collect::<Result<Vec<_>, _>>()?,
                            ),
                        };
                        if sweep_args.is_some() && !args.is_empty() {
                            return Err(bad("\"sweep_args\" and \"args\" are mutually exclusive"));
                        }
                        let deadline_ms = match job.get("deadline_ms") {
                            None => None,
                            Some(v) => Some(
                                v.as_i64()
                                    .and_then(|ms| u64::try_from(ms).ok())
                                    .ok_or_else(|| {
                                        bad("\"deadline_ms\" must be a non-negative integer")
                                    })?,
                            ),
                        };
                        Ok(JobSpec {
                            hash,
                            analyses,
                            invoke,
                            args,
                            sweep_args,
                            deadline_ms,
                        })
                    })
                    .collect::<Result<Vec<_>, RequestError>>()?;
                let tag = match value.get("tag") {
                    None => String::new(),
                    Some(v) => v
                        .as_str()
                        .ok_or_else(|| RequestError::bad("\"tag\" must be a string"))?
                        .to_string(),
                };
                Ok(Request::Submit { jobs, tag })
            }
            "cancel" => {
                let tag = value
                    .get("tag")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| RequestError::bad("cancel has no string \"tag\""))?;
                if tag.is_empty() {
                    return Err(RequestError::bad("cancel tag must be non-empty"));
                }
                Ok(Request::Cancel {
                    tag: tag.to_string(),
                })
            }
            "status" => Ok(Request::Status),
            "drain" => Ok(Request::Drain),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(RequestError::Unknown(other.to_string())),
        }
    }
}

/// Why a structurally valid JSON frame is not a valid request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The `"type"` member names no known request.
    Unknown(String),
    /// A known request with missing or mistyped members.
    Bad(String),
}

impl RequestError {
    fn bad(message: &str) -> Self {
        RequestError::Bad(message.to_string())
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Unknown(kind) => write!(f, "unknown request type {kind:?}"),
            RequestError::Bad(message) => f.write_str(message),
        }
    }
}

impl std::error::Error for RequestError {}

/// Machine-readable error classes in `error` response frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame payload was not valid JSON.
    MalformedFrame,
    /// The length prefix exceeded [`MAX_FRAME`].
    FrameTooLarge,
    /// Valid JSON, but no known request type.
    UnknownRequest,
    /// A known request with bad members (missing hash, odd hex, ...).
    BadRequest,
    /// Submit named a module hash that was never uploaded.
    UnknownModule,
    /// The uploaded bytes do not decode as a wasm module.
    InvalidModule,
    /// Admission control: the submit would push in-flight jobs past the
    /// daemon's bound; retry after results drain.
    QueueFull,
    /// The daemon is draining (or stopped) and refuses new work.
    Draining,
}

impl ErrorCode {
    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::MalformedFrame => "malformed_frame",
            ErrorCode::FrameTooLarge => "frame_too_large",
            ErrorCode::UnknownRequest => "unknown_request",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownModule => "unknown_module",
            ErrorCode::InvalidModule => "invalid_module",
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::Draining => "draining",
        }
    }

    /// Whether a client can reasonably retry the refused request later:
    /// `queue_full` clears as results drain, `draining` clears when a
    /// fresh daemon takes over the endpoint. Everything else (malformed
    /// frames, unknown modules, bad arguments) will fail identically on
    /// every retry and is fatal.
    pub fn is_retryable(self) -> bool {
        matches!(self, ErrorCode::QueueFull | ErrorCode::Draining)
    }

    /// Parse a wire name.
    pub fn from_str(text: &str) -> Option<ErrorCode> {
        [
            ErrorCode::MalformedFrame,
            ErrorCode::FrameTooLarge,
            ErrorCode::UnknownRequest,
            ErrorCode::BadRequest,
            ErrorCode::UnknownModule,
            ErrorCode::InvalidModule,
            ErrorCode::QueueFull,
            ErrorCode::Draining,
        ]
        .into_iter()
        .find(|code| code.as_str() == text)
    }
}

/// Daemon-side counters in a `status` response.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatusReply {
    /// Lifecycle state name: `accepting`, `draining`, or `stopped`.
    pub state: String,
    /// Total `upload` requests handled.
    pub uploads: u64,
    /// Uploads whose bytes were already stored (content-addressed dedup).
    pub dedup_hits: u64,
    /// Distinct modules in the content store.
    pub modules: u64,
    /// Prepared-session cache hits.
    pub cache_hits: u64,
    /// Prepared-session cache misses (builds).
    pub cache_misses: u64,
    /// Prepared-session cache entries resident now.
    pub cache_entries: u64,
    /// LRU evictions from the bounded session cache.
    pub cache_evictions: u64,
    /// Memory-tier misses served from the on-disk session cache (no
    /// rebuild). Zero when the daemon runs without `--disk-cache`.
    pub disk_cache_hits: u64,
    /// Memory-tier misses that also missed the disk tier and rebuilt.
    /// Zero when the daemon runs without `--disk-cache`.
    pub disk_cache_misses: u64,
    /// Total fused instrument+translate build wall time, milliseconds
    /// (coordinator clock, summed over all builds this process did).
    pub build_ms: f64,
    /// Summed busy time of all build worker threads, milliseconds.
    /// `build_worker_ms / build_ms` approximates effective parallelism.
    pub build_worker_ms: f64,
    /// Jobs whose result frame has been streamed.
    pub jobs_done: u64,
    /// Jobs admitted but not yet streamed.
    pub in_flight: u64,
    /// Connections accepted over the daemon's lifetime.
    pub connections: u64,
    /// Request frames dispatched over the daemon's lifetime.
    pub requests: u64,
    /// Jobs that exceeded their deadline (process-wide).
    pub timeouts: u64,
    /// Jobs cancelled via their cancel token (process-wide).
    pub cancellations: u64,
    /// Transient-failure retry attempts (process-wide).
    pub retries: u64,
    /// Batches load-shed to admit newer work (process-wide).
    pub sheds: u64,
    /// Faults injected by the failpoint registry (0 outside chaos runs).
    pub faults_injected: u64,
}

/// One streamed per-job result.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Submission index within its `submit` request.
    pub job: usize,
    /// Cohort instance index for sweep jobs (one frame per instance);
    /// `None` for ordinary single-invocation jobs.
    pub instance: Option<u32>,
    /// The module's content hash.
    pub hash: String,
    /// The invoked export.
    pub invoke: String,
    /// Debug-rendered invocation results (e.g. `["I32(25)"]`), or the
    /// job's error message.
    pub results: Result<Vec<String>, String>,
    /// One report per analysis, in the job's analysis order.
    pub reports: Vec<Report>,
    /// Whether the prepared session came from the warm cache.
    pub cache_hit: bool,
}

/// A response frame, typed.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to `upload`.
    Uploaded {
        /// Content key of the stored module.
        hash: String,
        /// `true` if identical bytes were already stored.
        dedup: bool,
        /// Distinct modules now in the store.
        modules: u64,
    },
    /// One job finished (streamed, in completion order).
    Result(JobResult),
    /// A `submit`'s jobs have all been streamed.
    Done {
        /// Jobs in the batch.
        jobs: u64,
        /// Batch wall time in milliseconds.
        wall_ms: f64,
        /// Jobs served from the warm session cache.
        cache_hits: u64,
        /// Jobs that built a session.
        cache_misses: u64,
    },
    /// Reply to `status`.
    Status(StatusReply),
    /// Reply to `cancel`: how many in-flight jobs had their token fired.
    Cancelled {
        /// Jobs whose cancel token this request fired.
        jobs: u64,
    },
    /// Reply to `drain`: the daemon finishes `in_flight` jobs, then exits.
    Draining {
        /// Jobs still in flight at the moment of the drain request.
        in_flight: u64,
    },
    /// Reply to `shutdown`.
    ShuttingDown,
    /// Any failure, tied to the request that caused it.
    Error {
        /// Machine-readable class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Render as a frame payload.
    pub fn to_json(&self) -> JsonValue {
        match self {
            Response::Uploaded {
                hash,
                dedup,
                modules,
            } => JsonValue::object([
                ("type", JsonValue::from("uploaded")),
                ("hash", JsonValue::from(hash.clone())),
                ("dedup", JsonValue::from(*dedup)),
                ("modules", JsonValue::from(*modules)),
            ]),
            Response::Result(result) => {
                let mut pairs = vec![
                    ("type", JsonValue::from("result")),
                    ("job", JsonValue::from(result.job)),
                    ("hash", JsonValue::from(result.hash.clone())),
                ];
                if let Some(instance) = result.instance {
                    pairs.push(("instance", JsonValue::from(u64::from(instance))));
                }
                pairs.extend([
                    ("invoke", JsonValue::from(result.invoke.clone())),
                    ("cache_hit", JsonValue::from(result.cache_hit)),
                ]);
                match &result.results {
                    Ok(values) => pairs.push((
                        "results",
                        JsonValue::array(values.iter().map(|v| JsonValue::from(v.clone()))),
                    )),
                    Err(message) => pairs.push(("error", JsonValue::from(message.clone()))),
                }
                pairs.push((
                    "reports",
                    JsonValue::array(result.reports.iter().map(|r| {
                        JsonValue::object([
                            ("analysis", JsonValue::from(r.analysis.clone())),
                            ("data", r.data.clone()),
                        ])
                    })),
                ));
                JsonValue::object(pairs)
            }
            Response::Done {
                jobs,
                wall_ms,
                cache_hits,
                cache_misses,
            } => JsonValue::object([
                ("type", JsonValue::from("done")),
                ("jobs", JsonValue::from(*jobs)),
                ("wall_ms", JsonValue::from(*wall_ms)),
                ("cache_hits", JsonValue::from(*cache_hits)),
                ("cache_misses", JsonValue::from(*cache_misses)),
            ]),
            Response::Status(s) => JsonValue::object([
                ("type", JsonValue::from("status")),
                ("state", JsonValue::from(s.state.clone())),
                ("uploads", JsonValue::from(s.uploads)),
                ("dedup_hits", JsonValue::from(s.dedup_hits)),
                ("modules", JsonValue::from(s.modules)),
                ("cache_hits", JsonValue::from(s.cache_hits)),
                ("cache_misses", JsonValue::from(s.cache_misses)),
                ("cache_entries", JsonValue::from(s.cache_entries)),
                ("cache_evictions", JsonValue::from(s.cache_evictions)),
                ("disk_cache_hits", JsonValue::from(s.disk_cache_hits)),
                ("disk_cache_misses", JsonValue::from(s.disk_cache_misses)),
                ("build_ms", JsonValue::from(s.build_ms)),
                ("build_worker_ms", JsonValue::from(s.build_worker_ms)),
                ("jobs_done", JsonValue::from(s.jobs_done)),
                ("in_flight", JsonValue::from(s.in_flight)),
                ("connections", JsonValue::from(s.connections)),
                ("requests", JsonValue::from(s.requests)),
                ("timeouts", JsonValue::from(s.timeouts)),
                ("cancellations", JsonValue::from(s.cancellations)),
                ("retries", JsonValue::from(s.retries)),
                ("sheds", JsonValue::from(s.sheds)),
                ("faults_injected", JsonValue::from(s.faults_injected)),
            ]),
            Response::Cancelled { jobs } => JsonValue::object([
                ("type", JsonValue::from("cancelled")),
                ("jobs", JsonValue::from(*jobs)),
            ]),
            Response::Draining { in_flight } => JsonValue::object([
                ("type", JsonValue::from("draining")),
                ("in_flight", JsonValue::from(*in_flight)),
            ]),
            Response::ShuttingDown => {
                JsonValue::object([("type", JsonValue::from("shutting_down"))])
            }
            Response::Error { code, message } => JsonValue::object([
                ("type", JsonValue::from("error")),
                ("code", JsonValue::from(code.as_str())),
                ("message", JsonValue::from(message.clone())),
            ]),
        }
    }

    /// Parse a frame payload into a typed response.
    ///
    /// # Errors
    ///
    /// A message naming the missing/mistyped member.
    pub fn from_json(value: &JsonValue) -> Result<Response, String> {
        let kind = value
            .get("type")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "response has no string \"type\" member".to_string())?;
        let str_member = |name: &str| -> Result<String, String> {
            value
                .get(name)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{kind} response has no string {name:?}"))
        };
        let u64_member = |name: &str| -> Result<u64, String> {
            value
                .get(name)
                .and_then(JsonValue::as_i64)
                .and_then(|v| u64::try_from(v).ok())
                .ok_or_else(|| format!("{kind} response has no numeric {name:?}"))
        };
        match kind {
            "uploaded" => Ok(Response::Uploaded {
                hash: str_member("hash")?,
                dedup: value
                    .get("dedup")
                    .and_then(JsonValue::as_bool)
                    .ok_or("uploaded response has no bool \"dedup\"")?,
                modules: u64_member("modules")?,
            }),
            "result" => {
                let results = if let Some(error) = value.get("error") {
                    Err(error
                        .as_str()
                        .ok_or("result \"error\" must be a string")?
                        .to_string())
                } else {
                    Ok(value
                        .get("results")
                        .and_then(JsonValue::as_array)
                        .ok_or("result has neither \"results\" nor \"error\"")?
                        .iter()
                        .map(|v| {
                            v.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| "results must be strings".to_string())
                        })
                        .collect::<Result<Vec<_>, _>>()?)
                };
                let reports = value
                    .get("reports")
                    .and_then(JsonValue::as_array)
                    .ok_or("result has no \"reports\" array")?
                    .iter()
                    .map(|r| {
                        let analysis = r
                            .get("analysis")
                            .and_then(JsonValue::as_str)
                            .ok_or("report has no \"analysis\"")?;
                        let data = r.get("data").ok_or("report has no \"data\"")?;
                        Ok::<Report, String>(Report::new(analysis, data.clone()))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let instance = match value.get("instance") {
                    None => None,
                    Some(v) => Some(
                        v.as_i64()
                            .and_then(|i| u32::try_from(i).ok())
                            .ok_or("result \"instance\" must be a non-negative integer")?,
                    ),
                };
                Ok(Response::Result(JobResult {
                    job: u64_member("job")? as usize,
                    instance,
                    hash: str_member("hash")?,
                    invoke: str_member("invoke")?,
                    results,
                    reports,
                    cache_hit: value
                        .get("cache_hit")
                        .and_then(JsonValue::as_bool)
                        .ok_or("result has no bool \"cache_hit\"")?,
                }))
            }
            "done" => Ok(Response::Done {
                jobs: u64_member("jobs")?,
                wall_ms: value
                    .get("wall_ms")
                    .and_then(JsonValue::as_f64)
                    .ok_or("done response has no numeric \"wall_ms\"")?,
                cache_hits: u64_member("cache_hits")?,
                cache_misses: u64_member("cache_misses")?,
            }),
            "status" => Ok(Response::Status(StatusReply {
                state: str_member("state")?,
                uploads: u64_member("uploads")?,
                dedup_hits: u64_member("dedup_hits")?,
                modules: u64_member("modules")?,
                cache_hits: u64_member("cache_hits")?,
                cache_misses: u64_member("cache_misses")?,
                cache_entries: u64_member("cache_entries")?,
                cache_evictions: u64_member("cache_evictions")?,
                disk_cache_hits: u64_member("disk_cache_hits")?,
                disk_cache_misses: u64_member("disk_cache_misses")?,
                build_ms: value
                    .get("build_ms")
                    .and_then(JsonValue::as_f64)
                    .ok_or("status response has no numeric \"build_ms\"")?,
                build_worker_ms: value
                    .get("build_worker_ms")
                    .and_then(JsonValue::as_f64)
                    .ok_or("status response has no numeric \"build_worker_ms\"")?,
                jobs_done: u64_member("jobs_done")?,
                in_flight: u64_member("in_flight")?,
                connections: u64_member("connections")?,
                requests: u64_member("requests")?,
                timeouts: u64_member("timeouts")?,
                cancellations: u64_member("cancellations")?,
                retries: u64_member("retries")?,
                sheds: u64_member("sheds")?,
                faults_injected: u64_member("faults_injected")?,
            })),
            "cancelled" => Ok(Response::Cancelled {
                jobs: u64_member("jobs")?,
            }),
            "draining" => Ok(Response::Draining {
                in_flight: u64_member("in_flight")?,
            }),
            "shutting_down" => Ok(Response::ShuttingDown),
            "error" => {
                let code = str_member("code")?;
                Ok(Response::Error {
                    code: ErrorCode::from_str(&code)
                        .ok_or_else(|| format!("unknown error code {code:?}"))?,
                    message: str_member("message")?,
                })
            }
            other => Err(format!("unknown response type {other:?}")),
        }
    }
}

/// The parameter types of the export `invoke` of `module`.
///
/// # Errors
///
/// If no function exports that name.
pub fn export_params(module: &Module, invoke: &str) -> Result<Vec<ValType>, String> {
    module
        .functions
        .iter()
        .find(|f| f.export.iter().any(|e| e == invoke))
        .map(|f| f.type_.params.clone())
        .ok_or_else(|| format!("no exported function {invoke:?}"))
}

/// Type raw JSON argument values against an export's parameter list —
/// shared by the daemon's `submit` handler and the CLI's `--batch`
/// manifest loader (numbers directly; strings re-parsed like the CLI's
/// comma-separated `--args`).
///
/// # Errors
///
/// Arity mismatch, a non-numeric value, or a number that does not fit
/// the parameter type.
pub fn typed_args(raw: &[JsonValue], params: &[ValType]) -> Result<Vec<Val>, String> {
    if raw.len() != params.len() {
        return Err(format!(
            "export takes {} argument(s), {} given",
            params.len(),
            raw.len()
        ));
    }
    raw.iter()
        .zip(params)
        .map(|(value, ty)| {
            if let Some(text) = value.as_str() {
                let parsed = match ty {
                    ValType::I32 => text.parse().map(Val::I32).ok(),
                    ValType::I64 => text.parse().map(Val::I64).ok(),
                    ValType::F32 => text.parse().map(Val::F32).ok(),
                    ValType::F64 => text.parse().map(Val::F64).ok(),
                };
                return parsed.ok_or_else(|| format!("invalid {ty} argument {text:?}"));
            }
            let number = value
                .as_f64()
                .ok_or_else(|| format!("argument {value} is not a number or string"))?;
            Ok(match ty {
                ValType::I32 => Val::I32(
                    value
                        .as_i64()
                        .and_then(|v| i32::try_from(v).ok())
                        .ok_or_else(|| format!("argument {value} does not fit i32"))?,
                ),
                ValType::I64 => Val::I64(
                    value
                        .as_i64()
                        .ok_or_else(|| format!("argument {value} does not fit i64"))?,
                ),
                ValType::F32 => Val::F32(number as f32),
                ValType::F64 => Val::F64(number),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_a_byte_pipe() {
        let value = Request::Submit {
            jobs: vec![JobSpec {
                hash: "fnv64:0123456789abcdef".to_string(),
                analyses: vec!["instruction_mix".to_string()],
                invoke: "main".to_string(),
                args: vec![JsonValue::UInt(3), JsonValue::Float(0.5)],
                sweep_args: None,
                deadline_ms: None,
            }],
            tag: String::new(),
        }
        .to_json();
        let mut pipe = Vec::new();
        write_frame(&mut pipe, &value).expect("writes");
        write_frame(&mut pipe, &Request::Status.to_json()).expect("writes");

        let mut cursor = io::Cursor::new(pipe);
        assert_eq!(read_frame(&mut cursor).expect("first frame"), value);
        assert_eq!(
            read_frame(&mut cursor).expect("second frame"),
            Request::Status.to_json()
        );
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Closed)));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_be_bytes());
        bytes.extend_from_slice(b"whatever");
        let err = read_frame(&mut io::Cursor::new(bytes)).expect_err("too large");
        assert!(matches!(err, FrameError::TooLarge(len) if len == u32::MAX as usize));
    }

    #[test]
    fn truncated_frames_are_distinguished_from_clean_closes() {
        // Clean close between frames.
        assert!(matches!(
            read_frame(&mut io::Cursor::new(Vec::<u8>::new())),
            Err(FrameError::Closed)
        ));
        // EOF inside the header.
        assert!(matches!(
            read_frame(&mut io::Cursor::new(vec![0u8, 0])),
            Err(FrameError::Truncated)
        ));
        // EOF inside the payload.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&10u32.to_be_bytes());
        bytes.extend_from_slice(b"tru");
        assert!(matches!(
            read_frame(&mut io::Cursor::new(bytes)),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn invalid_json_payload_is_malformed_and_reader_stays_aligned() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&7u32.to_be_bytes());
        bytes.extend_from_slice(b"{\"a\":::");
        write_frame(&mut bytes, &Request::Status.to_json()).expect("writes");

        let mut cursor = io::Cursor::new(bytes);
        let mut frames = FrameReader::new();
        let err = frames.poll(&mut cursor).expect_err("malformed");
        assert!(matches!(err, FrameError::Malformed(_)), "{err}");
        // The reader consumed exactly the bad frame: the next poll gets
        // the good one.
        assert_eq!(
            frames.poll(&mut cursor).expect("aligned").expect("frame"),
            Request::Status.to_json()
        );
    }

    #[test]
    fn requests_round_trip_typed() {
        for request in [
            Request::Upload {
                bytes: vec![0, 1, 2, 0xfe, 0xff],
            },
            Request::Submit {
                jobs: vec![
                    JobSpec {
                        hash: "fnv64:00".to_string(),
                        analyses: vec![],
                        invoke: "main".to_string(),
                        args: vec![],
                        sweep_args: None,
                        deadline_ms: None,
                    },
                    JobSpec {
                        hash: "fnv64:ff".to_string(),
                        analyses: vec!["call_graph".to_string(), "taint_analysis".to_string()],
                        invoke: "run".to_string(),
                        args: vec![JsonValue::Int(-4)],
                        sweep_args: None,
                        deadline_ms: Some(250),
                    },
                    JobSpec {
                        hash: "fnv64:aa".to_string(),
                        analyses: vec!["instruction_mix".to_string()],
                        invoke: "main".to_string(),
                        args: vec![],
                        sweep_args: Some(vec![
                            vec![JsonValue::UInt(1)],
                            vec![JsonValue::UInt(2)],
                            vec![JsonValue::UInt(3)],
                        ]),
                        deadline_ms: Some(1000),
                    },
                ],
                tag: "batch-7".to_string(),
            },
            Request::Cancel {
                tag: "batch-7".to_string(),
            },
            Request::Status,
            Request::Drain,
            Request::Shutdown,
        ] {
            let round = Request::from_json(&request.to_json()).expect("parses");
            assert_eq!(round, request);
        }
    }

    #[test]
    fn unknown_and_bad_requests_are_distinct_errors() {
        let unknown = JsonValue::object([("type", JsonValue::from("frobnicate"))]);
        assert!(matches!(
            Request::from_json(&unknown),
            Err(RequestError::Unknown(kind)) if kind == "frobnicate"
        ));
        let bad = JsonValue::object([
            ("type", JsonValue::from("upload")),
            ("bytes", JsonValue::from("zz")),
        ]);
        assert!(matches!(
            Request::from_json(&bad),
            Err(RequestError::Bad(_))
        ));
        assert!(Request::from_json(&JsonValue::Null).is_err());
    }

    #[test]
    fn responses_round_trip_typed() {
        use wasabi::report::Report;
        for response in [
            Response::Uploaded {
                hash: "fnv64:1234".to_string(),
                dedup: true,
                modules: 3,
            },
            Response::Result(JobResult {
                job: 2,
                instance: None,
                hash: "fnv64:1234".to_string(),
                invoke: "main".to_string(),
                results: Ok(vec!["I32(25)".to_string()]),
                reports: vec![Report::new(
                    "instruction_mix",
                    JsonValue::object([("total", JsonValue::UInt(7))]),
                )],
                cache_hit: true,
            }),
            Response::Result(JobResult {
                job: 0,
                instance: None,
                hash: "fnv64:1234".to_string(),
                invoke: "main".to_string(),
                results: Err("trap: unreachable".to_string()),
                reports: vec![],
                cache_hit: false,
            }),
            Response::Result(JobResult {
                job: 1,
                instance: Some(4),
                hash: "fnv64:1234".to_string(),
                invoke: "main".to_string(),
                results: Ok(vec!["I32(16)".to_string()]),
                reports: vec![],
                cache_hit: true,
            }),
            Response::Done {
                jobs: 3,
                wall_ms: 12.5,
                cache_hits: 2,
                cache_misses: 1,
            },
            Response::Status(StatusReply {
                state: "accepting".to_string(),
                uploads: 2,
                dedup_hits: 1,
                modules: 1,
                cache_hits: 4,
                cache_misses: 2,
                cache_entries: 2,
                cache_evictions: 0,
                disk_cache_hits: 1,
                disk_cache_misses: 1,
                build_ms: 40.5,
                build_worker_ms: 120.25,
                jobs_done: 6,
                in_flight: 1,
                connections: 2,
                requests: 9,
                timeouts: 1,
                cancellations: 2,
                retries: 3,
                sheds: 1,
                faults_injected: 0,
            }),
            Response::Cancelled { jobs: 4 },
            Response::Draining { in_flight: 2 },
            Response::ShuttingDown,
            Response::Error {
                code: ErrorCode::QueueFull,
                message: "128 in flight".to_string(),
            },
        ] {
            let round = Response::from_json(&response.to_json()).expect("parses");
            assert_eq!(round, response);
        }
    }

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&bytes)).expect("decodes"), bytes);
        assert_eq!(hex_encode(&[0x00, 0xab]), "00ab");
        assert!(hex_decode("abc").is_err(), "odd length");
        assert!(hex_decode("zz").is_err(), "non-hex");
    }

    #[test]
    fn error_codes_round_trip() {
        for code in [
            ErrorCode::MalformedFrame,
            ErrorCode::FrameTooLarge,
            ErrorCode::UnknownRequest,
            ErrorCode::BadRequest,
            ErrorCode::UnknownModule,
            ErrorCode::InvalidModule,
            ErrorCode::QueueFull,
            ErrorCode::Draining,
        ] {
            assert_eq!(ErrorCode::from_str(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::from_str("nope"), None);
    }

    #[test]
    fn only_backpressure_codes_are_retryable() {
        assert!(ErrorCode::QueueFull.is_retryable());
        assert!(ErrorCode::Draining.is_retryable());
        for fatal in [
            ErrorCode::MalformedFrame,
            ErrorCode::FrameTooLarge,
            ErrorCode::UnknownRequest,
            ErrorCode::BadRequest,
            ErrorCode::UnknownModule,
            ErrorCode::InvalidModule,
        ] {
            assert!(!fatal.is_retryable(), "{}", fatal.as_str());
        }
    }

    #[test]
    fn governance_members_are_optional_on_the_wire() {
        // A submit without tag/deadline_ms — what every pre-existing raw
        // protocol consumer sends — still parses, with the defaults.
        let bare = JsonValue::object([
            ("type", JsonValue::from("submit")),
            (
                "jobs",
                JsonValue::array([JsonValue::object([("hash", JsonValue::from("fnv64:00"))])]),
            ),
        ]);
        let Ok(Request::Submit { jobs, tag }) = Request::from_json(&bare) else {
            panic!("bare submit must parse");
        };
        assert_eq!(tag, "");
        assert_eq!(jobs[0].deadline_ms, None);
        assert_eq!(jobs[0].sweep_args, None);

        // A job cannot carry both single-invocation args and sweep
        // inputs — which set would the daemon honor?
        let both = JsonValue::object([
            ("type", JsonValue::from("submit")),
            (
                "jobs",
                JsonValue::array([JsonValue::object([
                    ("hash", JsonValue::from("fnv64:00")),
                    ("args", JsonValue::array([JsonValue::UInt(1)])),
                    (
                        "sweep_args",
                        JsonValue::array([JsonValue::Array(vec![JsonValue::UInt(2)])]),
                    ),
                ])]),
            ),
        ]);
        assert!(matches!(
            Request::from_json(&both),
            Err(RequestError::Bad(_))
        ));

        // Cancel requires a non-empty tag (an empty one could never have
        // been attached to a submit).
        let empty = JsonValue::object([
            ("type", JsonValue::from("cancel")),
            ("tag", JsonValue::from("")),
        ]);
        assert!(matches!(
            Request::from_json(&empty),
            Err(RequestError::Bad(_))
        ));
    }
}
