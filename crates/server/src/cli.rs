//! Entry points shared by the `wasabid` / `wasabi-client` bins and the
//! `wasabi serve` / `wasabi client` subcommands — one implementation,
//! three spellings.

use wasabi::report::JsonValue;
use wasabi_analyses::registry;

use crate::client::{Client, ClientError};
use crate::daemon::{Server, ServerConfig};
use crate::protocol::JobSpec;

/// Render a client failure as the one-line message the bins print,
/// prefixed so a human (or a script) can tell *retry later* from *give
/// up*: daemon backpressure and transport drops are `retryable:`, bad
/// requests are `fatal:`.
fn render_client_error(e: &ClientError) -> String {
    if e.is_retryable() {
        format!("retryable: {e}")
    } else {
        format!("fatal: {e}")
    }
}

const SERVE_USAGE: &str = "\
usage: wasabid [--socket <path> | --tcp <addr>] [options]

Serve wasabi analysis jobs over a socket until drained.

  --socket <path>        unix-domain socket to listen on (default
                         wasabid.sock in the current directory)
  --tcp <addr>           TCP address to listen on instead (e.g.
                         127.0.0.1:7077; port 0 picks an ephemeral port,
                         printed on startup)
  --workers <n>          fleet workers per submit (default: one per core)
  --max-pending <n>      admission bound on daemon-wide in-flight jobs
                         (default 256)
  --cache-capacity <n>   bound on the shared prepared-session cache;
                         0 means unbounded (default 64)
  --disk-cache <dir>     persist prepared sessions to <dir> as a second
                         cache tier (memory -> disk -> build); entries
                         survive daemon restarts, so a fresh daemon
                         serves known modules without rebuilding
  --max-batch <n>        per-submit job cap (a connection handles one
                         submit at a time, so this is also the
                         per-connection in-flight cap; default: none)
  --shed                 when a submit would overflow --max-pending,
                         cancel the oldest in-flight batch to make room
                         instead of refusing the newcomer
  --retries <n>          retry transiently failed jobs up to n times with
                         jittered backoff (default 0)
";

const CLIENT_USAGE: &str = "\
usage: wasabi-client [--socket <path> | --tcp <addr>] <command> [options]

Talk to a running wasabid daemon.

commands:
  upload <file.wasm>     store a module content-addressed; prints its hash
  submit <file.wasm>     upload, then run jobs on it; streams one JSON
                         line per job result as the daemon finishes it
      --analyses <a,b>   analyses to run per job (default: none)
      --invoke <name>    export to invoke (default main)
      --args <v1,v2>     invocation arguments
      --sweep-args <f>   JSON file with an array of argument arrays
                         (e.g. [[1],[2],[3]]); the job runs as one
                         cohort sharing a translated module, and the
                         daemon streams one result line PER INSTANCE,
                         each tagged with its instance index (mutually
                         exclusive with --args)
      --jobs <n>         submit n identical jobs (default 1)
      --deadline-ms <n>  per-job wall-clock deadline; an expired job
                         fails with a structured error, the daemon and
                         its worker survive
      --tag <name>       tag the batch so `cancel <name>` can stop it
                         from another connection
      --retries <n>      if the daemon refuses with a retryable error
                         (queue_full, draining), retry the submit up to
                         n times with backoff (default 0)
  cancel <tag>           fire the cancel tokens of an in-flight batch
                         submitted with --tag <tag>
  status                 print the daemon's status counters as JSON
  drain                  finish in-flight work, refuse new work, exit
  shutdown               stop as soon as in-flight work completes

errors are one line on stderr, prefixed `retryable:` (daemon
backpressure -- try again later) or `fatal:` (the request can never
succeed as written); the exit status is nonzero either way.
";

/// Where to reach (or bind) the daemon.
enum Endpoint {
    Unix(String),
    Tcp(String),
}

fn take_value(
    args: &mut std::vec::IntoIter<String>,
    flag: &str,
    usage: &str,
) -> Result<String, String> {
    args.next()
        .ok_or_else(|| format!("{flag} needs a value\n\n{usage}"))
}

/// `wasabid` / `wasabi serve`: bind and serve until drained.
///
/// # Errors
///
/// A usage or transport error message for the bin to print and exit
/// non-zero with.
pub fn serve_main(args: Vec<String>) -> Result<(), String> {
    let mut endpoint = Endpoint::Unix("wasabid.sock".to_string());
    let mut config = ServerConfig::new(registry::by_name);
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => {
                endpoint = Endpoint::Unix(take_value(&mut args, "--socket", SERVE_USAGE)?)
            }
            "--tcp" => endpoint = Endpoint::Tcp(take_value(&mut args, "--tcp", SERVE_USAGE)?),
            "--workers" => {
                let value = take_value(&mut args, "--workers", SERVE_USAGE)?;
                config.workers = Some(
                    value
                        .parse()
                        .map_err(|_| format!("invalid --workers {value:?}"))?,
                );
            }
            "--max-pending" => {
                let value = take_value(&mut args, "--max-pending", SERVE_USAGE)?;
                config.max_pending = value
                    .parse()
                    .map_err(|_| format!("invalid --max-pending {value:?}"))?;
            }
            "--cache-capacity" => {
                let value = take_value(&mut args, "--cache-capacity", SERVE_USAGE)?;
                let capacity: usize = value
                    .parse()
                    .map_err(|_| format!("invalid --cache-capacity {value:?}"))?;
                config.cache_capacity = (capacity > 0).then_some(capacity);
            }
            "--disk-cache" => {
                config.disk_cache = Some(std::path::PathBuf::from(take_value(
                    &mut args,
                    "--disk-cache",
                    SERVE_USAGE,
                )?));
            }
            "--max-batch" => {
                let value = take_value(&mut args, "--max-batch", SERVE_USAGE)?;
                config.max_batch = Some(
                    value
                        .parse()
                        .map_err(|_| format!("invalid --max-batch {value:?}"))?,
                );
            }
            "--shed" => config.shed = true,
            "--retries" => {
                let value = take_value(&mut args, "--retries", SERVE_USAGE)?;
                config.retries = value
                    .parse()
                    .map_err(|_| format!("invalid --retries {value:?}"))?;
            }
            "--help" | "-h" => {
                print!("{SERVE_USAGE}");
                return Ok(());
            }
            other => return Err(format!("unknown argument {other:?}\n\n{SERVE_USAGE}")),
        }
    }

    let server = match &endpoint {
        Endpoint::Unix(path) => Server::bind_unix(path, config.clone()),
        Endpoint::Tcp(addr) => Server::bind_tcp(addr, config.clone()),
    }
    .map_err(|e| format!("cannot bind: {e}"))?;
    eprintln!(
        "wasabid: listening on {} (workers={}, max-pending={}, cache-capacity={}, disk-cache={})",
        server.addr(),
        config
            .workers
            .map_or_else(|| "auto".to_string(), |w| w.to_string()),
        config.max_pending,
        config
            .cache_capacity
            .map_or_else(|| "unbounded".to_string(), |c| c.to_string()),
        config
            .disk_cache
            .as_ref()
            .map_or_else(|| "off".to_string(), |d| d.display().to_string()),
    );
    server.serve().map_err(|e| format!("serve failed: {e}"))?;
    eprintln!("wasabid: drained, exiting");
    Ok(())
}

fn connect(endpoint: &Endpoint) -> Result<Client, String> {
    match endpoint {
        Endpoint::Unix(path) => Client::connect_unix(path),
        Endpoint::Tcp(addr) => Client::connect_tcp(addr),
    }
    .map_err(|e| format!("cannot connect: {e}"))
}

/// `wasabi-client` / `wasabi client`: one command against a daemon.
///
/// # Errors
///
/// A usage, transport, or daemon-refusal message for the bin to print
/// and exit non-zero with.
pub fn client_main(args: Vec<String>) -> Result<(), String> {
    let mut endpoint = Endpoint::Unix("wasabid.sock".to_string());
    let mut args = args.into_iter();
    let command = loop {
        match args.next() {
            Some(arg) => match arg.as_str() {
                "--socket" => {
                    endpoint = Endpoint::Unix(take_value(&mut args, "--socket", CLIENT_USAGE)?);
                }
                "--tcp" => endpoint = Endpoint::Tcp(take_value(&mut args, "--tcp", CLIENT_USAGE)?),
                "--help" | "-h" => {
                    print!("{CLIENT_USAGE}");
                    return Ok(());
                }
                command => break command.to_string(),
            },
            None => return Err(format!("no command given\n\n{CLIENT_USAGE}")),
        }
    };

    match command.as_str() {
        "upload" => {
            let path = take_value(&mut args, "upload", CLIENT_USAGE)?;
            let bytes = std::fs::read(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let mut client = connect(&endpoint)?;
            let (hash, dedup) = client.upload(&bytes).map_err(|e| e.to_string())?;
            println!(
                "{}",
                JsonValue::object([
                    ("hash", JsonValue::from(hash)),
                    ("dedup", JsonValue::from(dedup)),
                ])
            );
            Ok(())
        }
        "submit" => {
            let path = take_value(&mut args, "submit", CLIENT_USAGE)?;
            let mut analyses: Vec<String> = Vec::new();
            let mut invoke = "main".to_string();
            let mut invoke_args: Vec<JsonValue> = Vec::new();
            let mut sweep_args: Option<Vec<Vec<JsonValue>>> = None;
            let mut jobs = 1usize;
            let mut deadline_ms: Option<u64> = None;
            let mut tag = String::new();
            let mut retries = 0u32;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--analyses" => {
                        analyses = take_value(&mut args, "--analyses", CLIENT_USAGE)?
                            .split(',')
                            .filter(|s| !s.is_empty())
                            .map(str::to_string)
                            .collect();
                    }
                    "--invoke" => invoke = take_value(&mut args, "--invoke", CLIENT_USAGE)?,
                    "--args" => {
                        invoke_args = take_value(&mut args, "--args", CLIENT_USAGE)?
                            .split(',')
                            .filter(|s| !s.is_empty())
                            .map(|s| JsonValue::from(s.to_string()))
                            .collect();
                    }
                    "--sweep-args" => {
                        let path = take_value(&mut args, "--sweep-args", CLIENT_USAGE)?;
                        let text = std::fs::read_to_string(&path)
                            .map_err(|e| format!("cannot read {path}: {e}"))?;
                        let parsed = wasabi::json::parse(&text)
                            .map_err(|e| format!("cannot parse {path}: {e}"))?;
                        let rows = parsed.as_array().ok_or_else(|| {
                            format!("{path}: sweep inputs must be a JSON array of argument arrays")
                        })?;
                        sweep_args = Some(
                            rows.iter()
                                .enumerate()
                                .map(|(index, row)| {
                                    row.as_array().map(<[JsonValue]>::to_vec).ok_or_else(|| {
                                        format!("{path}: sweep entry {index} must be an array")
                                    })
                                })
                                .collect::<Result<Vec<_>, _>>()?,
                        );
                    }
                    "--jobs" => {
                        let value = take_value(&mut args, "--jobs", CLIENT_USAGE)?;
                        jobs = value
                            .parse()
                            .map_err(|_| format!("invalid --jobs {value:?}"))?;
                    }
                    "--deadline-ms" => {
                        let value = take_value(&mut args, "--deadline-ms", CLIENT_USAGE)?;
                        deadline_ms = Some(
                            value
                                .parse()
                                .map_err(|_| format!("invalid --deadline-ms {value:?}"))?,
                        );
                    }
                    "--tag" => tag = take_value(&mut args, "--tag", CLIENT_USAGE)?,
                    "--retries" => {
                        let value = take_value(&mut args, "--retries", CLIENT_USAGE)?;
                        retries = value
                            .parse()
                            .map_err(|_| format!("invalid --retries {value:?}"))?;
                    }
                    other => return Err(format!("unknown argument {other:?}\n\n{CLIENT_USAGE}")),
                }
            }
            if sweep_args.is_some() && !invoke_args.is_empty() {
                return Err(format!(
                    "--sweep-args and --args are mutually exclusive\n\n{CLIENT_USAGE}"
                ));
            }
            let bytes = std::fs::read(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let mut client = connect(&endpoint)?;
            let (hash, _) = client.upload(&bytes).map_err(|e| render_client_error(&e))?;
            let specs: Vec<JobSpec> = (0..jobs)
                .map(|_| JobSpec {
                    hash: hash.clone(),
                    analyses: analyses.clone(),
                    invoke: invoke.clone(),
                    args: invoke_args.clone(),
                    sweep_args: sweep_args.clone(),
                    deadline_ms,
                })
                .collect();
            let mut failures = 0usize;
            let mut attempt = 0u32;
            // A refused submit with budget left (queue_full, draining)
            // retries with backoff; anything else — including per-job
            // failures — streams through once.
            let done = loop {
                let mut stream = client
                    .submit_tagged(specs.clone(), &tag)
                    .map_err(|e| render_client_error(&e))?;
                let first = stream.next();
                if let Some(Err(e)) = &first {
                    if e.is_retryable() && attempt < retries {
                        attempt += 1;
                        eprintln!("retryable: {e}; retrying submit ({attempt}/{retries})");
                        drop(stream);
                        std::thread::sleep(std::time::Duration::from_millis(
                            50u64 << attempt.min(5),
                        ));
                        continue;
                    }
                }
                for result in first.into_iter().chain(&mut stream) {
                    let result = result.map_err(|e| render_client_error(&e))?;
                    match &result.results {
                        Ok(values) => {
                            // Same line shape as `wasabi --batch`, so outputs
                            // are directly comparable job-for-job. Sweep
                            // frames additionally carry the instance index.
                            let mut pairs = vec![("job", JsonValue::from(result.job))];
                            if let Some(instance) = result.instance {
                                pairs.push(("instance", JsonValue::from(u64::from(instance))));
                            }
                            pairs.extend([
                                ("module", JsonValue::from(result.hash.clone())),
                                ("invoke", JsonValue::from(result.invoke.clone())),
                                (
                                    "results",
                                    JsonValue::array(
                                        values.iter().map(|v| JsonValue::from(v.clone())),
                                    ),
                                ),
                                (
                                    "reports",
                                    JsonValue::array(result.reports.iter().map(|r| {
                                        JsonValue::object([
                                            ("analysis", JsonValue::from(r.analysis.clone())),
                                            ("data", r.data.clone()),
                                        ])
                                    })),
                                ),
                                ("cache_hit", JsonValue::from(result.cache_hit)),
                            ]);
                            let line = JsonValue::object(pairs);
                            println!("{line}");
                        }
                        Err(error) => {
                            failures += 1;
                            let instance = result
                                .instance
                                .map_or_else(String::new, |i| format!(" instance {i}"));
                            eprintln!(
                                "job {}{instance} ({}): FAILED: {error}",
                                result.job, result.hash
                            );
                        }
                    }
                }
                break stream.done();
            };
            let done = done.ok_or_else(|| "stream ended without a done frame".to_string())?;
            eprintln!(
                "client: {} job(s) in {:.1} ms ({} cache hit(s), {} miss(es), {} failure(s))",
                done.jobs, done.wall_ms, done.cache_hits, done.cache_misses, failures,
            );
            if failures > 0 {
                return Err(format!("{failures} job(s) failed"));
            }
            Ok(())
        }
        "cancel" => {
            let tag = take_value(&mut args, "cancel", CLIENT_USAGE)?;
            let mut client = connect(&endpoint)?;
            let jobs = client.cancel(&tag).map_err(|e| render_client_error(&e))?;
            eprintln!("cancelled {jobs} job(s) tagged {tag:?}");
            Ok(())
        }
        "status" => {
            let mut client = connect(&endpoint)?;
            let status = client.status().map_err(|e| render_client_error(&e))?;
            println!("{}", crate::protocol::Response::Status(status).to_json());
            Ok(())
        }
        "drain" => {
            let mut client = connect(&endpoint)?;
            let in_flight = client.drain().map_err(|e| render_client_error(&e))?;
            eprintln!("draining ({in_flight} job(s) in flight)");
            Ok(())
        }
        "shutdown" => {
            let mut client = connect(&endpoint)?;
            client.shutdown().map_err(|e| render_client_error(&e))?;
            eprintln!("shutting down");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{CLIENT_USAGE}")),
    }
}
