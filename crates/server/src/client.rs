//! Client side of the `wasabid` protocol.
//!
//! [`Client`] wraps one connection and exposes the request/response
//! cycle typed: upload bytes, submit jobs and **iterate streamed results
//! as the daemon finishes them**, query status, drain, shut down. The
//! `wasabi-client` bin and the `wasabi client` subcommand are thin
//! wrappers over this; integration tests drive it directly.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;

use crate::protocol::{read_frame, write_frame, FrameError, JobResult, JobSpec, Request, Response};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Frame(FrameError),
    /// A frame arrived but was not the expected response shape.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::Protocol(message) => f.write_str(message),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Frame(FrameError::Io(e))
    }
}

enum Conn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// One connection to a `wasabid` daemon.
pub struct Client {
    conn: Conn,
}

impl Client {
    /// Connect over a unix-domain socket.
    ///
    /// # Errors
    ///
    /// Transport errors from connecting.
    pub fn connect_unix(path: impl AsRef<Path>) -> std::io::Result<Client> {
        Ok(Client {
            conn: Conn::Unix(UnixStream::connect(path)?),
        })
    }

    /// Connect over TCP.
    ///
    /// # Errors
    ///
    /// Transport errors from connecting.
    pub fn connect_tcp(addr: &str) -> std::io::Result<Client> {
        Ok(Client {
            conn: Conn::Tcp(TcpStream::connect(addr)?),
        })
    }

    /// Send one request frame and read one response frame.
    ///
    /// # Errors
    ///
    /// Transport/framing failures, or an unparseable response.
    pub fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.conn, &request.to_json())?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        let value = read_frame(&mut self.conn)?;
        Response::from_json(&value).map_err(ClientError::Protocol)
    }

    /// Upload a module's bytes, content-addressed.
    ///
    /// # Errors
    ///
    /// Transport failures; a daemon-side `error` response (e.g. invalid
    /// module) surfaces as [`ClientError::Protocol`].
    pub fn upload(&mut self, bytes: &[u8]) -> Result<(String, bool), ClientError> {
        match self.roundtrip(&Request::Upload {
            bytes: bytes.to_vec(),
        })? {
            Response::Uploaded { hash, dedup, .. } => Ok((hash, dedup)),
            Response::Error { code, message } => Err(ClientError::Protocol(format!(
                "upload refused ({}): {message}",
                code.as_str()
            ))),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to upload: {other:?}"
            ))),
        }
    }

    /// Submit jobs and return the stream of per-job results. The daemon
    /// writes a `result` frame as each job finishes; iterate to observe
    /// them in completion order, then read the batch summary from
    /// [`ResultStream::done`].
    ///
    /// # Errors
    ///
    /// Transport failures writing the request; an `error` response (queue
    /// full, unknown module, draining, ...) surfaces from the stream's
    /// first `next()`.
    pub fn submit(&mut self, jobs: Vec<JobSpec>) -> Result<ResultStream<'_>, ClientError> {
        write_frame(&mut self.conn, &Request::Submit { jobs }.to_json())?;
        Ok(ResultStream {
            client: self,
            done: None,
            failed: false,
        })
    }

    /// Ask for the daemon's status counters.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response shape.
    pub fn status(&mut self) -> Result<crate::protocol::StatusReply, ClientError> {
        match self.roundtrip(&Request::Status)? {
            Response::Status(status) => Ok(status),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to status: {other:?}"
            ))),
        }
    }

    /// Ask the daemon to drain: finish in-flight work, refuse new work,
    /// exit. Returns the in-flight count at the moment of the request.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response shape.
    pub fn drain(&mut self) -> Result<u64, ClientError> {
        match self.roundtrip(&Request::Drain)? {
            Response::Draining { in_flight } => Ok(in_flight),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to drain: {other:?}"
            ))),
        }
    }

    /// Ask the daemon to shut down.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response shape.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to shutdown: {other:?}"
            ))),
        }
    }
}

/// The streamed results of one `submit`: yields a [`JobResult`] per
/// finished job in **completion order**, ends at the daemon's `done`
/// frame (available afterwards via [`ResultStream::done`]).
pub struct ResultStream<'a> {
    client: &'a mut Client,
    done: Option<DoneSummary>,
    failed: bool,
}

/// The `done` frame's batch summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DoneSummary {
    /// Jobs in the batch.
    pub jobs: u64,
    /// Batch wall time in milliseconds.
    pub wall_ms: f64,
    /// Jobs served from the warm session cache.
    pub cache_hits: u64,
    /// Jobs that built a session.
    pub cache_misses: u64,
}

impl ResultStream<'_> {
    /// The batch summary — `Some` once the stream has been iterated to
    /// its end without error.
    pub fn done(&self) -> Option<DoneSummary> {
        self.done
    }
}

impl Iterator for ResultStream<'_> {
    type Item = Result<JobResult, ClientError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done.is_some() || self.failed {
            return None;
        }
        let response = match self.client.read_response() {
            Ok(response) => response,
            Err(e) => {
                self.failed = true;
                return Some(Err(e));
            }
        };
        match response {
            Response::Result(result) => Some(Ok(result)),
            Response::Done {
                jobs,
                wall_ms,
                cache_hits,
                cache_misses,
            } => {
                self.done = Some(DoneSummary {
                    jobs,
                    wall_ms,
                    cache_hits,
                    cache_misses,
                });
                None
            }
            Response::Error { code, message } => {
                self.failed = true;
                Some(Err(ClientError::Protocol(format!(
                    "submit refused ({}): {message}",
                    code.as_str()
                ))))
            }
            other => {
                self.failed = true;
                Some(Err(ClientError::Protocol(format!(
                    "unexpected response in result stream: {other:?}"
                ))))
            }
        }
    }
}
