//! Client side of the `wasabid` protocol.
//!
//! [`Client`] wraps one connection and exposes the request/response
//! cycle typed: upload bytes, submit jobs and **iterate streamed results
//! as the daemon finishes them**, cancel a tagged batch, query status,
//! drain, shut down. The `wasabi-client` bin and the `wasabi client`
//! subcommand are thin wrappers over this; integration tests drive it
//! directly.
//!
//! The client remembers its endpoint, so a daemon restart is survivable:
//! [`Client::reconnect_with_backoff`] re-dials with capped exponential
//! backoff (each successful re-dial bumps
//! [`wasabi::stats::client_reconnects`]). Daemon refusals surface as
//! [`ClientError::Daemon`] with the machine-readable [`ErrorCode`], so
//! callers can distinguish *retry later* (`queue_full`, `draining`) from
//! *fatal* (everything else) without string matching.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameError, JobResult, JobSpec, Request, Response,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Frame(FrameError),
    /// A frame arrived but was not the expected response shape.
    Protocol(String),
    /// The daemon refused the request with a structured `error` frame.
    Daemon {
        /// Machine-readable class; `code.is_retryable()` separates
        /// backpressure from permanent failures.
        code: ErrorCode,
        /// Human-readable detail from the daemon.
        message: String,
    },
}

impl ClientError {
    /// Whether retrying the same request later can succeed: daemon
    /// backpressure (`queue_full`/`draining`) and transport drops are
    /// retryable, malformed requests are not.
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Daemon { code, .. } => code.is_retryable(),
            ClientError::Frame(_) => true,
            ClientError::Protocol(_) => false,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::Protocol(message) => f.write_str(message),
            ClientError::Daemon { code, message } => {
                write!(f, "daemon refused ({}): {message}", code.as_str())
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Frame(FrameError::Io(e))
    }
}

enum Conn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// The remembered dial target, for reconnects after a daemon restart.
#[derive(Clone)]
enum Endpoint {
    Unix(PathBuf),
    Tcp(String),
}

impl Endpoint {
    fn dial(&self) -> std::io::Result<Conn> {
        match self {
            Endpoint::Unix(path) => UnixStream::connect(path).map(Conn::Unix),
            Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str()).map(Conn::Tcp),
        }
    }
}

/// One connection to a `wasabid` daemon.
pub struct Client {
    conn: Conn,
    endpoint: Endpoint,
}

impl Client {
    /// Connect over a unix-domain socket.
    ///
    /// # Errors
    ///
    /// Transport errors from connecting.
    pub fn connect_unix(path: impl AsRef<Path>) -> std::io::Result<Client> {
        let endpoint = Endpoint::Unix(path.as_ref().to_path_buf());
        Ok(Client {
            conn: endpoint.dial()?,
            endpoint,
        })
    }

    /// Connect over TCP.
    ///
    /// # Errors
    ///
    /// Transport errors from connecting.
    pub fn connect_tcp(addr: &str) -> std::io::Result<Client> {
        let endpoint = Endpoint::Tcp(addr.to_string());
        Ok(Client {
            conn: endpoint.dial()?,
            endpoint,
        })
    }

    /// Re-dial the remembered endpoint once, replacing the connection.
    /// Records a [`wasabi::stats::client_reconnects`] tick on success.
    ///
    /// # Errors
    ///
    /// Transport errors from connecting (e.g. the daemon is not back yet).
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        self.conn = self.endpoint.dial()?;
        wasabi::stats::record_client_reconnect();
        Ok(())
    }

    /// Re-dial the remembered endpoint with capped exponential backoff:
    /// up to `attempts` tries, sleeping 10 ms, 20 ms, ... capped at
    /// 500 ms between them. Use after a transport error to survive a
    /// daemon restart.
    ///
    /// # Errors
    ///
    /// The last connect error if every attempt fails.
    pub fn reconnect_with_backoff(&mut self, attempts: u32) -> std::io::Result<()> {
        let mut delay = Duration::from_millis(10);
        let mut last = None;
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(500));
            }
            match self.reconnect() {
                Ok(()) => return Ok(()),
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("at least one attempt"))
    }

    /// Send one request frame and read one response frame.
    ///
    /// # Errors
    ///
    /// Transport/framing failures, or an unparseable response.
    pub fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.conn, &request.to_json())?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        let value = read_frame(&mut self.conn)?;
        Response::from_json(&value).map_err(ClientError::Protocol)
    }

    /// Upload a module's bytes, content-addressed.
    ///
    /// # Errors
    ///
    /// Transport failures; a daemon-side `error` response (e.g. invalid
    /// module) surfaces as [`ClientError::Protocol`].
    pub fn upload(&mut self, bytes: &[u8]) -> Result<(String, bool), ClientError> {
        match self.roundtrip(&Request::Upload {
            bytes: bytes.to_vec(),
        })? {
            Response::Uploaded { hash, dedup, .. } => Ok((hash, dedup)),
            Response::Error { code, message } => Err(ClientError::Daemon { code, message }),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to upload: {other:?}"
            ))),
        }
    }

    /// Submit jobs and return the stream of per-job results. The daemon
    /// writes a `result` frame as each job finishes; iterate to observe
    /// them in completion order, then read the batch summary from
    /// [`ResultStream::done`].
    ///
    /// # Errors
    ///
    /// Transport failures writing the request; an `error` response (queue
    /// full, unknown module, draining, ...) surfaces from the stream's
    /// first `next()`.
    pub fn submit(&mut self, jobs: Vec<JobSpec>) -> Result<ResultStream<'_>, ClientError> {
        self.submit_tagged(jobs, "")
    }

    /// Like [`Client::submit`], with a client-chosen batch tag: while the
    /// batch is in flight, any connection can `cancel` that tag and every
    /// job's cancel token fires.
    ///
    /// # Errors
    ///
    /// See [`Client::submit`].
    pub fn submit_tagged(
        &mut self,
        jobs: Vec<JobSpec>,
        tag: &str,
    ) -> Result<ResultStream<'_>, ClientError> {
        write_frame(
            &mut self.conn,
            &Request::Submit {
                jobs,
                tag: tag.to_string(),
            }
            .to_json(),
        )?;
        Ok(ResultStream {
            client: self,
            done: None,
            failed: false,
        })
    }

    /// Fire the cancel tokens of every in-flight batch tagged `tag`.
    /// Returns how many jobs had their token fired (0: nothing in flight
    /// under that tag — cancellation of finished work is a no-op).
    ///
    /// # Errors
    ///
    /// Transport failures, a daemon refusal, or an unexpected response.
    pub fn cancel(&mut self, tag: &str) -> Result<u64, ClientError> {
        match self.roundtrip(&Request::Cancel {
            tag: tag.to_string(),
        })? {
            Response::Cancelled { jobs } => Ok(jobs),
            Response::Error { code, message } => Err(ClientError::Daemon { code, message }),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to cancel: {other:?}"
            ))),
        }
    }

    /// Ask for the daemon's status counters.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response shape.
    pub fn status(&mut self) -> Result<crate::protocol::StatusReply, ClientError> {
        match self.roundtrip(&Request::Status)? {
            Response::Status(status) => Ok(status),
            Response::Error { code, message } => Err(ClientError::Daemon { code, message }),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to status: {other:?}"
            ))),
        }
    }

    /// Ask the daemon to drain: finish in-flight work, refuse new work,
    /// exit. Returns the in-flight count at the moment of the request.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response shape.
    pub fn drain(&mut self) -> Result<u64, ClientError> {
        match self.roundtrip(&Request::Drain)? {
            Response::Draining { in_flight } => Ok(in_flight),
            Response::Error { code, message } => Err(ClientError::Daemon { code, message }),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to drain: {other:?}"
            ))),
        }
    }

    /// Ask the daemon to shut down.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected response shape.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            Response::Error { code, message } => Err(ClientError::Daemon { code, message }),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to shutdown: {other:?}"
            ))),
        }
    }
}

/// The streamed results of one `submit`: yields a [`JobResult`] per
/// finished job in **completion order**, ends at the daemon's `done`
/// frame (available afterwards via [`ResultStream::done`]).
pub struct ResultStream<'a> {
    client: &'a mut Client,
    done: Option<DoneSummary>,
    failed: bool,
}

/// The `done` frame's batch summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DoneSummary {
    /// Jobs in the batch.
    pub jobs: u64,
    /// Batch wall time in milliseconds.
    pub wall_ms: f64,
    /// Jobs served from the warm session cache.
    pub cache_hits: u64,
    /// Jobs that built a session.
    pub cache_misses: u64,
}

impl ResultStream<'_> {
    /// The batch summary — `Some` once the stream has been iterated to
    /// its end without error.
    pub fn done(&self) -> Option<DoneSummary> {
        self.done
    }
}

impl Iterator for ResultStream<'_> {
    type Item = Result<JobResult, ClientError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done.is_some() || self.failed {
            return None;
        }
        let response = match self.client.read_response() {
            Ok(response) => response,
            Err(e) => {
                self.failed = true;
                return Some(Err(e));
            }
        };
        match response {
            Response::Result(result) => Some(Ok(result)),
            Response::Done {
                jobs,
                wall_ms,
                cache_hits,
                cache_misses,
            } => {
                self.done = Some(DoneSummary {
                    jobs,
                    wall_ms,
                    cache_hits,
                    cache_misses,
                });
                None
            }
            Response::Error { code, message } => {
                self.failed = true;
                Some(Err(ClientError::Daemon { code, message }))
            }
            other => {
                self.failed = true;
                Some(Err(ClientError::Protocol(format!(
                    "unexpected response in result stream: {other:?}"
                ))))
            }
        }
    }
}
