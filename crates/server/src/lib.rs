//! # wasabi-server — the persistent analysis service
//!
//! Everything before this crate was **one-shot**: the CLI decoded,
//! instrumented, translated, and executed per invocation, paying the
//! build cost every time even though the paper's whole point (§3) is
//! that instrumentation is ahead-of-time and reusable. This crate keeps
//! that work *alive*: the [`daemon::Server`] (shipped as the `wasabid`
//! bin) owns a content-addressed [`store::ContentStore`] of uploaded
//! modules and a bounded, process-wide [`wasabi::ModuleCache`] of
//! prepared sessions, and serves analysis jobs to any number of clients
//! over a unix-domain or TCP socket. The *second* client to analyze a
//! module pays neither the upload (content dedup) nor the
//! instrument+translate build (warm cache) — only execution.
//!
//! The wire format is deliberately minimal ([`protocol`]): 4-byte
//! big-endian length-prefixed JSON frames, written by the canonical
//! [`wasabi::json::emit`] serializer and read by the strict,
//! depth-limited [`wasabi::json::parse`] parser, so the daemon's input
//! handling is as hostile-input-proof as the JSON oracle tests make the
//! parser. Per-job results **stream** as the fleet finishes them
//! ([`wasabi::Fleet::run_streaming`]); admission control bounds the
//! daemon-wide in-flight job count and refuses the excess with a
//! structured `queue_full` error instead of queueing unboundedly.
//!
//! | module | role |
//! |---|---|
//! | [`protocol`] | frames, requests, responses, error codes |
//! | [`store`] | content-addressed module store (upload dedup) |
//! | [`daemon`] | accept loop, lifecycle, admission, streaming submit |
//! | [`client`] | typed client: upload / submit+stream / status / drain |
//! | [`cli`] | `wasabid` + `wasabi-client` entry points |

pub mod cli;
pub mod client;
pub mod daemon;
pub mod protocol;
pub mod store;

pub use client::{Client, ClientError, DoneSummary, ResultStream};
pub use daemon::{Lifecycle, Server, ServerConfig};
pub use protocol::{
    read_frame, write_frame, ErrorCode, FrameError, FrameReader, JobResult, JobSpec, Request,
    Response, StatusReply, MAX_FRAME,
};
pub use store::{ContentStore, UploadReceipt};
