//! The `wasabid` daemon: a persistent analysis service.
//!
//! One daemon process owns what the one-shot CLI rebuilds on every run:
//! a [`ContentStore`] of uploaded modules and a **bounded, process-wide**
//! [`wasabi::ModuleCache`] of prepared (instrumented + translated)
//! sessions. Clients connect over a unix-domain or TCP socket, speak the
//! length-prefixed frame protocol of [`crate::protocol`], and submit
//! analysis jobs that execute on a work-stealing [`wasabi::Fleet`] —
//! results **stream back per job as each finishes**, so a client sees
//! its first result while later jobs are still running.
//!
//! # Lifecycle
//!
//! ```text
//! accepting ──drain──▶ draining ──in-flight hits 0──▶ stopped
//!     │                                                  ▲
//!     └───────────────── shutdown ──────────────────────-┘
//! ```
//!
//! *Accepting* serves everything. *Draining* refuses `upload`/`submit`
//! with a structured `draining` error but still answers `status`, lets
//! in-flight jobs finish streaming, then stops. `shutdown` jumps straight
//! to *stopped*: idle connections close at their next read tick, and
//! [`Server::serve`] still waits for any in-flight jobs before returning
//! (worker threads cannot be cancelled, only joined).
//!
//! # Admission control
//!
//! A `submit` is admitted only if it keeps the daemon-wide in-flight job
//! count within [`ServerConfig::max_pending`]; otherwise the *whole*
//! request is refused with `queue_full` and nothing runs — the client
//! retries after draining results. Backpressure is therefore visible at
//! the protocol level instead of an unbounded internal queue.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use wasabi::fleet::{AnalysisFactory, Fleet};
use wasabi::report::JsonValue;
use wasabi::{stats, CancelToken, DiskCache, Job, ModuleCache};
use wasabi_wasm::instr::Val;

use crate::protocol::{
    export_params, typed_args, write_frame, ErrorCode, FrameError, FrameReader, JobResult, Request,
    RequestError, Response, StatusReply,
};
use crate::store::ContentStore;

/// How the daemon is built: worker count, admission bound, cache bound,
/// and the analysis registry its fleets construct from.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Fleet workers per `submit` (`None`: the fleet's own default, one
    /// per available core).
    pub workers: Option<usize>,
    /// Admission bound: the daemon-wide in-flight job count a `submit`
    /// may not push past (requests that would are refused `queue_full`).
    pub max_pending: u64,
    /// Capacity of the shared prepared-session cache (`None`: unbounded).
    pub cache_capacity: Option<usize>,
    /// Directory for the on-disk prepared-session cache tier (`None`:
    /// memory only). Entries persist across daemon restarts, so a fresh
    /// daemon serves known modules without rebuilding them.
    pub disk_cache: Option<PathBuf>,
    /// Per-submit batch size cap (`None`: only `max_pending` bounds a
    /// submit). Because a connection handles one submit at a time, this
    /// is also the per-connection in-flight cap.
    pub max_batch: Option<u64>,
    /// Load-shedding: when a submit would overflow `max_pending`, cancel
    /// the **oldest** in-flight batch to make room instead of refusing
    /// the newcomer outright (default off: refuse with `queue_full`).
    pub shed: bool,
    /// Transient-failure retries per job (jittered backoff, fleet-side).
    pub retries: u32,
    /// Constructs analyses by registry name for every job.
    pub factory: AnalysisFactory,
}

impl ServerConfig {
    /// Defaults (fleet-default workers, 256 pending jobs, 64 cached
    /// sessions) around the given analysis factory.
    pub fn new(factory: AnalysisFactory) -> Self {
        ServerConfig {
            workers: None,
            max_pending: 256,
            cache_capacity: Some(64),
            disk_cache: None,
            max_batch: None,
            shed: false,
            retries: 0,
            factory,
        }
    }
}

/// The daemon's lifecycle state (see the module docs for the diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lifecycle {
    /// Serving all requests.
    Accepting,
    /// Refusing new work, finishing in-flight jobs.
    Draining,
    /// Exiting; connections close at their next tick.
    Stopped,
}

impl Lifecycle {
    /// The wire name used in `status` responses.
    pub fn as_str(self) -> &'static str {
        match self {
            Lifecycle::Accepting => "accepting",
            Lifecycle::Draining => "draining",
            Lifecycle::Stopped => "stopped",
        }
    }

    fn from_u8(v: u8) -> Lifecycle {
        match v {
            0 => Lifecycle::Accepting,
            1 => Lifecycle::Draining,
            _ => Lifecycle::Stopped,
        }
    }
}

/// One in-flight tagged batch: its cancel tokens, registered for the
/// duration of its fleet run so `cancel` requests and load-shedding can
/// fire them from other connections.
struct BatchEntry {
    id: u64,
    tag: String,
    tokens: Vec<CancelToken>,
}

/// State shared by the accept loop and every connection handler.
struct Shared {
    config: ServerConfig,
    store: ContentStore,
    cache: Arc<ModuleCache>,
    lifecycle: AtomicU8,
    in_flight: AtomicU64,
    jobs_done: AtomicU64,
    connections: AtomicU64,
    requests: AtomicU64,
    /// In-flight batches in registration order (oldest first — the shed
    /// victim order).
    batches: Mutex<Vec<BatchEntry>>,
    /// Monotonic id handed to each registered batch so deregistration
    /// removes exactly its own entry.
    batch_seq: AtomicU64,
}

impl Shared {
    fn lifecycle(&self) -> Lifecycle {
        Lifecycle::from_u8(self.lifecycle.load(Ordering::SeqCst))
    }

    fn set_lifecycle(&self, state: Lifecycle) {
        self.lifecycle.store(state as u8, Ordering::SeqCst);
    }

    fn register_batch(&self, tag: &str, tokens: Vec<CancelToken>) -> u64 {
        let id = self.batch_seq.fetch_add(1, Ordering::Relaxed);
        self.batches
            .lock()
            .expect("batch registry")
            .push(BatchEntry {
                id,
                tag: tag.to_string(),
                tokens,
            });
        id
    }

    fn deregister_batch(&self, id: u64) {
        self.batches
            .lock()
            .expect("batch registry")
            .retain(|entry| entry.id != id);
    }

    /// Fire the cancel tokens of every in-flight batch tagged `tag`.
    /// Returns the number of jobs whose token was fired.
    fn cancel_tag(&self, tag: &str) -> u64 {
        let batches = self.batches.lock().expect("batch registry");
        let mut fired = 0u64;
        for entry in batches.iter().filter(|entry| entry.tag == tag) {
            for token in &entry.tokens {
                token.cancel();
                fired += 1;
            }
        }
        fired
    }

    /// Load-shedding victim selection: fire the tokens of the oldest
    /// in-flight batch. Returns `false` when nothing is sheddable.
    fn shed_oldest(&self) -> bool {
        let batches = self.batches.lock().expect("batch registry");
        match batches.first() {
            Some(oldest) => {
                for token in &oldest.tokens {
                    token.cancel();
                }
                true
            }
            None => false,
        }
    }

    fn status(&self) -> StatusReply {
        StatusReply {
            state: self.lifecycle().as_str().to_string(),
            uploads: self.store.uploads(),
            dedup_hits: self.store.dedup_hits(),
            modules: self.store.len() as u64,
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_entries: self.cache.len() as u64,
            cache_evictions: self.cache.evictions(),
            disk_cache_hits: self.cache.disk_hits(),
            disk_cache_misses: self.cache.disk_misses(),
            build_ms: stats::fused_build_time().as_secs_f64() * 1e3,
            build_worker_ms: stats::build_worker_time().as_secs_f64() * 1e3,
            jobs_done: self.jobs_done.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            timeouts: stats::job_timeouts(),
            cancellations: stats::job_cancellations(),
            retries: stats::job_retries(),
            sheds: stats::server_sheds(),
            faults_injected: stats::faults_injected(),
        }
    }
}

/// An accepted client connection (unix-domain or TCP), unified so the
/// handler is transport-agnostic.
enum Conn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Conn {
    fn configure(&self) -> io::Result<()> {
        // Blocking reads with a short timeout: the resumable FrameReader
        // turns each timeout into an idle tick where the handler checks
        // the daemon lifecycle.
        let timeout = Some(Duration::from_millis(50));
        match self {
            Conn::Unix(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(timeout)
            }
            Conn::Tcp(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(timeout)
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
        }
    }
}

/// A bound, not-yet-serving daemon. [`Server::serve`] runs the accept
/// loop until a `drain`/`shutdown` request completes the lifecycle.
pub struct Server {
    listener: Listener,
    shared: Arc<Shared>,
    socket_path: Option<PathBuf>,
    addr: String,
}

impl Server {
    /// Bind a unix-domain socket at `path` (a stale socket file from a
    /// previous run is removed first).
    ///
    /// # Errors
    ///
    /// Transport errors from binding.
    pub fn bind_unix(path: impl AsRef<Path>, config: ServerConfig) -> io::Result<Server> {
        let path = path.as_ref();
        match std::fs::remove_file(path) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener: Listener::Unix(listener),
            shared: Server::shared(config),
            socket_path: Some(path.to_path_buf()),
            addr: path.display().to_string(),
        })
    }

    /// Bind a TCP socket at `addr` (e.g. `127.0.0.1:0` for an ephemeral
    /// port — read the chosen one back with [`Server::addr`]).
    ///
    /// # Errors
    ///
    /// Transport errors from binding.
    pub fn bind_tcp(addr: &str, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?.to_string();
        Ok(Server {
            listener: Listener::Tcp(listener),
            shared: Server::shared(config),
            socket_path: None,
            addr,
        })
    }

    fn shared(config: ServerConfig) -> Arc<Shared> {
        let mut cache = match config.cache_capacity {
            Some(capacity) => ModuleCache::bounded(capacity),
            None => ModuleCache::new(),
        };
        if let Some(dir) = &config.disk_cache {
            // A broken disk tier degrades the daemon, it never stops it:
            // fall back to memory-only and say so.
            match DiskCache::new(dir) {
                Ok(disk) => cache = cache.with_disk(disk),
                Err(e) => eprintln!(
                    "wasabid: cannot open disk cache {}: {e} (continuing memory-only)",
                    dir.display()
                ),
            }
        }
        Arc::new(Shared {
            config,
            store: ContentStore::new(),
            cache: Arc::new(cache),
            lifecycle: AtomicU8::new(Lifecycle::Accepting as u8),
            in_flight: AtomicU64::new(0),
            jobs_done: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            batches: Mutex::new(Vec::new()),
            batch_seq: AtomicU64::new(0),
        })
    }

    /// The bound address: the socket path, or `host:port` with the real
    /// port for TCP binds to port 0.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Run the daemon: accept connections and serve them on handler
    /// threads until a `drain` or `shutdown` request moves the lifecycle
    /// past accepting, then finish in-flight jobs, close connections, and
    /// return. The unix socket file is removed on the way out.
    ///
    /// # Errors
    ///
    /// Fatal accept-loop transport errors (per-connection errors only end
    /// that connection).
    pub fn serve(self) -> io::Result<()> {
        let mut handlers = Vec::new();
        while self.shared.lifecycle() == Lifecycle::Accepting {
            match self.listener.accept() {
                Ok(conn) => {
                    let shared = Arc::clone(&self.shared);
                    handlers.push(thread::spawn(move || handle_connection(&shared, conn)));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Draining (or already stopped): no new connections. Wait for
        // in-flight jobs to finish streaming, then tell handlers to close.
        while self.shared.in_flight.load(Ordering::SeqCst) > 0 {
            thread::sleep(Duration::from_millis(5));
        }
        self.shared.set_lifecycle(Lifecycle::Stopped);
        for handler in handlers {
            let _ = handler.join();
        }
        if let Some(path) = &self.socket_path {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

/// Serve one connection until the peer closes, a transport error, or the
/// daemon stops.
fn handle_connection(shared: &Shared, mut conn: Conn) {
    if conn.configure().is_err() {
        return;
    }
    shared.connections.fetch_add(1, Ordering::Relaxed);
    stats::record_server_connection();

    let mut frames = FrameReader::new();
    loop {
        match frames.poll(&mut conn) {
            Ok(None) => {
                if shared.lifecycle() == Lifecycle::Stopped {
                    break;
                }
            }
            Ok(Some(value)) => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                stats::record_server_request();
                if dispatch(shared, &mut conn, &value).is_err() {
                    break;
                }
            }
            // A malformed payload gets a structured error and the
            // connection lives on: the framing layer is still aligned.
            Err(FrameError::Malformed(message)) => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                stats::record_server_request();
                if respond_error(&mut conn, ErrorCode::MalformedFrame, &message).is_err() {
                    break;
                }
            }
            // An oversized prefix cannot be skipped without trusting the
            // lie; answer, then close.
            Err(FrameError::TooLarge(len)) => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                stats::record_server_request();
                let _ = respond_error(
                    &mut conn,
                    ErrorCode::FrameTooLarge,
                    &format!("frame of {len} bytes exceeds the cap"),
                );
                break;
            }
            Err(FrameError::Closed | FrameError::Truncated | FrameError::Io(_)) => break,
        }
    }
}

fn respond(conn: &mut Conn, response: &Response) -> io::Result<()> {
    write_frame(conn, &response.to_json())
}

fn respond_error(conn: &mut Conn, code: ErrorCode, message: &str) -> io::Result<()> {
    respond(
        conn,
        &Response::Error {
            code,
            message: message.to_string(),
        },
    )
}

fn dispatch(shared: &Shared, conn: &mut Conn, value: &JsonValue) -> io::Result<()> {
    let request = match Request::from_json(value) {
        Ok(request) => request,
        Err(RequestError::Unknown(kind)) => {
            return respond_error(
                conn,
                ErrorCode::UnknownRequest,
                &format!("unknown request type {kind:?}"),
            );
        }
        Err(RequestError::Bad(message)) => {
            return respond_error(conn, ErrorCode::BadRequest, &message);
        }
    };

    match request {
        Request::Upload { bytes } => {
            if shared.lifecycle() != Lifecycle::Accepting {
                return respond_error(conn, ErrorCode::Draining, "daemon is draining");
            }
            match shared.store.insert(&bytes) {
                Ok(receipt) => respond(
                    conn,
                    &Response::Uploaded {
                        hash: receipt.hash,
                        dedup: receipt.dedup,
                        modules: shared.store.len() as u64,
                    },
                ),
                Err(e) => respond_error(conn, ErrorCode::InvalidModule, &e.to_string()),
            }
        }
        Request::Submit { jobs, tag } => handle_submit(shared, conn, &jobs, &tag),
        // Cancellation works in every lifecycle state: it only helps a
        // draining daemon reach idle faster.
        Request::Cancel { tag } => {
            let jobs = shared.cancel_tag(&tag);
            respond(conn, &Response::Cancelled { jobs })
        }
        Request::Status => respond(conn, &Response::Status(shared.status())),
        Request::Drain => {
            // Idempotent; never moves the lifecycle backwards.
            if shared.lifecycle() == Lifecycle::Accepting {
                shared.set_lifecycle(Lifecycle::Draining);
            }
            respond(
                conn,
                &Response::Draining {
                    in_flight: shared.in_flight.load(Ordering::SeqCst),
                },
            )
        }
        Request::Shutdown => {
            let result = respond(conn, &Response::ShuttingDown);
            shared.set_lifecycle(Lifecycle::Stopped);
            result
        }
    }
}

/// Try to reserve `n` in-flight slots. Optimistically adds, rolls back
/// on overflow.
fn try_reserve(shared: &Shared, n: u64) -> Result<(), u64> {
    let previous = shared.in_flight.fetch_add(n, Ordering::SeqCst);
    if previous + n > shared.config.max_pending {
        shared.in_flight.fetch_sub(n, Ordering::SeqCst);
        Err(previous)
    } else {
        Ok(())
    }
}

/// A job's typed invocation inputs: one argument list, or one list per
/// cohort instance for sweep jobs.
enum ResolvedArgs {
    Single(Vec<Val>),
    Sweep(Vec<Vec<Val>>),
}

fn handle_submit(
    shared: &Shared,
    conn: &mut Conn,
    jobs: &[crate::protocol::JobSpec],
    tag: &str,
) -> io::Result<()> {
    if shared.lifecycle() != Lifecycle::Accepting {
        return respond_error(conn, ErrorCode::Draining, "daemon is draining");
    }
    if let Some(max_batch) = shared.config.max_batch {
        if jobs.len() as u64 > max_batch {
            return respond_error(
                conn,
                ErrorCode::BadRequest,
                &format!(
                    "batch of {} job(s) exceeds the per-submit cap of {max_batch}",
                    jobs.len()
                ),
            );
        }
    }

    // Resolve every job before admitting any: a submit is atomic — it
    // either runs whole or is refused with the first problem found.
    let mut resolved = Vec::with_capacity(jobs.len());
    for (index, spec) in jobs.iter().enumerate() {
        let Some(module) = shared.store.get(&spec.hash) else {
            return respond_error(
                conn,
                ErrorCode::UnknownModule,
                &format!("job {index}: module {} was never uploaded", spec.hash),
            );
        };
        let params = match export_params(&module, &spec.invoke) {
            Ok(params) => params,
            Err(e) => {
                return respond_error(conn, ErrorCode::BadRequest, &format!("job {index}: {e}"))
            }
        };
        // A sweep job types every input row against the export's
        // signature; an ordinary job types its single argument list.
        let args = if let Some(rows) = &spec.sweep_args {
            if rows.is_empty() {
                return respond_error(
                    conn,
                    ErrorCode::BadRequest,
                    &format!("job {index}: sweep_args is empty (need at least one argument array)"),
                );
            }
            let mut inputs = Vec::with_capacity(rows.len());
            for (row_index, row) in rows.iter().enumerate() {
                match typed_args(row, &params) {
                    Ok(vals) => inputs.push(vals),
                    Err(e) => {
                        return respond_error(
                            conn,
                            ErrorCode::BadRequest,
                            &format!("job {index}: sweep entry {row_index}: {e}"),
                        )
                    }
                }
            }
            ResolvedArgs::Sweep(inputs)
        } else {
            match typed_args(&spec.args, &params) {
                Ok(args) => ResolvedArgs::Single(args),
                Err(e) => {
                    return respond_error(conn, ErrorCode::BadRequest, &format!("job {index}: {e}"))
                }
            }
        };
        resolved.push((spec, module, args));
    }

    // Admission control: reserve or refuse. With `--shed`, one overflow
    // cancels the oldest in-flight batch and re-polls briefly — newest
    // work wins, oldest pays, and the newcomer still gets `queue_full`
    // if the shed victim does not release slots in time.
    let n = resolved.len() as u64;
    let mut admitted = try_reserve(shared, n);
    if admitted.is_err() && shared.config.shed && shared.shed_oldest() {
        stats::record_server_shed();
        let patience = Instant::now() + Duration::from_secs(2);
        while admitted.is_err() && Instant::now() < patience {
            thread::sleep(Duration::from_millis(5));
            admitted = try_reserve(shared, n);
        }
    }
    if let Err(previous) = admitted {
        return respond_error(
            conn,
            ErrorCode::QueueFull,
            &format!(
                "{previous} job(s) in flight; {n} more would exceed the bound of {}",
                shared.config.max_pending
            ),
        );
    }

    let mut builder = Fleet::builder()
        .cache(Arc::clone(&shared.cache))
        .factory(shared.config.factory)
        .retries(shared.config.retries);
    if let Some(workers) = shared.config.workers {
        builder = builder.workers(workers);
    }
    // Every job gets a cancel token, registered under the batch's tag for
    // the duration of the run so `cancel` requests and load-shedding can
    // reach it from other connections.
    let mut tokens = Vec::with_capacity(resolved.len());
    for (spec, module, args) in resolved {
        let token = CancelToken::new();
        tokens.push(token.clone());
        let mut job = match args {
            ResolvedArgs::Single(args) => {
                Job::new(spec.hash.clone(), module, spec.invoke.clone(), args)
            }
            ResolvedArgs::Sweep(inputs) => {
                Job::sweep(spec.hash.clone(), module, spec.invoke.clone(), inputs)
            }
        };
        job = job
            .analyses(spec.analyses.iter().cloned())
            .cancel_token(token);
        if let Some(ms) = spec.deadline_ms {
            job = job.deadline(Duration::from_millis(ms));
        }
        builder = builder.submit(job);
    }
    let mut fleet = builder.build();
    let batch_id = shared.register_batch(tag, tokens);

    // Stream one result frame per job, in completion order. A write
    // failure (client gone) cannot abort the running fleet — jobs finish
    // and the counters stay truthful; we just stop writing.
    let mut write_error: Option<io::Error> = None;
    let summary = fleet.run_streaming(|mut outcome| {
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        shared.jobs_done.fetch_add(1, Ordering::Relaxed);
        stats::record_server_jobs(1);
        if write_error.is_some() {
            return;
        }
        // Failpoint: a fault at the frame layer behaves exactly like the
        // client vanishing mid-stream.
        if let Some(message) = wasabi::fault::fire("server/frame") {
            write_error = Some(io::Error::other(message));
            return;
        }
        // A sweep job streams one frame per cohort instance (the job's
        // aggregate analysis reports ride the LAST instance's frame); an
        // ordinary job streams its single frame. A sweep job that failed
        // before its cohort ran (build error, shed) has no per-instance
        // outcomes and degrades to the ordinary single error frame.
        if let Some(members) = outcome.sweep.filter(|m| !m.is_empty()) {
            let last = members.len() - 1;
            for (position, member) in members.into_iter().enumerate() {
                let result = JobResult {
                    job: outcome.job,
                    instance: Some(member.instance),
                    hash: outcome.key.clone(),
                    invoke: outcome.invoke.clone(),
                    results: match &member.result {
                        Ok(values) => Ok(values.iter().map(|v| format!("{v:?}")).collect()),
                        Err(e) => Err(e.to_string()),
                    },
                    reports: if position == last {
                        std::mem::take(&mut outcome.reports)
                    } else {
                        Vec::new()
                    },
                    cache_hit: outcome.stats.cache_hit,
                };
                if let Err(e) = write_frame(conn, &Response::Result(result).to_json()) {
                    write_error = Some(e);
                    return;
                }
            }
            return;
        }
        let result = JobResult {
            job: outcome.job,
            instance: None,
            hash: outcome.key,
            invoke: outcome.invoke,
            results: match &outcome.result {
                Ok(values) => Ok(values.iter().map(|v| format!("{v:?}")).collect()),
                Err(e) => Err(e.to_string()),
            },
            reports: outcome.reports,
            cache_hit: outcome.stats.cache_hit,
        };
        if let Err(e) = write_frame(conn, &Response::Result(result).to_json()) {
            write_error = Some(e);
        }
    });
    shared.deregister_batch(batch_id);
    if let Some(e) = write_error {
        return Err(e);
    }
    respond(
        conn,
        &Response::Done {
            jobs: summary.jobs as u64,
            wall_ms: summary.wall.as_secs_f64() * 1e3,
            cache_hits: summary.cache_hits,
            cache_misses: summary.cache_misses,
        },
    )
}
