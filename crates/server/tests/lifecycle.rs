//! Lifecycle and governance races, end-to-end (ISSUE 9): deadlines fire
//! on a live daemon without costing a worker, tagged batches cancel from
//! a second connection, load-shedding evicts the oldest batch, drain
//! races concurrent submitters without losing or duplicating results,
//! and a client survives a daemon restart via reconnect-with-backoff.

use std::time::{Duration, Instant};

use wasabi_analyses::registry;
use wasabi_server::{Client, ClientError, JobSpec, Server, ServerConfig};
use wasabi_wasm::builder::ModuleBuilder;
use wasabi_wasm::encode::encode;
use wasabi_wasm::ValType;

fn square_wasm() -> Vec<u8> {
    let mut builder = ModuleBuilder::new();
    builder.function("main", &[ValType::I32], &[ValType::I32], |f| {
        f.get_local(0u32).get_local(0u32).i32_mul();
    });
    encode(&builder.finish())
}

/// A module whose `main` never returns — only governance can stop it.
fn spin_wasm() -> Vec<u8> {
    let mut builder = ModuleBuilder::new();
    builder.function("main", &[], &[], |f| {
        f.block(None).loop_(None).br(0).end().end();
    });
    encode(&builder.finish())
}

fn unix_socket_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("wasabid-life-{}-{name}.sock", std::process::id()))
}

fn spec(hash: &str, arg: i32) -> JobSpec {
    JobSpec {
        hash: hash.to_string(),
        analyses: vec![],
        invoke: "main".to_string(),
        args: vec![wasabi::report::JsonValue::Int(arg.into())],
        sweep_args: None,
        deadline_ms: None,
    }
}

#[test]
fn deadline_reclaims_a_worker_and_the_daemon_serves_the_next_batch() {
    let path = unix_socket_path("deadline");
    let mut config = ServerConfig::new(registry::by_name);
    config.workers = Some(2);
    let server = Server::bind_unix(&path, config).expect("binds");
    let serve = std::thread::spawn(move || server.serve());

    let mut client = Client::connect_unix(&path).expect("connects");
    let (spin, _) = client.upload(&spin_wasm()).expect("uploads");
    let (square, _) = client.upload(&square_wasm()).expect("uploads");

    let timeouts_before = client.status().expect("status").timeouts;

    // A batch mixing an infinite loop under a 100 ms deadline with real
    // work: the spinner fails structured, the real work completes.
    let mut stream = client
        .submit(vec![
            JobSpec {
                hash: spin.clone(),
                analyses: vec![],
                invoke: "main".to_string(),
                args: vec![],
                sweep_args: None,
                deadline_ms: Some(100),
            },
            spec(&square, 6),
        ])
        .expect("submits");
    let results: Vec<_> = stream
        .by_ref()
        .collect::<Result<Vec<_>, _>>()
        .expect("streams");
    assert!(stream.done().is_some());
    assert_eq!(results.len(), 2);
    let by_job = |j: usize| results.iter().find(|r| r.job == j).expect("present");
    let timed_out = by_job(0).results.as_ref().expect_err("deadline fired");
    assert!(timed_out.contains("deadline"), "{timed_out}");
    assert_eq!(
        by_job(1).results.as_ref().expect("real work completes"),
        &vec!["I32(36)".to_string()]
    );

    // The worker came back: a follow-up batch completes normally, and the
    // robustness counters recorded the timeout.
    let mut stream = client
        .submit(vec![spec(&square, 3), spec(&square, 4)])
        .expect("submits");
    let next: Vec<_> = stream
        .by_ref()
        .collect::<Result<Vec<_>, _>>()
        .expect("streams");
    assert!(next.iter().all(|r| r.results.is_ok()));
    let status = client.status().expect("status");
    assert!(
        status.timeouts > timeouts_before,
        "status counts the timeout: {} then {}",
        timeouts_before,
        status.timeouts
    );

    client.shutdown().expect("shuts down");
    serve.join().expect("serve thread").expect("clean exit");
}

#[test]
fn a_tagged_batch_is_cancelled_from_a_second_connection() {
    let path = unix_socket_path("cancel");
    let mut config = ServerConfig::new(registry::by_name);
    config.workers = Some(1);
    let server = Server::bind_unix(&path, config).expect("binds");
    let serve = std::thread::spawn(move || server.serve());

    let mut submitter = Client::connect_unix(&path).expect("connects");
    let (spin, _) = submitter.upload(&spin_wasm()).expect("uploads");
    let cancellations_before = submitter.status().expect("status").cancellations;

    // The doomed batch spins forever; its stream blocks until the cancel
    // lands, so iterate it on a side thread.
    let collector = std::thread::spawn(move || {
        let mut stream = submitter
            .submit_tagged(
                vec![JobSpec {
                    hash: spin,
                    analyses: vec![],
                    invoke: "main".to_string(),
                    args: vec![],
                    sweep_args: None,
                    deadline_ms: None,
                }],
                "doomed",
            )
            .expect("submits");
        let results: Vec<_> = stream
            .by_ref()
            .collect::<Result<Vec<_>, _>>()
            .expect("streams");
        (results, stream.done().is_some())
    });

    // Cancel from a second connection. The submit races us to the
    // registry, so retry until the cancel reports a fired token.
    let mut canceller = Client::connect_unix(&path).expect("connects");
    assert_eq!(
        canceller.cancel("unknown-tag").expect("cancel"),
        0,
        "cancelling an unknown tag is a no-op"
    );
    let patience = Instant::now() + Duration::from_secs(10);
    loop {
        let fired = canceller.cancel("doomed").expect("cancel");
        if fired > 0 {
            break;
        }
        assert!(
            Instant::now() < patience,
            "batch never reached the registry"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    let (results, done) = collector.join().expect("collector");
    assert!(done, "the batch completed after cancellation");
    let error = results[0].results.as_ref().expect_err("cancelled");
    assert!(error.contains("cancelled"), "{error}");
    let status = canceller.status().expect("status");
    assert!(status.cancellations > cancellations_before);

    canceller.shutdown().expect("shuts down");
    serve.join().expect("serve thread").expect("clean exit");
}

#[test]
fn shedding_cancels_the_oldest_batch_to_admit_new_work() {
    let path = unix_socket_path("shed");
    let mut config = ServerConfig::new(registry::by_name);
    config.max_pending = 2;
    config.shed = true;
    let server = Server::bind_unix(&path, config).expect("binds");
    let serve = std::thread::spawn(move || server.serve());

    let mut first = Client::connect_unix(&path).expect("connects");
    let (spin, _) = first.upload(&spin_wasm()).expect("uploads");
    let (square, _) = first.upload(&square_wasm()).expect("uploads");
    let sheds_before = first.status().expect("status").sheds;

    // Fill the daemon with a batch that would otherwise never finish.
    let old = std::thread::spawn(move || {
        let mut stream = first
            .submit_tagged(
                (0..2)
                    .map(|_| JobSpec {
                        hash: spin.clone(),
                        analyses: vec![],
                        invoke: "main".to_string(),
                        args: vec![],
                        sweep_args: None,
                        deadline_ms: None,
                    })
                    .collect(),
                "old",
            )
            .expect("submits");
        let results: Vec<_> = stream
            .by_ref()
            .collect::<Result<Vec<_>, _>>()
            .expect("streams");
        results
    });

    // Wait until the old batch occupies both slots.
    let mut second = Client::connect_unix(&path).expect("connects");
    let patience = Instant::now() + Duration::from_secs(10);
    while second.status().expect("status").in_flight < 2 {
        assert!(Instant::now() < patience, "old batch never admitted");
        std::thread::sleep(Duration::from_millis(5));
    }

    // The newcomer overflows max_pending; with --shed the daemon cancels
    // the oldest batch instead of refusing, and the new work completes.
    let mut stream = second
        .submit(vec![spec(&square, 5), spec(&square, 7)])
        .expect("submits");
    let fresh: Vec<_> = stream
        .by_ref()
        .collect::<Result<Vec<_>, _>>()
        .expect("streams");
    assert_eq!(fresh.len(), 2);
    assert!(fresh.iter().all(|r| r.results.is_ok()), "{fresh:?}");

    // The shed victim's jobs failed structured on their own stream.
    let old_results = old.join().expect("old batch");
    assert_eq!(old_results.len(), 2);
    for result in &old_results {
        let error = result.results.as_ref().expect_err("shed");
        assert!(error.contains("cancelled"), "{error}");
    }
    let status = second.status().expect("status");
    assert!(status.sheds > sheds_before, "shed was counted");

    second.shutdown().expect("shuts down");
    serve.join().expect("serve thread").expect("clean exit");
}

#[test]
fn drain_races_two_submitting_clients_without_losing_results() {
    let path = unix_socket_path("drain-race");
    let server = Server::bind_unix(&path, ServerConfig::new(registry::by_name)).expect("binds");
    let serve = std::thread::spawn(move || server.serve());

    let mut setup = Client::connect_unix(&path).expect("connects");
    let (square, _) = setup.upload(&square_wasm()).expect("uploads");
    drop(setup);

    // Two clients submit small batches in a loop until the daemon starts
    // draining. Every submit must either complete whole (all results +
    // done) or be refused with a structured retryable error — nothing in
    // between.
    let submitter = |hash: String, path: std::path::PathBuf| {
        std::thread::spawn(move || {
            let mut client = Client::connect_unix(&path).expect("connects");
            let mut completed = 0u32;
            loop {
                // After the drain finishes the daemon may close the
                // connection under us; a failed write is a valid end.
                let mut stream =
                    match client.submit(vec![spec(&hash, 2), spec(&hash, 3), spec(&hash, 4)]) {
                        Ok(stream) => stream,
                        Err(e) => {
                            assert!(e.is_retryable(), "transport-level refusal: {e}");
                            break completed;
                        }
                    };
                let results: Result<Vec<_>, ClientError> = stream.by_ref().collect();
                match results {
                    Ok(results) => {
                        assert_eq!(results.len(), 3, "complete batch");
                        assert!(stream.done().is_some(), "done frame after results");
                        assert!(results.iter().all(|r| r.results.is_ok()));
                        completed += 1;
                    }
                    Err(e) => {
                        assert!(e.is_retryable(), "structured retryable refusal: {e}");
                        break completed;
                    }
                }
            }
        })
    };
    let a = submitter(square.clone(), path.clone());
    let b = submitter(square.clone(), path.clone());

    // Let both make progress, then drain mid-flight.
    std::thread::sleep(Duration::from_millis(50));
    let mut op = Client::connect_unix(&path).expect("connects");
    op.drain().expect("drains");

    let completed_a = a.join().expect("client a");
    let completed_b = b.join().expect("client b");
    serve.join().expect("serve thread").expect("clean exit");
    assert!(!path.exists(), "socket file is removed on exit");
    assert!(
        completed_a + completed_b > 0,
        "at least one batch completed before the drain landed"
    );
}

#[test]
fn a_live_client_survives_a_daemon_restart_via_backoff_reconnect() {
    let path = unix_socket_path("restart");
    let server = Server::bind_unix(&path, ServerConfig::new(registry::by_name)).expect("binds");
    let serve = std::thread::spawn(move || server.serve());

    let mut client = Client::connect_unix(&path).expect("connects");
    let (square, _) = client.upload(&square_wasm()).expect("uploads");
    assert_eq!(client.status().expect("status").state, "accepting");

    // Restart the daemon out from under the live client.
    let mut op = Client::connect_unix(&path).expect("connects");
    op.shutdown().expect("shuts down");
    serve.join().expect("serve thread").expect("clean exit");
    let server = Server::bind_unix(&path, ServerConfig::new(registry::by_name)).expect("rebinds");
    let serve = std::thread::spawn(move || server.serve());

    // The old connection is dead; the remembered endpoint is not.
    let reconnects_before = wasabi::stats::client_reconnects();
    assert!(
        client.status().is_err(),
        "the old connection must be broken"
    );
    client
        .reconnect_with_backoff(10)
        .expect("daemon is back on the same socket");
    assert!(wasabi::stats::client_reconnects() > reconnects_before);
    assert_eq!(client.status().expect("status").state, "accepting");

    // The restarted daemon is empty — the client's world survives a
    // re-upload, not magic.
    let (rehash, dedup) = client.upload(&square_wasm()).expect("re-uploads");
    assert_eq!(
        rehash, square,
        "content addressing is stable across restarts"
    );
    assert!(!dedup, "fresh daemon, fresh store");

    client.shutdown().expect("shuts down");
    serve.join().expect("serve thread").expect("clean exit");
}
