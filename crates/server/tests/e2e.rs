//! End-to-end daemon tests, in-process: a real [`Server`] on a real
//! socket, served from a background thread, driven through the real
//! [`Client`] — the same code paths the `wasabid`/`wasabi-client` bins
//! run, minus process spawning.
//!
//! Covers the PR's acceptance criteria directly:
//! - two sequential clients against one daemon: the second client's
//!   upload dedups and its jobs are **all** warm-cache hits, verified
//!   through the `status` counters;
//! - per-job results stream **before** the batch completes, verified
//!   with a deterministic ordering assertion (the last job blocks on a
//!   test-controlled gate while the earlier results are already on the
//!   wire);
//! - drain: in-flight work finishes, new work is refused with a
//!   structured `draining` error, the daemon exits cleanly.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use wasabi::event::{AnalysisCtx, BinaryEvt};
use wasabi::hooks::{Analysis, Hook, HookSet};
use wasabi_analyses::registry;
use wasabi_server::{Client, ErrorCode, JobSpec, Response, Server, ServerConfig};
use wasabi_wasm::builder::ModuleBuilder;
use wasabi_wasm::encode::encode;
use wasabi_wasm::ValType;

/// A module whose `main` executes one binary instruction and returns 6.
fn test_wasm() -> Vec<u8> {
    let mut builder = ModuleBuilder::new();
    builder.function("main", &[], &[ValType::I32], |f| {
        f.i32_const(2).i32_const(3).i32_mul();
    });
    encode(&builder.finish())
}

fn unix_socket_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("wasabid-e2e-{}-{name}.sock", std::process::id()))
}

fn spec(hash: &str, analyses: &[&str]) -> JobSpec {
    JobSpec {
        hash: hash.to_string(),
        analyses: analyses.iter().map(|s| s.to_string()).collect(),
        invoke: "main".to_string(),
        args: vec![],
        sweep_args: None,
        deadline_ms: None,
    }
}

/// A sweep job streams one result frame per cohort instance, tagged
/// with its instance index, with the job's aggregate analysis reports
/// riding the final frame.
#[test]
fn sweep_job_streams_one_frame_per_instance() {
    let socket = unix_socket_path("sweep");
    let _ = std::fs::remove_file(&socket);
    let server = Server::bind_unix(&socket, ServerConfig::new(registry::by_name)).expect("binds");
    let serve = std::thread::spawn(move || server.serve());

    // main(x) = x * x, so every instance's result encodes its input.
    let mut builder = ModuleBuilder::new();
    builder.function("main", &[ValType::I32], &[ValType::I32], |f| {
        f.get_local(0u32).get_local(0u32).i32_mul();
    });
    let wasm = encode(&builder.finish());

    let mut client = Client::connect_unix(&socket).expect("connects");
    let (hash, _) = client.upload(&wasm).expect("uploads");
    let job = JobSpec {
        hash: hash.clone(),
        analyses: vec!["instruction_mix".to_string()],
        invoke: "main".to_string(),
        args: vec![],
        sweep_args: Some(
            [2i64, 3, 4, 5]
                .iter()
                .map(|&v| vec![wasabi::report::JsonValue::Int(v)])
                .collect(),
        ),
        deadline_ms: None,
    };
    let mut stream = client.submit(vec![job]).expect("submits");
    let results: Vec<_> = stream
        .by_ref()
        .collect::<Result<Vec<_>, _>>()
        .expect("streams");
    let done = stream.done().expect("done frame");

    assert_eq!(done.jobs, 1, "one submitted job");
    assert_eq!(results.len(), 4, "one frame per cohort instance");
    for (index, result) in results.iter().enumerate() {
        assert_eq!(result.job, 0);
        assert_eq!(result.instance, Some(index as u32), "admission order");
        let input = (index + 2) as i32;
        assert_eq!(
            result.results.as_ref().expect("instance ok"),
            &vec![format!("I32({})", input * input)]
        );
        // The cohort's aggregate reports ride the last instance's frame.
        if index == results.len() - 1 {
            assert_eq!(result.reports.len(), 1);
            assert_eq!(result.reports[0].analysis, "instruction_mix");
        } else {
            assert!(result.reports.is_empty(), "instance {index} has reports");
        }
    }

    assert_eq!(client.drain().expect("drains"), 0);
    serve.join().expect("serve thread").expect("clean exit");
    let _ = std::fs::remove_file(&socket);
}

#[test]
fn second_client_pays_neither_upload_nor_build() {
    // Over TCP, so both transports get end-to-end coverage (the other
    // tests use unix sockets).
    let server =
        Server::bind_tcp("127.0.0.1:0", ServerConfig::new(registry::by_name)).expect("binds");
    let addr = server.addr().to_string();
    let serve = std::thread::spawn(move || server.serve());

    let wasm = test_wasm();

    // First client: cold daemon. One build (the three jobs share one
    // (module, hook set) cache entry), the rest warm.
    let mut first = Client::connect_tcp(&addr).expect("connects");
    let (hash, dedup) = first.upload(&wasm).expect("uploads");
    assert!(!dedup, "first upload of these bytes");
    let jobs: Vec<JobSpec> = (0..3).map(|_| spec(&hash, &["instruction_mix"])).collect();
    let mut stream = first.submit(jobs.clone()).expect("submits");
    let results: Vec<_> = stream
        .by_ref()
        .collect::<Result<Vec<_>, _>>()
        .expect("streams");
    let done = stream.done().expect("done frame");
    assert_eq!(results.len(), 3);
    assert_eq!(done.cache_misses, 1, "one build for three identical jobs");
    assert_eq!(done.cache_hits, 2);
    for result in &results {
        assert_eq!(
            result.results.as_ref().expect("job ok"),
            &vec!["I32(6)".to_string()]
        );
        assert_eq!(result.reports.len(), 1);
        assert_eq!(result.reports[0].analysis, "instruction_mix");
    }
    drop(first);

    // Second client: same bytes, same jobs. The upload dedups and every
    // job is a warm-cache hit — the whole point of the daemon.
    let mut second = Client::connect_tcp(&addr).expect("connects");
    let (hash_again, dedup) = second.upload(&wasm).expect("uploads");
    assert_eq!(hash_again, hash, "content-addressed");
    assert!(dedup, "identical bytes dedup");
    let mut stream = second.submit(jobs).expect("submits");
    let results: Vec<_> = stream
        .by_ref()
        .collect::<Result<Vec<_>, _>>()
        .expect("streams");
    let done = stream.done().expect("done frame");
    assert_eq!(results.len(), 3);
    assert_eq!(done.cache_misses, 0, "second client is all warm");
    assert_eq!(done.cache_hits, 3);
    assert!(results.iter().all(|r| r.cache_hit));

    // The status counters tell the same story daemon-wide.
    let status = second.status().expect("status");
    assert_eq!(status.state, "accepting");
    assert_eq!(status.uploads, 2);
    assert_eq!(status.dedup_hits, 1);
    assert_eq!(status.modules, 1);
    assert_eq!(status.cache_misses, 1, "one build across both clients");
    assert_eq!(status.cache_hits, 5);
    assert_eq!(status.jobs_done, 6);
    assert_eq!(status.in_flight, 0);

    // Drain; the daemon has nothing in flight and exits cleanly.
    assert_eq!(second.drain().expect("drains"), 0);
    serve.join().expect("serve thread").expect("clean exit");
}

/// Gate for [`Blocker`]: flipped by the test to let the blocked job
/// finish.
static RELEASE: AtomicBool = AtomicBool::new(false);

/// An analysis that parks its job on the binary hook until the test
/// releases it — making "earlier results stream while a later job still
/// runs" a deterministic fact instead of a race.
#[derive(Default)]
struct Blocker;

impl Analysis for Blocker {
    fn name(&self) -> &str {
        "blocker"
    }

    fn hooks(&self) -> HookSet {
        HookSet::of(&[Hook::Binary])
    }

    fn binary(&mut self, _: &AnalysisCtx, _: &BinaryEvt) {
        let start = Instant::now();
        while !RELEASE.load(Ordering::SeqCst) {
            assert!(
                start.elapsed() < Duration::from_secs(30),
                "test gate never released"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

fn blocking_factory(name: &str) -> Option<Box<dyn Analysis>> {
    if name == "blocker" {
        Some(Box::new(Blocker))
    } else {
        registry::by_name(name)
    }
}

#[test]
fn results_stream_before_the_batch_completes_and_drain_refuses_new_work() {
    let path = unix_socket_path("streaming");
    let mut config = ServerConfig::new(blocking_factory);
    config.workers = Some(1); // FIFO: jobs 0 and 1 finish before 2 starts
    let server = Server::bind_unix(&path, config).expect("binds");
    let serve = std::thread::spawn(move || server.serve());

    let wasm = test_wasm();
    let mut submitter = Client::connect_unix(&path).expect("connects");
    let (hash, _) = submitter.upload(&wasm).expect("uploads");
    let mut stream = submitter
        .submit(vec![
            spec(&hash, &["instruction_mix"]),
            spec(&hash, &["instruction_mix"]),
            spec(&hash, &["blocker"]), // parks until RELEASE
        ])
        .expect("submits");

    // The ordering assertion: two result frames arrive while job 2 is
    // provably still running (its gate is closed).
    let early0 = stream.next().expect("first frame").expect("job ok");
    let early1 = stream.next().expect("second frame").expect("job ok");
    assert_eq!(early0.job, 0);
    assert_eq!(early1.job, 1);
    assert!(stream.done().is_none(), "batch is not done yet");

    // A second connection observes the in-flight job through `status`...
    let mut observer = Client::connect_unix(&path).expect("connects");
    let status = observer.status().expect("status");
    assert_eq!(status.in_flight, 1, "job 2 is still executing");
    assert_eq!(status.jobs_done, 2, "jobs 0 and 1 already streamed");

    // ...and a drain during in-flight work: acknowledged with the count,
    // new work refused with a structured error, status still answered.
    assert_eq!(observer.drain().expect("drains"), 1);
    match observer.upload(&wasm) {
        Err(e) => assert!(e.to_string().contains(ErrorCode::Draining.as_str()), "{e}"),
        Ok(_) => panic!("upload must be refused while draining"),
    }
    let mut refused = observer
        .submit(vec![spec(&hash, &[])])
        .expect("request writes");
    match refused.next() {
        Some(Err(e)) => assert!(e.to_string().contains(ErrorCode::Draining.as_str()), "{e}"),
        other => panic!("submit must be refused while draining, got {other:?}"),
    }
    assert_eq!(observer.status().expect("status").state, "draining");

    // Release the gate: job 2 finishes, streams, and the daemon drains.
    RELEASE.store(true, Ordering::SeqCst);
    let late = stream.next().expect("third frame").expect("job ok");
    assert_eq!(late.job, 2);
    assert!(stream.next().is_none(), "stream ends at the done frame");
    let done = stream.done().expect("done frame");
    assert_eq!(done.jobs, 3);

    serve.join().expect("serve thread").expect("clean exit");
    assert!(!path.exists(), "socket file is removed on exit");
}

#[test]
fn admission_control_refuses_oversized_submits_whole() {
    let path = unix_socket_path("admission");
    let mut config = ServerConfig::new(registry::by_name);
    config.max_pending = 2;
    let server = Server::bind_unix(&path, config).expect("binds");
    let serve = std::thread::spawn(move || server.serve());

    let mut client = Client::connect_unix(&path).expect("connects");
    let (hash, _) = client.upload(&test_wasm()).expect("uploads");

    // Three jobs against a bound of two: the whole submit is refused and
    // nothing runs.
    let mut refused = client
        .submit(vec![spec(&hash, &[]), spec(&hash, &[]), spec(&hash, &[])])
        .expect("request writes");
    match refused.next() {
        Some(Err(e)) => assert!(e.to_string().contains(ErrorCode::QueueFull.as_str()), "{e}"),
        other => panic!("expected queue_full, got {other:?}"),
    }
    drop(refused);
    let status = client.status().expect("status");
    assert_eq!(status.jobs_done, 0, "refused submit ran nothing");
    assert_eq!(status.in_flight, 0, "reservation was rolled back");

    // A submit within the bound still works afterwards.
    let mut stream = client
        .submit(vec![spec(&hash, &[]), spec(&hash, &[])])
        .expect("submits");
    let results: Vec<_> = stream
        .by_ref()
        .collect::<Result<Vec<_>, _>>()
        .expect("streams");
    assert_eq!(results.len(), 2);

    // Unknown module hashes are refused before admission.
    let mut unknown = client
        .submit(vec![spec("fnv64:0000000000000000", &[])])
        .expect("request writes");
    match unknown.next() {
        Some(Err(e)) => {
            assert!(
                e.to_string().contains(ErrorCode::UnknownModule.as_str()),
                "{e}"
            );
        }
        other => panic!("expected unknown_module, got {other:?}"),
    }

    client.shutdown().expect("shuts down");
    serve.join().expect("serve thread").expect("clean exit");
}

#[test]
fn raw_protocol_round_trip_matches_typed_client() {
    // Belt-and-braces: drive one upload/submit cycle with raw frames
    // (no Client) to pin the wire format itself.
    use std::io::Write as _;
    use wasabi_server::{read_frame, write_frame, Request};

    let path = unix_socket_path("raw");
    let server = Server::bind_unix(&path, ServerConfig::new(registry::by_name)).expect("binds");
    let serve = std::thread::spawn(move || server.serve());

    let mut conn = std::os::unix::net::UnixStream::connect(&path).expect("connects");
    write_frame(&mut conn, &Request::Upload { bytes: test_wasm() }.to_json()).expect("writes");
    let uploaded = Response::from_json(&read_frame(&mut conn).expect("frame")).expect("typed");
    let Response::Uploaded {
        hash, dedup: false, ..
    } = uploaded
    else {
        panic!("expected uploaded, got {uploaded:?}");
    };

    write_frame(
        &mut conn,
        &Request::Submit {
            jobs: vec![spec(&hash, &["call_graph"])],
            tag: String::new(),
        }
        .to_json(),
    )
    .expect("writes");
    let result = Response::from_json(&read_frame(&mut conn).expect("frame")).expect("typed");
    let Response::Result(result) = result else {
        panic!("expected result, got {result:?}");
    };
    assert_eq!(result.reports[0].analysis, "call_graph");
    let done = Response::from_json(&read_frame(&mut conn).expect("frame")).expect("typed");
    assert!(matches!(done, Response::Done { jobs: 1, .. }), "{done:?}");

    write_frame(&mut conn, &Request::Shutdown.to_json()).expect("writes");
    conn.flush().expect("flushes");
    serve.join().expect("serve thread").expect("clean exit");
}
