//! Hostile-input robustness: every malformed thing a client can put on
//! the wire yields a **structured error response** (or a clean close) —
//! never a panic, never a hang. The daemon stays alive throughout; the
//! final section proves it by doing real work afterwards.

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::time::Duration;

use wasabi_analyses::registry;
use wasabi_server::{
    read_frame, write_frame, Client, ErrorCode, Request, Response, Server, ServerConfig, MAX_FRAME,
};

fn unix_socket_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("wasabid-rob-{}-{name}.sock", std::process::id()))
}

fn connect(path: &std::path::Path) -> UnixStream {
    let conn = UnixStream::connect(path).expect("connects");
    // A hang is a test failure, not a timeout: every read below must
    // complete quickly or the suite errors out.
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    conn
}

fn expect_error(conn: &mut UnixStream, code: ErrorCode) {
    let value = read_frame(conn).expect("error frame");
    match Response::from_json(&value).expect("typed response") {
        Response::Error { code: got, .. } => assert_eq!(got, code),
        other => panic!("expected {:?} error, got {other:?}", code.as_str()),
    }
}

#[test]
fn malformed_frames_yield_structured_errors_never_panics_or_hangs() {
    let path = unix_socket_path("malformed");
    let server = Server::bind_unix(&path, ServerConfig::new(registry::by_name)).expect("binds");
    let serve = std::thread::spawn(move || server.serve());

    // 1. Oversized length prefix: structured error, then the daemon
    //    closes (it cannot resync past a lied-about payload).
    {
        let mut conn = connect(&path);
        conn.write_all(&((MAX_FRAME as u32) + 1).to_be_bytes())
            .expect("writes");
        conn.flush().expect("flushes");
        expect_error(&mut conn, ErrorCode::FrameTooLarge);
        let mut rest = Vec::new();
        assert_eq!(
            conn.read_to_end(&mut rest).expect("clean close"),
            0,
            "connection is closed after an oversized prefix"
        );
    }

    // 2. Truncated frame: header promises 100 bytes, the client sends 10
    //    and goes away. The daemon just closes its end — no hang.
    {
        let mut conn = connect(&path);
        conn.write_all(&100u32.to_be_bytes()).expect("writes");
        conn.write_all(b"0123456789").expect("writes");
        conn.shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut rest = Vec::new();
        assert_eq!(conn.read_to_end(&mut rest).expect("clean close"), 0);
    }

    // 3. Invalid JSON payload: structured error, and the connection
    //    SURVIVES — the framing layer is still aligned.
    {
        let mut conn = connect(&path);
        let garbage = b"{\"type\": nonsense!!";
        conn.write_all(&(garbage.len() as u32).to_be_bytes())
            .expect("writes");
        conn.write_all(garbage).expect("writes");
        conn.flush().expect("flushes");
        expect_error(&mut conn, ErrorCode::MalformedFrame);

        // Same connection, now a well-formed request: it works.
        write_frame(&mut conn, &Request::Status.to_json()).expect("writes");
        let value = read_frame(&mut conn).expect("status frame");
        assert!(matches!(
            Response::from_json(&value).expect("typed"),
            Response::Status(_)
        ));
    }

    // 4. Valid JSON, unknown request type: structured error, connection
    //    survives.
    {
        let mut conn = connect(&path);
        let frame = wasabi::report::JsonValue::object([(
            "type",
            wasabi::report::JsonValue::from("frobnicate"),
        )]);
        write_frame(&mut conn, &frame).expect("writes");
        expect_error(&mut conn, ErrorCode::UnknownRequest);
        write_frame(&mut conn, &Request::Status.to_json()).expect("writes");
        assert!(read_frame(&mut conn).is_ok(), "connection survives");
    }

    // 5. Valid JSON, not even an object: structured bad_request error.
    {
        let mut conn = connect(&path);
        write_frame(&mut conn, &wasabi::report::JsonValue::UInt(42)).expect("writes");
        expect_error(&mut conn, ErrorCode::BadRequest);
    }

    // 6. Known request with broken members (odd-length hex): bad_request.
    {
        let mut conn = connect(&path);
        let frame = wasabi::report::JsonValue::object([
            ("type", wasabi::report::JsonValue::from("upload")),
            ("bytes", wasabi::report::JsonValue::from("abc")),
        ]);
        write_frame(&mut conn, &frame).expect("writes");
        expect_error(&mut conn, ErrorCode::BadRequest);
    }

    // 7. Well-formed upload of bytes that are not a wasm module:
    //    invalid_module, and nothing is stored.
    {
        let mut conn = connect(&path);
        write_frame(
            &mut conn,
            &Request::Upload {
                bytes: b"definitely not wasm".to_vec(),
            }
            .to_json(),
        )
        .expect("writes");
        expect_error(&mut conn, ErrorCode::InvalidModule);
    }

    // After all of the above abuse the daemon still does real work.
    let mut client = Client::connect_unix(&path).expect("connects");
    let status = client.status().expect("status");
    assert_eq!(status.state, "accepting");
    assert_eq!(status.modules, 0, "no garbage was stored");
    client.shutdown().expect("shuts down");
    serve.join().expect("serve thread").expect("clean exit");
}
