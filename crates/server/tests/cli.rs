//! End-to-end tests of the `wasabi` CLI binary: instrument a file on disk,
//! check outputs, run the instrumented binary from disk under an analysis.

use std::path::PathBuf;
use std::process::Command;

use wasabi::hooks::NoAnalysis;
use wasabi::WasabiHost;
use wasabi_vm::Instance;
use wasabi_wasm::builder::ModuleBuilder;
use wasabi_wasm::{Val, ValType};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wasabi"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wasabi-cli-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn write_fixture(dir: &std::path::Path) -> PathBuf {
    let mut builder = ModuleBuilder::new();
    builder.memory(1, None);
    builder.function("f", &[ValType::I32], &[ValType::I32], |f| {
        f.get_local(0u32).i32_const(5).i32_mul();
    });
    let path = dir.join("fixture.wasm");
    std::fs::write(&path, wasabi_wasm::encode::encode(&builder.finish())).expect("write");
    path
}

#[test]
fn instruments_a_file_end_to_end() {
    let dir = temp_dir("full");
    let input = write_fixture(&dir);
    let out = dir.join("out");

    let status = cli()
        .arg(&input)
        .arg(&out)
        .arg("--wat")
        .status()
        .expect("CLI runs");
    assert!(status.success());

    // Outputs exist.
    let wasm_path = out.join("fixture.wasm");
    let json_path = out.join("fixture.info.json");
    assert!(wasm_path.exists() && json_path.exists() && out.join("fixture.wat").exists());

    // The instrumented binary decodes, validates, and runs correctly when
    // loaded back from disk (consuming the JSON through the library's own
    // ModuleInfo is covered elsewhere; here we check the wasm itself).
    let bytes = std::fs::read(&wasm_path).expect("read output");
    let module = wasabi_wasm::decode::decode(&bytes).expect("decodes");
    wasabi_wasm::validate::validate(&module).expect("validates");

    // Reconstruct info by re-instrumenting the original (deterministic).
    let original = wasabi_wasm::decode::decode(&std::fs::read(&input).unwrap()).unwrap();
    let (_, info) = wasabi::instrument(&original, wasabi::HookSet::all()).unwrap();
    let mut analysis = NoAnalysis;
    let mut host = WasabiHost::new(&info, &mut analysis);
    let mut instance = Instance::instantiate(module, &mut host).expect("instantiates");
    let results = instance
        .invoke_export("f", &[Val::I32(8)], &mut host)
        .expect("runs");
    assert_eq!(results, vec![Val::I32(40)]);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn selective_hooks_flag() {
    let dir = temp_dir("selective");
    let input = write_fixture(&dir);
    let out = dir.join("out");

    let output = cli()
        .arg(&input)
        .arg(&out)
        .arg("--hooks=binary")
        .output()
        .expect("CLI runs");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("for 1 hook(s)"), "{stdout}");

    let json = std::fs::read_to_string(out.join("fixture.info.json")).expect("read json");
    assert!(json.contains("\"enabledHooks\":[\"binary\"]"), "{json}");

    let _ = std::fs::remove_dir_all(&dir);
}

fn write_branchy_fixture(dir: &std::path::Path) -> PathBuf {
    let mut builder = ModuleBuilder::new();
    builder.memory(1, None);
    builder.function("main", &[ValType::I32], &[ValType::I32], |f| {
        f.i32_const(0)
            .get_local(0u32)
            .store(wasabi_wasm::StoreOp::I32Store, 0);
        f.i32_const(0).load(wasabi_wasm::LoadOp::I32Load, 0);
        f.i32_const(3).i32_mul();
    });
    let path = dir.join("branchy.wasm");
    std::fs::write(&path, wasabi_wasm::encode::encode(&builder.finish())).expect("write");
    path
}

#[test]
fn analysis_mode_emits_one_report_per_analysis() {
    let dir = temp_dir("analysis-stdout");
    let input = write_branchy_fixture(&dir);

    let output = cli()
        .arg(&input)
        .arg("--analysis=instruction_mix,memory_tracing,call_graph")
        .arg("--invoke=main")
        .arg("--args=7")
        .output()
        .expect("CLI runs");
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "one JSON report per analysis: {stdout}");
    assert!(lines[0].contains("\"analysis\":\"instruction_mix\""));
    assert!(lines[0].contains("\"i32.mul\":1"), "{}", lines[0]);
    assert!(lines[1].contains("\"analysis\":\"memory_tracing\""));
    assert!(lines[1].contains("\"accesses\":2"), "{}", lines[1]);
    assert!(lines[2].contains("\"analysis\":\"call_graph\""));
    // The fused run happened in exactly one pass (stderr banner).
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("1 instrumentation pass"), "{stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn analysis_mode_writes_report_files_with_out() {
    let dir = temp_dir("analysis-out");
    let input = write_branchy_fixture(&dir);
    let out = dir.join("reports");

    let output = cli()
        .arg(&input)
        .arg("--analysis=instruction_coverage,branch_coverage")
        .arg("--invoke=main")
        .arg("--args=1")
        .arg("--out")
        .arg(&out)
        .output()
        .expect("CLI runs");
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    for name in ["instruction_coverage", "branch_coverage"] {
        let path = out.join(format!("{name}.json"));
        let json = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing {}: {e}", path.display()));
        assert!(json.contains(&format!("\"analysis\":\"{name}\"")), "{json}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn analysis_mode_rejects_unknown_analysis_and_bad_args() {
    let dir = temp_dir("analysis-errors");
    let input = write_branchy_fixture(&dir);

    let output = cli()
        .arg(&input)
        .arg("--analysis=frobnicate")
        .output()
        .expect("CLI runs");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("unknown analysis"));

    // Wrong argument count for the export's signature.
    let output = cli()
        .arg(&input)
        .arg("--analysis=instruction_mix")
        .arg("--invoke=main")
        .output()
        .expect("CLI runs");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("argument"));

    // Unknown export.
    let output = cli()
        .arg(&input)
        .arg("--analysis=instruction_mix")
        .arg("--invoke=nope")
        .output()
        .expect("CLI runs");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("no exported function"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rejects_unknown_hook_and_garbage_input() {
    let dir = temp_dir("errors");
    let input = write_fixture(&dir);

    let output = cli()
        .arg(&input)
        .arg("--hooks=frobnicate")
        .output()
        .expect("CLI runs");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("unknown hook"));

    let garbage = dir.join("garbage.wasm");
    std::fs::write(&garbage, b"not wasm").unwrap();
    let output = cli().arg(&garbage).output().expect("CLI runs");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("cannot decode"));

    let output = cli().output().expect("CLI runs");
    assert!(!output.status.success());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_mode_runs_a_manifest_over_the_fleet() {
    let dir = temp_dir("batch");
    write_fixture(&dir); // fixture.wasm, export `f`
    write_branchy_fixture(&dir); // branchy.wasm, export `main`
    let manifest = dir.join("manifest.json");
    // Module paths are relative to the manifest; one module is used by
    // several jobs (exercising the shared cache), args come as JSON
    // numbers, and one job runs without analyses.
    std::fs::write(
        &manifest,
        r#"{"jobs": [
            {"module": "branchy.wasm", "analyses": ["instruction_mix"], "args": [7]},
            {"module": "branchy.wasm", "analyses": ["instruction_mix"], "args": [8]},
            {"module": "branchy.wasm", "analyses": ["memory_tracing", "call_graph"], "args": [9]},
            {"module": "fixture.wasm", "invoke": "f", "args": [6]}
        ]}"#,
    )
    .expect("write manifest");

    let output = cli()
        .arg("--batch")
        .arg(&manifest)
        .arg("--workers=2")
        .arg("--time")
        .output()
        .expect("CLI runs");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "{stderr}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 4, "one JSON object per job: {stdout}");
    // Results come back in submission order regardless of scheduling.
    assert!(
        lines[0].contains("\"job\":0") && lines[0].contains("\"i32.mul\":1"),
        "{}",
        lines[0]
    );
    assert!(lines[1].contains("\"job\":1"), "{}", lines[1]);
    assert!(lines[2].contains("\"accesses\":2"), "{}", lines[2]);
    assert!(
        lines[3].contains("\"module\":\"fixture.wasm\""),
        "{}",
        lines[3]
    );
    assert!(lines[3].contains("I32(30)"), "{}", lines[3]);
    // The summary reports throughput + cache amortization: jobs 0 and 1
    // share one (module, hook set) entry, so at least one hit happened.
    assert!(stderr.contains("jobs/sec"), "{stderr}");
    assert!(!stderr.contains("0 cache hit(s)"), "{stderr}");
    assert!(stderr.contains("--time: per-job sums"), "{stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_mode_writes_report_files_with_out() {
    let dir = temp_dir("batch-out");
    write_branchy_fixture(&dir);
    let manifest = dir.join("manifest.json");
    std::fs::write(
        &manifest,
        r#"{"jobs": [
            {"module": "branchy.wasm", "analyses": ["instruction_coverage", "branch_coverage"], "args": [1]},
            {"module": "branchy.wasm", "args": [2]}
        ]}"#,
    )
    .expect("write manifest");
    let out = dir.join("reports");

    let output = cli()
        .arg("--batch")
        .arg(&manifest)
        .arg("--out")
        .arg(&out)
        .output()
        .expect("CLI runs");
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    for name in ["instruction_coverage", "branch_coverage"] {
        let path = out.join(format!("job0.{name}.json"));
        let json = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing {}: {e}", path.display()));
        assert!(json.contains(&format!("\"analysis\":\"{name}\"")), "{json}");
    }
    // Every job gets a summary file — including job 1, which has no
    // analyses and would otherwise leave no record of its results.
    let summary = std::fs::read_to_string(out.join("job0.json")).expect("job0 summary");
    assert!(summary.contains("\"analyses\":[\"instruction_coverage\",\"branch_coverage\"]"));
    let summary = std::fs::read_to_string(out.join("job1.json")).expect("job1 summary");
    assert!(summary.contains("\"results\":[\"I32(6)\"]"), "{summary}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_mode_rejects_bad_manifests_and_flag_combinations() {
    let dir = temp_dir("batch-errors");
    let input = write_branchy_fixture(&dir);

    // --batch is exclusive with the single-run modes.
    let output = cli()
        .arg(&input)
        .arg("--batch")
        .arg("whatever.json")
        .output()
        .expect("CLI runs");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("--batch"));

    // --workers without --batch.
    let output = cli()
        .arg(&input)
        .arg("--workers=2")
        .output()
        .expect("CLI runs");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("--workers requires --batch"));

    // Malformed JSON.
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{\"jobs\": [").unwrap();
    let output = cli().arg("--batch").arg(&bad).output().expect("CLI runs");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("cannot parse"));

    // Unknown analysis is rejected while building the batch.
    let unknown = dir.join("unknown.json");
    std::fs::write(
        &unknown,
        r#"{"jobs": [{"module": "branchy.wasm", "analyses": ["frobnicate"], "args": [1]}]}"#,
    )
    .unwrap();
    let output = cli()
        .arg("--batch")
        .arg(&unknown)
        .output()
        .expect("CLI runs");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("unknown analysis"));

    // Wrong arity against the export signature.
    let arity = dir.join("arity.json");
    std::fs::write(
        &arity,
        r#"{"jobs": [{"module": "branchy.wasm", "analyses": ["instruction_mix"]}]}"#,
    )
    .unwrap();
    let output = cli().arg("--batch").arg(&arity).output().expect("CLI runs");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("argument"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn time_flag_prints_phase_breakdown_in_both_modes() {
    let dir = temp_dir("time-flag");
    let input = write_branchy_fixture(&dir);

    // Analysis mode: fused build/execute breakdown (direct-emit path —
    // instrument and translate are one pass, so there is no split pair
    // to report and nothing double-counted).
    let output = cli()
        .arg(&input)
        .arg("--analysis=instruction_mix")
        .arg("--invoke=main")
        .arg("--args=2")
        .arg("--time")
        .output()
        .expect("CLI runs");
    assert!(output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("--time: build (fused instrument+translate) "),
        "{stderr}"
    );
    assert!(stderr.contains(" execute "), "{stderr}");

    // Instrument mode: decode/instrument/encode breakdown.
    let output = cli()
        .arg(&input)
        .arg(dir.join("out"))
        .arg("--time")
        .output()
        .expect("CLI runs");
    assert!(output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--time: decode "), "{stderr}");
    assert!(stderr.contains(" instrument "), "{stderr}");
    assert!(stderr.contains(" encode "), "{stderr}");
}

// ---------------------------------------------------------------------
// `wasabi client` against a live daemon: exit status + one-line errors
// (retryable vs fatal), deadlines from the command line, cancel.
// ---------------------------------------------------------------------

use wasabi_analyses::registry;
use wasabi_server::{Client, Server, ServerConfig};

fn daemon(name: &str) -> (PathBuf, std::thread::JoinHandle<std::io::Result<()>>) {
    daemon_with(name, ServerConfig::new(registry::by_name))
}

fn daemon_with(
    name: &str,
    config: ServerConfig,
) -> (PathBuf, std::thread::JoinHandle<std::io::Result<()>>) {
    let path = std::env::temp_dir().join(format!(
        "wasabi-cli-daemon-{name}-{}.sock",
        std::process::id()
    ));
    let server = Server::bind_unix(&path, config).expect("binds");
    let serve = std::thread::spawn(move || server.serve());
    (path, serve)
}

fn shutdown_daemon(path: &std::path::Path, serve: std::thread::JoinHandle<std::io::Result<()>>) {
    let mut client = Client::connect_unix(path).expect("connects");
    client.shutdown().expect("shuts down");
    serve.join().expect("serve thread").expect("clean exit");
}

fn write_spin_fixture(dir: &std::path::Path) -> PathBuf {
    let mut builder = ModuleBuilder::new();
    builder.function("main", &[], &[], |f| {
        f.block(None).loop_(None).br(0).end().end();
    });
    let path = dir.join("spin.wasm");
    std::fs::write(&path, wasabi_wasm::encode::encode(&builder.finish())).expect("write");
    path
}

#[test]
fn client_with_no_daemon_exits_nonzero_with_one_line() {
    let output = cli()
        .args(["client", "--socket", "/nonexistent/wasabid.sock", "status"])
        .output()
        .expect("CLI runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("cannot connect"), "{stderr}");
    assert_eq!(stderr.trim().lines().count(), 1, "one line: {stderr}");
}

#[test]
fn fatal_daemon_refusals_exit_nonzero_with_a_fatal_line() {
    let dir = temp_dir("client-fatal");
    let garbage = dir.join("garbage.wasm");
    std::fs::write(&garbage, b"not wasm").unwrap();
    let (path, serve) = daemon("fatal");

    let output = cli()
        .args(["client", "--socket"])
        .arg(&path)
        .arg("submit")
        .arg(&garbage)
        .output()
        .expect("CLI runs");
    assert!(!output.status.success(), "refusal must exit nonzero");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("fatal:"), "{stderr}");
    assert!(stderr.contains("invalid_module"), "{stderr}");
    assert_eq!(stderr.trim().lines().count(), 1, "one line: {stderr}");

    shutdown_daemon(&path, serve);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn retryable_daemon_refusals_exit_nonzero_with_a_retryable_line() {
    let dir = temp_dir("client-retryable");
    let input = write_fixture(&dir);
    let spin = write_spin_fixture(&dir);
    // A draining daemon stops accepting *new* connections, so a fresh
    // CLI process can never observe that refusal — queue_full is the
    // retryable condition reachable from the outside. Bound the daemon
    // at one job and pin that slot with a spinner.
    let mut config = ServerConfig::new(registry::by_name);
    config.max_pending = 1;
    let (path, serve) = daemon_with("retryable", config);

    let mut holder = Client::connect_unix(&path).expect("connects");
    let (hash, _) = holder
        .upload(&std::fs::read(&spin).unwrap())
        .expect("uploads");
    let held = std::thread::spawn(move || {
        let mut stream = holder
            .submit_tagged(
                vec![wasabi_server::JobSpec {
                    hash,
                    analyses: vec![],
                    invoke: "main".to_string(),
                    args: vec![],
                    sweep_args: None,
                    deadline_ms: None,
                }],
                "hold",
            )
            .expect("submits");
        let _ = stream.by_ref().count();
    });
    let mut op = Client::connect_unix(&path).expect("connects");
    while op.status().expect("status").in_flight < 1 {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let output = cli()
        .args(["client", "--socket"])
        .arg(&path)
        .arg("submit")
        .arg(&input)
        .args(["--invoke", "f", "--args", "3"])
        .output()
        .expect("CLI runs");
    assert!(!output.status.success(), "refusal must exit nonzero");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("retryable:"), "{stderr}");
    assert!(stderr.contains("queue_full"), "{stderr}");
    assert_eq!(stderr.trim().lines().count(), 1, "one line: {stderr}");

    // Release the pinned job, then shut down cleanly.
    while op.cancel("hold").expect("cancel") == 0 {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    held.join().expect("holder thread");
    shutdown_daemon(&path, serve);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadline_flag_times_out_a_spinning_module_with_nonzero_exit() {
    let dir = temp_dir("client-deadline");
    let spin = write_spin_fixture(&dir);
    let (path, serve) = daemon("deadline");

    let output = cli()
        .args(["client", "--socket"])
        .arg(&path)
        .arg("submit")
        .arg(&spin)
        .args(["--deadline-ms", "100"])
        .output()
        .expect("CLI runs");
    assert!(!output.status.success(), "a failed job must exit nonzero");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("FAILED"), "{stderr}");
    assert!(stderr.contains("deadline"), "{stderr}");
    assert!(stderr.contains("1 job(s) failed"), "{stderr}");

    // The daemon survived the timeout and still answers.
    let output = cli()
        .args(["client", "--socket"])
        .arg(&path)
        .arg("status")
        .output()
        .expect("CLI runs");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("\"timeouts\":1"), "{stdout}");

    shutdown_daemon(&path, serve);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancel_command_reports_the_fired_count() {
    let (path, serve) = daemon("cancel");

    let output = cli()
        .args(["client", "--socket"])
        .arg(&path)
        .args(["cancel", "no-such-tag"])
        .output()
        .expect("CLI runs");
    assert!(output.status.success(), "cancel of an idle tag is a no-op");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("cancelled 0 job(s)"), "{stderr}");

    shutdown_daemon(&path, serve);
}
