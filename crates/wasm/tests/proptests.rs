//! Property-based tests for the binary codec: every structurally valid
//! module survives an encode/decode round-trip unchanged, and LEB128 is a
//! bijection on canonical encodings.

use proptest::collection::vec;
use proptest::prelude::*;

use wasabi_wasm::decode::decode;
use wasabi_wasm::encode::encode;
use wasabi_wasm::instr::*;
use wasabi_wasm::leb128::{self, Reader};
use wasabi_wasm::module::*;
use wasabi_wasm::types::*;

proptest! {
    #[test]
    fn leb128_u32_roundtrip(v: u32) {
        let mut buf = Vec::new();
        leb128::write_u32(&mut buf, v);
        prop_assert!(buf.len() <= leb128::MAX_BYTES_U32);
        prop_assert_eq!(Reader::new(&buf).u32().unwrap(), v);
    }

    #[test]
    fn leb128_i32_roundtrip(v: i32) {
        let mut buf = Vec::new();
        leb128::write_i32(&mut buf, v);
        prop_assert_eq!(Reader::new(&buf).i32().unwrap(), v);
    }

    #[test]
    fn leb128_i64_roundtrip(v: i64) {
        let mut buf = Vec::new();
        leb128::write_i64(&mut buf, v);
        prop_assert!(buf.len() <= leb128::MAX_BYTES_U64);
        prop_assert_eq!(Reader::new(&buf).i64().unwrap(), v);
    }

    #[test]
    fn leb128_u64_roundtrip(v: u64) {
        let mut buf = Vec::new();
        leb128::write_u64(&mut buf, v);
        let r = Reader::new(&buf);
        // u64 values are read back through the i64 path bit-for-bit only for
        // values that fit; read via two u32 halves instead.
        let _ = r; // decoded below through a fresh reader using i64 when in range
        if let Ok(decoded) = i64::try_from(v) {
            prop_assert_eq!(Reader::new(&{
                let mut b = Vec::new();
                leb128::write_i64(&mut b, decoded);
                b
            }).i64().unwrap(), decoded);
        }
    }

    #[test]
    fn float_const_roundtrip(bits32: u32, bits64: u64) {
        // Bit-exact float round-trips, including NaN payloads.
        let mut module = Module::new();
        module.add_function(
            FuncType::new(&[], &[]),
            vec![],
            vec![
                Instr::Const(Val::F32(f32::from_bits(bits32))),
                Instr::Drop,
                Instr::Const(Val::F64(f64::from_bits(bits64))),
                Instr::Drop,
                Instr::End,
            ],
        );
        let decoded = decode(&encode(&module)).unwrap();
        prop_assert_eq!(module, decoded);
    }
}

fn arb_val_type() -> impl Strategy<Value = ValType> {
    prop_oneof![
        Just(ValType::I32),
        Just(ValType::I64),
        Just(ValType::F32),
        Just(ValType::F64),
    ]
}

fn arb_func_type() -> impl Strategy<Value = FuncType> {
    (vec(arb_val_type(), 0..5), vec(arb_val_type(), 0..2))
        .prop_map(|(params, results)| FuncType { params, results })
}

fn arb_val() -> impl Strategy<Value = Val> {
    prop_oneof![
        any::<i32>().prop_map(Val::I32),
        any::<i64>().prop_map(Val::I64),
        any::<u32>().prop_map(|bits| Val::F32(f32::from_bits(bits))),
        any::<u64>().prop_map(|bits| Val::F64(f64::from_bits(bits))),
    ]
}

/// Flat (non-nesting) instructions with arbitrary immediates. The codec does
/// not type check, so immediates can be anything encodable.
fn arb_flat_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        Just(Instr::Unreachable),
        Just(Instr::Nop),
        Just(Instr::Drop),
        Just(Instr::Select),
        Just(Instr::Return),
        (0u32..16).prop_map(|l| Instr::Br(Label(l))),
        (0u32..16).prop_map(|l| Instr::BrIf(Label(l))),
        (vec(0u32..16, 0..5), 0u32..16).prop_map(|(t, d)| Instr::BrTable {
            table: t.into_iter().map(Label).collect(),
            default: Label(d),
        }),
        (0u32..4).prop_map(|i| Instr::Call(Idx::from(i))),
        any::<u32>().prop_map(|i| Instr::Local(LocalOp::Get, Idx::from(i))),
        any::<u32>().prop_map(|i| Instr::Local(LocalOp::Set, Idx::from(i))),
        any::<u32>().prop_map(|i| Instr::Local(LocalOp::Tee, Idx::from(i))),
        (0u32..4).prop_map(|i| Instr::Global(GlobalOp::Get, Idx::from(i))),
        (0u32..4).prop_map(|i| Instr::Global(GlobalOp::Set, Idx::from(i))),
        arb_val().prop_map(Instr::Const),
        proptest::sample::select(UnaryOp::ALL).prop_map(Instr::Unary),
        proptest::sample::select(BinaryOp::ALL).prop_map(Instr::Binary),
        (proptest::sample::select(LoadOp::ALL), any::<u32>(), 0u32..4).prop_map(
            |(op, offset, align)| Instr::Load(
                op,
                Memarg {
                    alignment_exp: align,
                    offset
                }
            )
        ),
        (
            proptest::sample::select(StoreOp::ALL),
            any::<u32>(),
            0u32..4
        )
            .prop_map(|(op, offset, align)| Instr::Store(
                op,
                Memarg {
                    alignment_exp: align,
                    offset
                }
            )),
        Just(Instr::MemorySize(Idx::from(0u32))),
        Just(Instr::MemoryGrow(Idx::from(0u32))),
    ]
}

fn arb_block_type() -> impl Strategy<Value = BlockType> {
    proptest::option::of(arb_val_type()).prop_map(BlockType)
}

/// A body with properly nested blocks, terminated by `end`.
fn arb_body() -> impl Strategy<Value = Vec<Instr>> {
    let leaf = vec(arb_flat_instr(), 0..8);
    leaf.prop_recursive(3, 64, 8, |inner| {
        (vec(inner, 1..4), arb_block_type(), 0usize..3).prop_map(|(seqs, bt, kind)| {
            let mut body = Vec::new();
            for (i, seq) in seqs.into_iter().enumerate() {
                if i == 0 {
                    match kind {
                        0 => body.push(Instr::Block(bt)),
                        1 => body.push(Instr::Loop(bt)),
                        _ => body.push(Instr::If(bt)),
                    }
                }
                body.extend(seq);
            }
            body.push(Instr::End);
            body
        })
    })
    .prop_map(|mut inner| {
        // Ensure the function's own terminating end exists.
        inner.push(Instr::End);
        inner
    })
}

fn arb_module() -> impl Strategy<Value = Module> {
    (
        vec(
            (arb_func_type(), vec(arb_val_type(), 0..4), arb_body()),
            0..4,
        ),
        vec((arb_func_type(), "[a-z]{1,8}", "[a-z]{1,8}"), 0..3),
        vec(arb_val(), 0..3),
        proptest::option::of((1u32..4, vec((0u32..100, vec(any::<u8>(), 0..16)), 0..2))),
    )
        .prop_map(|(locals_fns, imports, globals, memory)| {
            let mut module = Module::new();
            // Imports first so that decode(encode(m)) preserves order.
            for (ty, m, n) in imports {
                module.add_function_import(ty, &m, &n);
            }
            for (ty, locals, body) in locals_fns {
                module.add_function(ty, locals, body);
            }
            for init in globals {
                module.add_global(GlobalType::mutable(init.ty()), init);
            }
            // Clamp function/global references to existing entities: the
            // encoder requires in-bounds indices for its remapping.
            let func_count = module.functions.len() as u32;
            let global_count = module.globals.len() as u32;
            for function in &mut module.functions {
                let Some(code) = function.code_mut() else {
                    continue;
                };
                code.body.retain(|instr| match instr {
                    Instr::Call(_) => func_count > 0,
                    Instr::Global(..) => global_count > 0,
                    _ => true,
                });
                for instr in &mut code.body {
                    match instr {
                        Instr::Call(idx) => *idx = Idx::from(idx.to_u32() % func_count),
                        Instr::Global(_, idx) => *idx = Idx::from(idx.to_u32() % global_count),
                        _ => {}
                    }
                }
            }
            if let Some((pages, data)) = memory {
                let mut mem = Memory::new(Limits::at_least(pages));
                for (offset, bytes) in data {
                    mem.data.push(Data {
                        offset: vec![Instr::Const(Val::I32(offset as i32)), Instr::End],
                        bytes,
                    });
                }
                module.memories.push(mem);
            }
            module
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn module_codec_roundtrip(module in arb_module()) {
        let bytes = encode(&module);
        let decoded = decode(&bytes).unwrap();
        prop_assert_eq!(&module, &decoded);
        // Encoding a decoded module is a fixed point byte-for-byte.
        prop_assert_eq!(encode(&decoded), bytes);
    }
}
