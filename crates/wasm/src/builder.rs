//! Ergonomic builders for constructing modules programmatically (used by the
//! workload generators and throughout the test suites).

use crate::instr::{
    BinaryOp, BlockType, FunctionSpace, GlobalOp, GlobalSpace, Idx, Instr, Label, LoadOp, LocalOp,
    LocalSpace, Memarg, StoreOp, UnaryOp, Val,
};
use crate::module::{Data, Element, Memory, Module, Table};
use crate::types::{FuncType, GlobalType, Limits, ValType};

/// Builder for a [`Module`].
///
/// # Examples
///
/// ```
/// use wasabi_wasm::builder::ModuleBuilder;
/// use wasabi_wasm::types::ValType;
///
/// let mut builder = ModuleBuilder::new();
/// builder.memory(1, Some("memory"));
/// builder.function("add", &[ValType::I32, ValType::I32], &[ValType::I32], |f| {
///     f.get_local(0u32).get_local(1u32).i32_add();
/// });
/// let module = builder.finish();
/// wasabi_wasm::validate::validate(&module).expect("builder output is valid");
/// ```
#[derive(Debug, Default)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Start building an empty module.
    pub fn new() -> Self {
        ModuleBuilder::default()
    }

    /// Add a memory with `initial_pages` pages, optionally exported.
    pub fn memory(&mut self, initial_pages: u32, export: Option<&str>) -> &mut Self {
        let mut memory = Memory::new(Limits::at_least(initial_pages));
        if let Some(name) = export {
            memory.export.push(name.to_string());
        }
        self.module.memories.push(memory);
        self
    }

    /// Add a data segment to the (single) memory at the given offset.
    ///
    /// # Panics
    ///
    /// Panics if no memory was added yet.
    pub fn data(&mut self, offset: u32, bytes: Vec<u8>) -> &mut Self {
        self.module
            .memories
            .last_mut()
            .expect("add a memory before data segments")
            .data
            .push(Data {
                offset: vec![Instr::Const(Val::I32(offset as i32)), Instr::End],
                bytes,
            });
        self
    }

    /// Add a table with space for `size` elements.
    pub fn table(&mut self, size: u32) -> &mut Self {
        self.module
            .tables
            .push(Table::new(Limits::bounded(size, size)));
        self
    }

    /// Fill the table with the given functions starting at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if no table was added yet.
    pub fn elements(&mut self, offset: u32, functions: Vec<Idx<FunctionSpace>>) -> &mut Self {
        self.module
            .tables
            .last_mut()
            .expect("add a table before element segments")
            .elements
            .push(Element {
                offset: vec![Instr::Const(Val::I32(offset as i32)), Instr::End],
                functions,
            });
        self
    }

    /// Add a mutable global with an initial value.
    pub fn global(&mut self, init: Val) -> Idx<GlobalSpace> {
        self.module.add_global(GlobalType::mutable(init.ty()), init)
    }

    /// Add an imported function.
    pub fn import_function(
        &mut self,
        module: &str,
        name: &str,
        params: &[ValType],
        results: &[ValType],
    ) -> Idx<FunctionSpace> {
        self.module
            .add_function_import(FuncType::new(params, results), module, name)
    }

    /// Add a function built by the closure; exported under `export` (pass an
    /// empty string to keep it internal). The final `end` is appended
    /// automatically.
    pub fn function(
        &mut self,
        export: &str,
        params: &[ValType],
        results: &[ValType],
        build: impl FnOnce(&mut FunctionBuilder),
    ) -> Idx<FunctionSpace> {
        let mut fb = FunctionBuilder::new(params.len());
        build(&mut fb);
        fb.end_function();
        let idx = self
            .module
            .add_function(FuncType::new(params, results), fb.locals, fb.body);
        if !export.is_empty() {
            self.module.functions[idx.to_usize()]
                .export
                .push(export.to_string());
        }
        self.module.functions[idx.to_usize()].name = if export.is_empty() {
            None
        } else {
            Some(export.to_string())
        };
        idx
    }

    /// Set the start function.
    pub fn start(&mut self, idx: Idx<FunctionSpace>) -> &mut Self {
        self.module.start = Some(idx);
        self
    }

    /// Finish and return the module.
    pub fn finish(self) -> Module {
        self.module
    }
}

/// Builder for one function body.
///
/// All emit methods return `&mut Self` for chaining. Structured blocks opened
/// with [`FunctionBuilder::block`]/[`FunctionBuilder::loop_`]/
/// [`FunctionBuilder::if_`] must be closed with [`FunctionBuilder::end`];
/// the function's own terminating `end` is added by [`ModuleBuilder`].
#[derive(Debug)]
pub struct FunctionBuilder {
    param_count: usize,
    locals: Vec<ValType>,
    body: Vec<Instr>,
}

impl FunctionBuilder {
    fn new(param_count: usize) -> Self {
        FunctionBuilder {
            param_count,
            locals: Vec::new(),
            body: Vec::new(),
        }
    }

    fn end_function(&mut self) {
        self.body.push(Instr::End);
    }

    /// Declare a new local of type `ty` and return its index.
    pub fn local(&mut self, ty: ValType) -> Idx<LocalSpace> {
        self.locals.push(ty);
        Idx::from(self.param_count + self.locals.len() - 1)
    }

    /// Emit a raw instruction.
    pub fn instr(&mut self, instr: Instr) -> &mut Self {
        self.body.push(instr);
        self
    }

    /// Emit several raw instructions.
    pub fn instrs(&mut self, instrs: impl IntoIterator<Item = Instr>) -> &mut Self {
        self.body.extend(instrs);
        self
    }

    pub fn nop(&mut self) -> &mut Self {
        self.instr(Instr::Nop)
    }
    pub fn unreachable(&mut self) -> &mut Self {
        self.instr(Instr::Unreachable)
    }

    pub fn i32_const(&mut self, v: i32) -> &mut Self {
        self.instr(Instr::Const(Val::I32(v)))
    }
    pub fn i64_const(&mut self, v: i64) -> &mut Self {
        self.instr(Instr::Const(Val::I64(v)))
    }
    pub fn f32_const(&mut self, v: f32) -> &mut Self {
        self.instr(Instr::Const(Val::F32(v)))
    }
    pub fn f64_const(&mut self, v: f64) -> &mut Self {
        self.instr(Instr::Const(Val::F64(v)))
    }

    pub fn get_local(&mut self, idx: impl Into<Idx<LocalSpace>>) -> &mut Self {
        self.instr(Instr::Local(LocalOp::Get, idx.into()))
    }
    pub fn set_local(&mut self, idx: impl Into<Idx<LocalSpace>>) -> &mut Self {
        self.instr(Instr::Local(LocalOp::Set, idx.into()))
    }
    pub fn tee_local(&mut self, idx: impl Into<Idx<LocalSpace>>) -> &mut Self {
        self.instr(Instr::Local(LocalOp::Tee, idx.into()))
    }
    pub fn get_global(&mut self, idx: impl Into<Idx<GlobalSpace>>) -> &mut Self {
        self.instr(Instr::Global(GlobalOp::Get, idx.into()))
    }
    pub fn set_global(&mut self, idx: impl Into<Idx<GlobalSpace>>) -> &mut Self {
        self.instr(Instr::Global(GlobalOp::Set, idx.into()))
    }

    pub fn unary(&mut self, op: UnaryOp) -> &mut Self {
        self.instr(Instr::Unary(op))
    }
    pub fn binary(&mut self, op: BinaryOp) -> &mut Self {
        self.instr(Instr::Binary(op))
    }

    pub fn i32_add(&mut self) -> &mut Self {
        self.binary(BinaryOp::I32Add)
    }
    pub fn i32_sub(&mut self) -> &mut Self {
        self.binary(BinaryOp::I32Sub)
    }
    pub fn i32_mul(&mut self) -> &mut Self {
        self.binary(BinaryOp::I32Mul)
    }
    pub fn i32_lt_s(&mut self) -> &mut Self {
        self.binary(BinaryOp::I32LtS)
    }
    pub fn i32_eq(&mut self) -> &mut Self {
        self.binary(BinaryOp::I32Eq)
    }
    pub fn f64_add(&mut self) -> &mut Self {
        self.binary(BinaryOp::F64Add)
    }
    pub fn f64_sub(&mut self) -> &mut Self {
        self.binary(BinaryOp::F64Sub)
    }
    pub fn f64_mul(&mut self) -> &mut Self {
        self.binary(BinaryOp::F64Mul)
    }
    pub fn f64_div(&mut self) -> &mut Self {
        self.binary(BinaryOp::F64Div)
    }

    pub fn load(&mut self, op: LoadOp, offset: u32) -> &mut Self {
        self.instr(Instr::Load(
            op,
            Memarg::with_offset(op.access_bytes(), offset),
        ))
    }
    pub fn store(&mut self, op: StoreOp, offset: u32) -> &mut Self {
        self.instr(Instr::Store(
            op,
            Memarg::with_offset(op.access_bytes(), offset),
        ))
    }
    pub fn memory_size(&mut self) -> &mut Self {
        self.instr(Instr::MemorySize(Idx::from(0u32)))
    }
    pub fn memory_grow(&mut self) -> &mut Self {
        self.instr(Instr::MemoryGrow(Idx::from(0u32)))
    }

    pub fn block(&mut self, result: Option<ValType>) -> &mut Self {
        self.instr(Instr::Block(BlockType(result)))
    }
    pub fn loop_(&mut self, result: Option<ValType>) -> &mut Self {
        self.instr(Instr::Loop(BlockType(result)))
    }
    pub fn if_(&mut self, result: Option<ValType>) -> &mut Self {
        self.instr(Instr::If(BlockType(result)))
    }
    pub fn else_(&mut self) -> &mut Self {
        self.instr(Instr::Else)
    }
    pub fn end(&mut self) -> &mut Self {
        self.instr(Instr::End)
    }

    pub fn br(&mut self, label: u32) -> &mut Self {
        self.instr(Instr::Br(Label(label)))
    }
    pub fn br_if(&mut self, label: u32) -> &mut Self {
        self.instr(Instr::BrIf(Label(label)))
    }
    pub fn br_table(&mut self, table: Vec<u32>, default: u32) -> &mut Self {
        self.instr(Instr::BrTable {
            table: table.into_iter().map(Label).collect(),
            default: Label(default),
        })
    }
    pub fn return_(&mut self) -> &mut Self {
        self.instr(Instr::Return)
    }

    pub fn call(&mut self, idx: Idx<FunctionSpace>) -> &mut Self {
        self.instr(Instr::Call(idx))
    }
    pub fn call_indirect(&mut self, params: &[ValType], results: &[ValType]) -> &mut Self {
        self.instr(Instr::CallIndirect(
            FuncType::new(params, results),
            Idx::from(0u32),
        ))
    }

    pub fn drop_(&mut self) -> &mut Self {
        self.instr(Instr::Drop)
    }
    pub fn select(&mut self) -> &mut Self {
        self.instr(Instr::Select)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn builder_produces_valid_module() {
        let mut builder = ModuleBuilder::new();
        builder.memory(1, Some("memory"));
        let g = builder.global(Val::I32(0));
        builder.function("count", &[ValType::I32], &[ValType::I32], |f| {
            let acc = f.local(ValType::I32);
            f.i32_const(0).set_local(acc);
            f.block(None).loop_(None);
            f.get_local(acc)
                .get_local(0u32)
                .binary(BinaryOp::I32GeU)
                .br_if(1);
            f.get_local(acc).i32_const(1).i32_add().set_local(acc);
            f.br(0).end().end();
            f.get_local(acc).tee_local(acc);
            f.set_global(g);
            f.get_local(acc);
        });
        let module = builder.finish();
        validate(&module).expect("valid");
    }

    #[test]
    fn fresh_locals_after_params() {
        let mut builder = ModuleBuilder::new();
        builder.function("f", &[ValType::I32, ValType::F64], &[], |f| {
            let a = f.local(ValType::I64);
            let b = f.local(ValType::I32);
            assert_eq!(a.to_u32(), 2);
            assert_eq!(b.to_u32(), 3);
        });
        validate(&builder.finish()).expect("valid");
    }

    #[test]
    fn indirect_call_machinery() {
        let mut builder = ModuleBuilder::new();
        let callee = builder.function("", &[], &[ValType::I32], |f| {
            f.i32_const(7);
        });
        builder.table(1);
        builder.elements(0, vec![callee]);
        builder.function("main", &[], &[ValType::I32], |f| {
            f.i32_const(0).call_indirect(&[], &[ValType::I32]);
        });
        validate(&builder.finish()).expect("valid");
    }
}
