//! LEB128 variable-length integer encoding, as used throughout the
//! WebAssembly binary format (and DWARF, cf. paper footnote 13).
//!
//! Encoders always produce the canonical (shortest) encoding; the decoder
//! accepts any valid encoding up to the type's maximum byte length, including
//! non-canonical over-long encodings, like real engines do.

use crate::error::{DecodeError, DecodeErrorKind};

/// Maximum encoded length of a `u32`/`i32` LEB128 value.
pub const MAX_BYTES_U32: usize = 5;
/// Maximum encoded length of a `u64`/`i64` LEB128 value.
pub const MAX_BYTES_U64: usize = 10;

/// Append the unsigned LEB128 encoding of `value` to `out`.
///
/// The one- and two-byte cases — the overwhelming majority of u32 LEB128s
/// in a module (indices, counts, section and body lengths, memargs) — are
/// unrolled; only values ≥ 2^14 fall back to the generic loop.
#[inline]
pub fn write_u32(out: &mut Vec<u8>, mut value: u32) {
    if value < 0x80 {
        out.push(value as u8);
        return;
    }
    if value < 0x4000 {
        out.extend_from_slice(&[(value as u8 & 0x7f) | 0x80, (value >> 7) as u8]);
        return;
    }
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append the unsigned LEB128 encoding of `value` to `out`.
#[inline]
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    if value < 0x80 {
        out.push(value as u8);
        return;
    }
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append the signed LEB128 encoding of `value` to `out`.
pub fn write_i32(out: &mut Vec<u8>, value: i32) {
    write_i64(out, i64::from(value));
}

/// Append the signed LEB128 encoding of `value` to `out`.
pub fn write_i64(out: &mut Vec<u8>, mut value: i64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        let sign_bit_clear = byte & 0x40 == 0;
        let done = (value == 0 && sign_bit_clear) || (value == -1 && !sign_bit_clear);
        if done {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Number of bytes the unsigned LEB128 encoding of `value` occupies,
/// computed without encoding (⌈significant bits / 7⌉, minimum 1).
pub fn len_u32(value: u32) -> usize {
    let bits = (32 - value.leading_zeros()).max(1);
    bits.div_ceil(7) as usize
}

/// A cursor over a byte slice with position tracking for error reporting.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Create a reader over the full slice.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Current byte offset from the start of the slice.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// `true` once all bytes are consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn eof(&self) -> DecodeError {
        DecodeError::new(self.pos, DecodeErrorKind::UnexpectedEof)
    }

    /// Read a single byte.
    pub fn byte(&mut self) -> Result<u8, DecodeError> {
        let b = *self.bytes.get(self.pos).ok_or_else(|| self.eof())?;
        self.pos += 1;
        Ok(b)
    }

    /// Read exactly `n` bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(self.eof());
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read an unsigned LEB128 `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let start = self.pos;
        let mut result: u32 = 0;
        let mut shift = 0;
        loop {
            let byte = self.byte()?;
            let payload = u32::from(byte & 0x7f);
            // The 5th byte of a u32 may only contribute 4 bits.
            if shift == 28 && payload > 0x0f {
                return Err(DecodeError::new(start, DecodeErrorKind::IntTooLarge));
            }
            result |= payload << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
            if shift >= 35 {
                return Err(DecodeError::new(start, DecodeErrorKind::IntTooLarge));
            }
        }
    }

    /// Read a signed LEB128 `i32`.
    pub fn i32(&mut self) -> Result<i32, DecodeError> {
        let start = self.pos;
        let v = self.i64_with_max_bytes(MAX_BYTES_U32, start)?;
        // The decoder already limits to 35 significant bits; fold to i32 by
        // checking the value range.
        i32::try_from(v).map_err(|_| DecodeError::new(start, DecodeErrorKind::IntTooLarge))
    }

    /// Read a signed LEB128 `i64`.
    pub fn i64(&mut self) -> Result<i64, DecodeError> {
        let start = self.pos;
        self.i64_with_max_bytes(MAX_BYTES_U64, start)
    }

    fn i64_with_max_bytes(&mut self, max_bytes: usize, start: usize) -> Result<i64, DecodeError> {
        let mut result: i64 = 0;
        let mut shift = 0u32;
        for _ in 0..max_bytes {
            let byte = self.byte()?;
            if shift < 63 {
                result |= i64::from(byte & 0x7f) << shift;
            } else {
                // Final bits: only sign-extension patterns are representable.
                result |= i64::from(byte & 0x01) << shift;
            }
            shift += 7;
            if byte & 0x80 == 0 {
                // Sign-extend from the last written bit position.
                if shift < 64 && byte & 0x40 != 0 {
                    result |= -1i64 << shift;
                }
                return Ok(result);
            }
        }
        Err(DecodeError::new(start, DecodeErrorKind::IntTooLarge))
    }

    /// Read a little-endian IEEE 754 `f32`.
    pub fn f32(&mut self) -> Result<f32, DecodeError> {
        let bytes = self.bytes(4)?;
        Ok(f32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    /// Read a little-endian IEEE 754 `f64`.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        let bytes = self.bytes(8)?;
        Ok(f64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Read a length-prefixed UTF-8 name.
    pub fn name(&mut self) -> Result<String, DecodeError> {
        let start = self.pos;
        let len = self.u32()? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| DecodeError::new(start, DecodeErrorKind::InvalidUtf8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_u32(v: u32) -> u32 {
        let mut buf = Vec::new();
        write_u32(&mut buf, v);
        Reader::new(&buf).u32().expect("decodes")
    }

    fn roundtrip_i64(v: i64) -> i64 {
        let mut buf = Vec::new();
        write_i64(&mut buf, v);
        Reader::new(&buf).i64().expect("decodes")
    }

    #[test]
    fn unrolled_u32_fast_paths_match_the_generic_loop() {
        // Cover every unroll boundary: 1-byte, 2-byte, and loop fallback.
        for v in [
            0u32,
            1,
            0x7e,
            0x7f,
            0x80,
            0x81,
            0x3fff,
            0x4000,
            0x4001,
            0x1f_ffff,
            0x20_0000,
            u32::MAX,
        ] {
            let mut fast = Vec::new();
            write_u32(&mut fast, v);
            // Reference: the generic u64 loop produces the same canonical
            // encoding for any u32 value.
            let mut generic = Vec::new();
            write_u64(&mut generic, u64::from(v));
            assert_eq!(fast, generic, "value {v:#x}");
            assert_eq!(fast.len(), len_u32(v), "len_u32 for {v:#x}");
            assert_eq!(Reader::new(&fast).u32().expect("decodes"), v);
        }
    }

    #[test]
    fn u32_known_encodings() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 624485);
        assert_eq!(buf, vec![0xe5, 0x8e, 0x26]);
        buf.clear();
        write_u32(&mut buf, 0);
        assert_eq!(buf, vec![0x00]);
    }

    #[test]
    fn i64_known_encodings() {
        let mut buf = Vec::new();
        write_i64(&mut buf, -123456);
        assert_eq!(buf, vec![0xc0, 0xbb, 0x78]);
    }

    #[test]
    fn u32_boundaries() {
        for v in [0, 1, 127, 128, 16383, 16384, u32::MAX - 1, u32::MAX] {
            assert_eq!(roundtrip_u32(v), v);
        }
    }

    #[test]
    fn i64_boundaries() {
        for v in [
            0,
            1,
            -1,
            63,
            64,
            -64,
            -65,
            i64::from(i32::MAX),
            i64::from(i32::MIN),
            i64::MAX,
            i64::MIN,
        ] {
            assert_eq!(roundtrip_i64(v), v);
        }
    }

    #[test]
    fn i32_roundtrip_boundaries() {
        for v in [0, 1, -1, i32::MAX, i32::MIN, 0x40, -0x41] {
            let mut buf = Vec::new();
            write_i32(&mut buf, v);
            assert_eq!(Reader::new(&buf).i32().expect("decodes"), v);
        }
    }

    #[test]
    fn non_canonical_encoding_accepted() {
        // 0 encoded in two bytes.
        let buf = [0x80, 0x00];
        assert_eq!(Reader::new(&buf).u32().expect("decodes"), 0);
    }

    #[test]
    fn overlong_u32_rejected() {
        let buf = [0x80, 0x80, 0x80, 0x80, 0x80, 0x01];
        assert!(Reader::new(&buf).u32().is_err());
    }

    #[test]
    fn u32_fifth_byte_overflow_rejected() {
        // 5th byte contributes more than 4 bits.
        let buf = [0xff, 0xff, 0xff, 0xff, 0x7f];
        assert!(Reader::new(&buf).u32().is_err());
    }

    #[test]
    fn truncated_input_is_eof() {
        let buf = [0x80];
        let err = Reader::new(&buf).u32().expect_err("must fail");
        assert_eq!(err.kind(), DecodeErrorKind::UnexpectedEof);
    }

    #[test]
    fn float_roundtrip() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1.5f32.to_le_bytes());
        buf.extend_from_slice(&(-2.25f64).to_le_bytes());
        let mut r = Reader::new(&buf);
        assert_eq!(r.f32().expect("f32"), 1.5);
        assert_eq!(r.f64().expect("f64"), -2.25);
    }

    #[test]
    fn name_decoding() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 5);
        buf.extend_from_slice(b"hello");
        assert_eq!(Reader::new(&buf).name().expect("name"), "hello");
    }

    #[test]
    fn invalid_utf8_name_rejected() {
        let buf = [0x02, 0xff, 0xfe];
        let err = Reader::new(&buf).name().expect_err("must fail");
        assert_eq!(err.kind(), DecodeErrorKind::InvalidUtf8);
    }
}
