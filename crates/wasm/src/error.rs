//! Error types for decoding and validation.

use std::error::Error;
use std::fmt;

/// Why a binary failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof,
    /// Magic number `\0asm` missing.
    InvalidMagic,
    /// Unsupported binary version (only 1 is supported).
    InvalidVersion,
    /// LEB128 integer too long or out of range for its type.
    IntTooLarge,
    /// A name was not valid UTF-8.
    InvalidUtf8,
    /// Unknown or unsupported opcode byte.
    InvalidOpcode(u8),
    /// Unknown value/element/block type byte.
    InvalidType(u8),
    /// Unknown import/export kind byte.
    InvalidKind(u8),
    /// Section id out of range or out of order.
    InvalidSection(u8),
    /// Section or body size did not match its content.
    SizeMismatch,
    /// An index referred to a non-existent entity.
    IndexOutOfBounds,
    /// Anything else (malformed structure).
    Malformed(&'static str),
}

/// Error produced when decoding a WebAssembly binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    offset: usize,
    kind: DecodeErrorKind,
}

impl DecodeError {
    /// Create an error at the given byte offset.
    pub fn new(offset: usize, kind: DecodeErrorKind) -> Self {
        DecodeError { offset, kind }
    }

    /// Byte offset in the input where decoding failed.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// The failure category.
    pub fn kind(&self) -> DecodeErrorKind {
        self.kind
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.kind {
            DecodeErrorKind::UnexpectedEof => "unexpected end of input".to_string(),
            DecodeErrorKind::InvalidMagic => "invalid magic number".to_string(),
            DecodeErrorKind::InvalidVersion => "unsupported binary version".to_string(),
            DecodeErrorKind::IntTooLarge => "integer representation too long".to_string(),
            DecodeErrorKind::InvalidUtf8 => "name is not valid utf-8".to_string(),
            DecodeErrorKind::InvalidOpcode(b) => format!("invalid opcode 0x{b:02x}"),
            DecodeErrorKind::InvalidType(b) => format!("invalid type byte 0x{b:02x}"),
            DecodeErrorKind::InvalidKind(b) => format!("invalid kind byte 0x{b:02x}"),
            DecodeErrorKind::InvalidSection(b) => format!("invalid section id {b}"),
            DecodeErrorKind::SizeMismatch => "declared size does not match content".to_string(),
            DecodeErrorKind::IndexOutOfBounds => "index out of bounds".to_string(),
            DecodeErrorKind::Malformed(msg) => format!("malformed module: {msg}"),
        };
        write!(f, "decode error at byte {}: {what}", self.offset)
    }
}

impl Error for DecodeError {}

/// Error produced by the validator (type checker).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// Function index, if validation failed inside a function body.
    pub func: Option<u32>,
    /// Instruction index within the function body, if applicable.
    pub instr: Option<u32>,
    /// Human-readable description of the violated rule.
    pub message: String,
}

impl ValidationError {
    /// Validation error not tied to a particular instruction.
    pub fn module(message: impl Into<String>) -> Self {
        ValidationError {
            func: None,
            instr: None,
            message: message.into(),
        }
    }

    /// Validation error at a particular instruction of a function.
    pub fn at(func: u32, instr: u32, message: impl Into<String>) -> Self {
        ValidationError {
            func: Some(func),
            instr: Some(instr),
            message: message.into(),
        }
    }
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.func, self.instr) {
            (Some(func), Some(instr)) => {
                write!(
                    f,
                    "validation error at function {func}, instruction {instr}: {}",
                    self.message
                )
            }
            (Some(func), None) => {
                write!(f, "validation error in function {func}: {}", self.message)
            }
            _ => write!(f, "validation error: {}", self.message),
        }
    }
}

impl Error for ValidationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_error_display() {
        let e = DecodeError::new(12, DecodeErrorKind::InvalidOpcode(0xff));
        assert_eq!(
            e.to_string(),
            "decode error at byte 12: invalid opcode 0xff"
        );
    }

    #[test]
    fn validation_error_display() {
        let e = ValidationError::at(3, 7, "type mismatch");
        assert!(e.to_string().contains("function 3"));
        assert!(e.to_string().contains("instruction 7"));
        let m = ValidationError::module("no table");
        assert!(m.to_string().contains("no table"));
    }
}
