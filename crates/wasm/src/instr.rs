//! The complete WebAssembly 1.0 instruction set.
//!
//! Instruction names follow the paper-era (pre-standardization) text format
//! used throughout the Wasabi paper, e.g. `get_local`, `i32.wrap/i64`,
//! `f32.convert_s/i32`. Grouping mirrors the paper's hook API: all 47 unary
//! and 76 binary numeric instructions are represented by [`UnaryOp`] and
//! [`BinaryOp`] (123 numeric instructions in total, as counted in §2.3).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;

use serde::{Deserialize, Serialize};

use crate::types::{FuncType, ValType};

/// A typed index into one of the module's index spaces.
///
/// The phantom parameter prevents, e.g., accidentally using a global index
/// where a function index is expected (C-NEWTYPE).
#[derive(Serialize, Deserialize)]
#[serde(transparent)]
pub struct Idx<T> {
    index: u32,
    #[serde(skip)]
    _marker: PhantomData<fn() -> T>,
}

impl<T> Idx<T> {
    /// Wrap a raw `u32` index.
    pub fn new(index: u32) -> Self {
        Idx {
            index,
            _marker: PhantomData,
        }
    }

    /// The raw index value.
    pub fn to_u32(self) -> u32 {
        self.index
    }

    /// The raw index as `usize`, for container indexing.
    pub fn to_usize(self) -> usize {
        self.index as usize
    }
}

impl<T> From<u32> for Idx<T> {
    fn from(index: u32) -> Self {
        Idx::new(index)
    }
}

impl<T> From<usize> for Idx<T> {
    fn from(index: usize) -> Self {
        Idx::new(u32::try_from(index).expect("index space exceeds u32"))
    }
}

// Manual impls: derive would put bounds on `T` (C-STRUCT-BOUNDS).
impl<T> Clone for Idx<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Idx<T> {}
impl<T> PartialEq for Idx<T> {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index
    }
}
impl<T> Eq for Idx<T> {}
impl<T> PartialOrd for Idx<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Idx<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.index.cmp(&other.index)
    }
}
impl<T> Hash for Idx<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.index.hash(state);
    }
}
impl<T> fmt::Debug for Idx<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.index)
    }
}
impl<T> fmt::Display for Idx<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.index)
    }
}

/// Marker for the function index space (see [`crate::module::Function`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FunctionSpace {}
/// Marker for the global index space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GlobalSpace {}
/// Marker for the per-function local index space (params followed by locals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LocalSpace {}
/// Marker for the table index space (at most one table in Wasm 1.0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableSpace {}
/// Marker for the memory index space (at most one memory in Wasm 1.0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemorySpace {}

/// A relative branch label: `0` targets the innermost enclosing block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Label(pub u32);

impl Label {
    pub fn to_u32(self) -> u32 {
        self.0
    }
    pub fn to_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Result type of a `block`/`loop`/`if` (empty or a single value in 1.0).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockType(pub Option<ValType>);

impl fmt::Display for BlockType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Some(t) => write!(f, "{t}"),
            None => Ok(()),
        }
    }
}

/// Static immediate of a load/store: alignment exponent and address offset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Memarg {
    /// Alignment as a power of two exponent (purely a hint in Wasm).
    pub alignment_exp: u32,
    /// Constant offset added to the dynamic address.
    pub offset: u32,
}

impl Memarg {
    /// Natural alignment for an access of `bytes` width, zero offset.
    pub fn natural(bytes: u32) -> Self {
        Memarg {
            alignment_exp: bytes.trailing_zeros(),
            offset: 0,
        }
    }

    /// Natural alignment with the given constant offset.
    pub fn with_offset(bytes: u32, offset: u32) -> Self {
        Memarg {
            alignment_exp: bytes.trailing_zeros(),
            offset,
        }
    }
}

/// An immediate constant value (payload of the four `*.const` instructions).
///
/// `PartialEq`/`Hash` compare floats **bit-wise** so that `Val` is usable in
/// round-trip tests and hook-map keys even for NaN payloads.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum Val {
    I32(i32),
    I64(i64),
    F32(f32),
    F64(f64),
}

impl Val {
    /// The type of this value.
    pub fn ty(self) -> ValType {
        match self {
            Val::I32(_) => ValType::I32,
            Val::I64(_) => ValType::I64,
            Val::F32(_) => ValType::F32,
            Val::F64(_) => ValType::F64,
        }
    }

    /// The all-zeroes value of the given type (default for locals).
    pub fn zero(ty: ValType) -> Val {
        match ty {
            ValType::I32 => Val::I32(0),
            ValType::I64 => Val::I64(0),
            ValType::F32 => Val::F32(0.0),
            ValType::F64 => Val::F64(0.0),
        }
    }

    /// The `i32` payload, if this is an `i32` value.
    pub fn as_i32(self) -> Option<i32> {
        match self {
            Val::I32(v) => Some(v),
            _ => None,
        }
    }

    /// The `i64` payload, if this is an `i64` value.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Val::I64(v) => Some(v),
            _ => None,
        }
    }

    /// The `f32` payload, if this is an `f32` value.
    pub fn as_f32(self) -> Option<f32> {
        match self {
            Val::F32(v) => Some(v),
            _ => None,
        }
    }

    /// The `f64` payload, if this is an `f64` value.
    pub fn as_f64(self) -> Option<f64> {
        match self {
            Val::F64(v) => Some(v),
            _ => None,
        }
    }
}

impl PartialEq for Val {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Val::I32(a), Val::I32(b)) => a == b,
            (Val::I64(a), Val::I64(b)) => a == b,
            (Val::F32(a), Val::F32(b)) => a.to_bits() == b.to_bits(),
            (Val::F64(a), Val::F64(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}
impl Eq for Val {}
impl Hash for Val {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Val::I32(v) => (0u8, *v).hash(state),
            Val::I64(v) => (1u8, *v).hash(state),
            Val::F32(v) => (2u8, v.to_bits()).hash(state),
            Val::F64(v) => (3u8, v.to_bits()).hash(state),
        }
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::I32(v) => write!(f, "{v}"),
            Val::I64(v) => write!(f, "{v}"),
            Val::F32(v) => write!(f, "{v}"),
            Val::F64(v) => write!(f, "{v}"),
        }
    }
}

impl From<i32> for Val {
    fn from(v: i32) -> Self {
        Val::I32(v)
    }
}
impl From<i64> for Val {
    fn from(v: i64) -> Self {
        Val::I64(v)
    }
}
impl From<f32> for Val {
    fn from(v: f32) -> Self {
        Val::F32(v)
    }
}
impl From<f64> for Val {
    fn from(v: f64) -> Self {
        Val::F64(v)
    }
}

macro_rules! op_enum {
    (
        $(#[$meta:meta])*
        $name:ident {
            $( $variant:ident = $opcode:literal, $text:literal; )*
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        pub enum $name {
            $( $variant, )*
        }

        impl $name {
            /// All operations of this kind, in opcode order.
            pub const ALL: &'static [$name] = &[ $( $name::$variant, )* ];

            /// The text-format mnemonic (paper-era naming).
            pub fn name(self) -> &'static str {
                match self {
                    $( $name::$variant => $text, )*
                }
            }

            /// The binary-format opcode byte.
            pub fn opcode(self) -> u8 {
                match self {
                    $( $name::$variant => $opcode, )*
                }
            }

            /// Parse an opcode byte back into the operation.
            pub fn from_opcode(byte: u8) -> Option<Self> {
                match byte {
                    $( $opcode => Some($name::$variant), )*
                    _ => None,
                }
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.name())
            }
        }
    };
}

op_enum! {
    /// The 47 unary numeric instructions: tests, int/float unary ops, and all
    /// 25 conversions.
    UnaryOp {
        I32Eqz = 0x45, "i32.eqz";
        I64Eqz = 0x50, "i64.eqz";
        I32Clz = 0x67, "i32.clz";
        I32Ctz = 0x68, "i32.ctz";
        I32Popcnt = 0x69, "i32.popcnt";
        I64Clz = 0x79, "i64.clz";
        I64Ctz = 0x7a, "i64.ctz";
        I64Popcnt = 0x7b, "i64.popcnt";
        F32Abs = 0x8b, "f32.abs";
        F32Neg = 0x8c, "f32.neg";
        F32Ceil = 0x8d, "f32.ceil";
        F32Floor = 0x8e, "f32.floor";
        F32Trunc = 0x8f, "f32.trunc";
        F32Nearest = 0x90, "f32.nearest";
        F32Sqrt = 0x91, "f32.sqrt";
        F64Abs = 0x99, "f64.abs";
        F64Neg = 0x9a, "f64.neg";
        F64Ceil = 0x9b, "f64.ceil";
        F64Floor = 0x9c, "f64.floor";
        F64Trunc = 0x9d, "f64.trunc";
        F64Nearest = 0x9e, "f64.nearest";
        F64Sqrt = 0x9f, "f64.sqrt";
        I32WrapI64 = 0xa7, "i32.wrap/i64";
        I32TruncSF32 = 0xa8, "i32.trunc_s/f32";
        I32TruncUF32 = 0xa9, "i32.trunc_u/f32";
        I32TruncSF64 = 0xaa, "i32.trunc_s/f64";
        I32TruncUF64 = 0xab, "i32.trunc_u/f64";
        I64ExtendSI32 = 0xac, "i64.extend_s/i32";
        I64ExtendUI32 = 0xad, "i64.extend_u/i32";
        I64TruncSF32 = 0xae, "i64.trunc_s/f32";
        I64TruncUF32 = 0xaf, "i64.trunc_u/f32";
        I64TruncSF64 = 0xb0, "i64.trunc_s/f64";
        I64TruncUF64 = 0xb1, "i64.trunc_u/f64";
        F32ConvertSI32 = 0xb2, "f32.convert_s/i32";
        F32ConvertUI32 = 0xb3, "f32.convert_u/i32";
        F32ConvertSI64 = 0xb4, "f32.convert_s/i64";
        F32ConvertUI64 = 0xb5, "f32.convert_u/i64";
        F32DemoteF64 = 0xb6, "f32.demote/f64";
        F64ConvertSI32 = 0xb7, "f64.convert_s/i32";
        F64ConvertUI32 = 0xb8, "f64.convert_u/i32";
        F64ConvertSI64 = 0xb9, "f64.convert_s/i64";
        F64ConvertUI64 = 0xba, "f64.convert_u/i64";
        F64PromoteF32 = 0xbb, "f64.promote/f32";
        I32ReinterpretF32 = 0xbc, "i32.reinterpret/f32";
        I64ReinterpretF64 = 0xbd, "i64.reinterpret/f64";
        F32ReinterpretI32 = 0xbe, "f32.reinterpret/i32";
        F64ReinterpretI64 = 0xbf, "f64.reinterpret/i64";
    }
}

impl UnaryOp {
    /// Input type of the operation.
    pub fn input(self) -> ValType {
        use UnaryOp::*;
        match self {
            I32Eqz | I32Clz | I32Ctz | I32Popcnt | I64ExtendSI32 | I64ExtendUI32
            | F32ConvertSI32 | F32ConvertUI32 | F64ConvertSI32 | F64ConvertUI32
            | F32ReinterpretI32 => ValType::I32,
            I64Eqz | I64Clz | I64Ctz | I64Popcnt | I32WrapI64 | F32ConvertSI64 | F32ConvertUI64
            | F64ConvertSI64 | F64ConvertUI64 | F64ReinterpretI64 => ValType::I64,
            F32Abs | F32Neg | F32Ceil | F32Floor | F32Trunc | F32Nearest | F32Sqrt
            | I32TruncSF32 | I32TruncUF32 | I64TruncSF32 | I64TruncUF32 | F64PromoteF32
            | I32ReinterpretF32 => ValType::F32,
            F64Abs | F64Neg | F64Ceil | F64Floor | F64Trunc | F64Nearest | F64Sqrt
            | I32TruncSF64 | I32TruncUF64 | I64TruncSF64 | I64TruncUF64 | F32DemoteF64
            | I64ReinterpretF64 => ValType::F64,
        }
    }

    /// Result type of the operation.
    pub fn result(self) -> ValType {
        use UnaryOp::*;
        match self {
            I32Eqz | I64Eqz | I32Clz | I32Ctz | I32Popcnt | I32WrapI64 | I32TruncSF32
            | I32TruncUF32 | I32TruncSF64 | I32TruncUF64 | I32ReinterpretF32 => ValType::I32,
            I64Clz | I64Ctz | I64Popcnt | I64ExtendSI32 | I64ExtendUI32 | I64TruncSF32
            | I64TruncUF32 | I64TruncSF64 | I64TruncUF64 | I64ReinterpretF64 => ValType::I64,
            F32Abs | F32Neg | F32Ceil | F32Floor | F32Trunc | F32Nearest | F32Sqrt
            | F32ConvertSI32 | F32ConvertUI32 | F32ConvertSI64 | F32ConvertUI64 | F32DemoteF64
            | F32ReinterpretI32 => ValType::F32,
            F64Abs | F64Neg | F64Ceil | F64Floor | F64Trunc | F64Nearest | F64Sqrt
            | F64ConvertSI32 | F64ConvertUI32 | F64ConvertSI64 | F64ConvertUI64 | F64PromoteF32
            | F64ReinterpretI64 => ValType::F64,
        }
    }
}

op_enum! {
    /// The 76 binary numeric instructions: comparisons and arithmetic.
    BinaryOp {
        I32Eq = 0x46, "i32.eq";
        I32Ne = 0x47, "i32.ne";
        I32LtS = 0x48, "i32.lt_s";
        I32LtU = 0x49, "i32.lt_u";
        I32GtS = 0x4a, "i32.gt_s";
        I32GtU = 0x4b, "i32.gt_u";
        I32LeS = 0x4c, "i32.le_s";
        I32LeU = 0x4d, "i32.le_u";
        I32GeS = 0x4e, "i32.ge_s";
        I32GeU = 0x4f, "i32.ge_u";
        I64Eq = 0x51, "i64.eq";
        I64Ne = 0x52, "i64.ne";
        I64LtS = 0x53, "i64.lt_s";
        I64LtU = 0x54, "i64.lt_u";
        I64GtS = 0x55, "i64.gt_s";
        I64GtU = 0x56, "i64.gt_u";
        I64LeS = 0x57, "i64.le_s";
        I64LeU = 0x58, "i64.le_u";
        I64GeS = 0x59, "i64.ge_s";
        I64GeU = 0x5a, "i64.ge_u";
        F32Eq = 0x5b, "f32.eq";
        F32Ne = 0x5c, "f32.ne";
        F32Lt = 0x5d, "f32.lt";
        F32Gt = 0x5e, "f32.gt";
        F32Le = 0x5f, "f32.le";
        F32Ge = 0x60, "f32.ge";
        F64Eq = 0x61, "f64.eq";
        F64Ne = 0x62, "f64.ne";
        F64Lt = 0x63, "f64.lt";
        F64Gt = 0x64, "f64.gt";
        F64Le = 0x65, "f64.le";
        F64Ge = 0x66, "f64.ge";
        I32Add = 0x6a, "i32.add";
        I32Sub = 0x6b, "i32.sub";
        I32Mul = 0x6c, "i32.mul";
        I32DivS = 0x6d, "i32.div_s";
        I32DivU = 0x6e, "i32.div_u";
        I32RemS = 0x6f, "i32.rem_s";
        I32RemU = 0x70, "i32.rem_u";
        I32And = 0x71, "i32.and";
        I32Or = 0x72, "i32.or";
        I32Xor = 0x73, "i32.xor";
        I32Shl = 0x74, "i32.shl";
        I32ShrS = 0x75, "i32.shr_s";
        I32ShrU = 0x76, "i32.shr_u";
        I32Rotl = 0x77, "i32.rotl";
        I32Rotr = 0x78, "i32.rotr";
        I64Add = 0x7c, "i64.add";
        I64Sub = 0x7d, "i64.sub";
        I64Mul = 0x7e, "i64.mul";
        I64DivS = 0x7f, "i64.div_s";
        I64DivU = 0x80, "i64.div_u";
        I64RemS = 0x81, "i64.rem_s";
        I64RemU = 0x82, "i64.rem_u";
        I64And = 0x83, "i64.and";
        I64Or = 0x84, "i64.or";
        I64Xor = 0x85, "i64.xor";
        I64Shl = 0x86, "i64.shl";
        I64ShrS = 0x87, "i64.shr_s";
        I64ShrU = 0x88, "i64.shr_u";
        I64Rotl = 0x89, "i64.rotl";
        I64Rotr = 0x8a, "i64.rotr";
        F32Add = 0x92, "f32.add";
        F32Sub = 0x93, "f32.sub";
        F32Mul = 0x94, "f32.mul";
        F32Div = 0x95, "f32.div";
        F32Min = 0x96, "f32.min";
        F32Max = 0x97, "f32.max";
        F32Copysign = 0x98, "f32.copysign";
        F64Add = 0xa0, "f64.add";
        F64Sub = 0xa1, "f64.sub";
        F64Mul = 0xa2, "f64.mul";
        F64Div = 0xa3, "f64.div";
        F64Min = 0xa4, "f64.min";
        F64Max = 0xa5, "f64.max";
        F64Copysign = 0xa6, "f64.copysign";
    }
}

impl BinaryOp {
    /// Type of both inputs (Wasm binary numeric ops are homogeneous).
    pub fn input(self) -> ValType {
        use BinaryOp::*;
        match self {
            I32Eq | I32Ne | I32LtS | I32LtU | I32GtS | I32GtU | I32LeS | I32LeU | I32GeS
            | I32GeU | I32Add | I32Sub | I32Mul | I32DivS | I32DivU | I32RemS | I32RemU
            | I32And | I32Or | I32Xor | I32Shl | I32ShrS | I32ShrU | I32Rotl | I32Rotr => {
                ValType::I32
            }
            I64Eq | I64Ne | I64LtS | I64LtU | I64GtS | I64GtU | I64LeS | I64LeU | I64GeS
            | I64GeU | I64Add | I64Sub | I64Mul | I64DivS | I64DivU | I64RemS | I64RemU
            | I64And | I64Or | I64Xor | I64Shl | I64ShrS | I64ShrU | I64Rotl | I64Rotr => {
                ValType::I64
            }
            F32Eq | F32Ne | F32Lt | F32Gt | F32Le | F32Ge | F32Add | F32Sub | F32Mul | F32Div
            | F32Min | F32Max | F32Copysign => ValType::F32,
            F64Eq | F64Ne | F64Lt | F64Gt | F64Le | F64Ge | F64Add | F64Sub | F64Mul | F64Div
            | F64Min | F64Max | F64Copysign => ValType::F64,
        }
    }

    /// Result type (`i32` for comparisons, the input type otherwise).
    pub fn result(self) -> ValType {
        if self.is_comparison() {
            ValType::I32
        } else {
            self.input()
        }
    }

    /// `true` for the 32 relational operations (which produce an `i32` bool).
    pub fn is_comparison(self) -> bool {
        (self.opcode() >= 0x46 && self.opcode() <= 0x66) && self.opcode() != 0x50
    }
}

op_enum! {
    /// The 14 load instructions.
    LoadOp {
        I32Load = 0x28, "i32.load";
        I64Load = 0x29, "i64.load";
        F32Load = 0x2a, "f32.load";
        F64Load = 0x2b, "f64.load";
        I32Load8S = 0x2c, "i32.load8_s";
        I32Load8U = 0x2d, "i32.load8_u";
        I32Load16S = 0x2e, "i32.load16_s";
        I32Load16U = 0x2f, "i32.load16_u";
        I64Load8S = 0x30, "i64.load8_s";
        I64Load8U = 0x31, "i64.load8_u";
        I64Load16S = 0x32, "i64.load16_s";
        I64Load16U = 0x33, "i64.load16_u";
        I64Load32S = 0x34, "i64.load32_s";
        I64Load32U = 0x35, "i64.load32_u";
    }
}

impl LoadOp {
    /// Type of the loaded value.
    pub fn result(self) -> ValType {
        use LoadOp::*;
        match self {
            I32Load | I32Load8S | I32Load8U | I32Load16S | I32Load16U => ValType::I32,
            I64Load | I64Load8S | I64Load8U | I64Load16S | I64Load16U | I64Load32S | I64Load32U => {
                ValType::I64
            }
            F32Load => ValType::F32,
            F64Load => ValType::F64,
        }
    }

    /// Number of bytes read from memory.
    pub fn access_bytes(self) -> u32 {
        use LoadOp::*;
        match self {
            I32Load8S | I32Load8U | I64Load8S | I64Load8U => 1,
            I32Load16S | I32Load16U | I64Load16S | I64Load16U => 2,
            I32Load | F32Load | I64Load32S | I64Load32U => 4,
            I64Load | F64Load => 8,
        }
    }
}

op_enum! {
    /// The 9 store instructions.
    StoreOp {
        I32Store = 0x36, "i32.store";
        I64Store = 0x37, "i64.store";
        F32Store = 0x38, "f32.store";
        F64Store = 0x39, "f64.store";
        I32Store8 = 0x3a, "i32.store8";
        I32Store16 = 0x3b, "i32.store16";
        I64Store8 = 0x3c, "i64.store8";
        I64Store16 = 0x3d, "i64.store16";
        I64Store32 = 0x3e, "i64.store32";
    }
}

impl StoreOp {
    /// Type of the stored operand.
    pub fn value_type(self) -> ValType {
        use StoreOp::*;
        match self {
            I32Store | I32Store8 | I32Store16 => ValType::I32,
            I64Store | I64Store8 | I64Store16 | I64Store32 => ValType::I64,
            F32Store => ValType::F32,
            F64Store => ValType::F64,
        }
    }

    /// Number of bytes written to memory.
    pub fn access_bytes(self) -> u32 {
        use StoreOp::*;
        match self {
            I32Store8 | I64Store8 => 1,
            I32Store16 | I64Store16 => 2,
            I32Store | F32Store | I64Store32 => 4,
            I64Store | F64Store => 8,
        }
    }
}

/// Operations on locals: `get_local`, `set_local`, `tee_local`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LocalOp {
    Get,
    Set,
    Tee,
}

impl LocalOp {
    pub fn name(self) -> &'static str {
        match self {
            LocalOp::Get => "get_local",
            LocalOp::Set => "set_local",
            LocalOp::Tee => "tee_local",
        }
    }
}

impl fmt::Display for LocalOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Operations on globals: `get_global`, `set_global`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum GlobalOp {
    Get,
    Set,
}

impl GlobalOp {
    pub fn name(self) -> &'static str {
        match self {
            GlobalOp::Get => "get_global",
            GlobalOp::Set => "set_global",
        }
    }
}

impl fmt::Display for GlobalOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single WebAssembly instruction (paper Fig. 3, `instr`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Instr {
    Unreachable,
    Nop,

    // Structured control flow. `End` closes blocks and function bodies.
    Block(BlockType),
    Loop(BlockType),
    If(BlockType),
    Else,
    End,

    Br(Label),
    BrIf(Label),
    BrTable {
        table: Vec<Label>,
        default: Label,
    },
    Return,
    Call(Idx<FunctionSpace>),
    /// The function type is the static expected signature; the table index is
    /// always 0 in Wasm 1.0 but kept for completeness.
    CallIndirect(FuncType, Idx<TableSpace>),

    Drop,
    Select,

    Local(LocalOp, Idx<LocalSpace>),
    Global(GlobalOp, Idx<GlobalSpace>),

    Load(LoadOp, Memarg),
    Store(StoreOp, Memarg),
    MemorySize(Idx<MemorySpace>),
    MemoryGrow(Idx<MemorySpace>),

    Const(Val),
    Unary(UnaryOp),
    Binary(BinaryOp),
}

impl Instr {
    /// The text-format mnemonic of this instruction (without immediates).
    pub fn name(&self) -> &'static str {
        match self {
            Instr::Unreachable => "unreachable",
            Instr::Nop => "nop",
            Instr::Block(_) => "block",
            Instr::Loop(_) => "loop",
            Instr::If(_) => "if",
            Instr::Else => "else",
            Instr::End => "end",
            Instr::Br(_) => "br",
            Instr::BrIf(_) => "br_if",
            Instr::BrTable { .. } => "br_table",
            Instr::Return => "return",
            Instr::Call(_) => "call",
            Instr::CallIndirect(..) => "call_indirect",
            Instr::Drop => "drop",
            Instr::Select => "select",
            Instr::Local(op, _) => op.name(),
            Instr::Global(op, _) => op.name(),
            Instr::Load(op, _) => op.name(),
            Instr::Store(op, _) => op.name(),
            Instr::MemorySize(_) => "memory.size",
            Instr::MemoryGrow(_) => "memory.grow",
            Instr::Const(val) => match val.ty() {
                ValType::I32 => "i32.const",
                ValType::I64 => "i64.const",
                ValType::F32 => "f32.const",
                ValType::F64 => "f64.const",
            },
            Instr::Unary(op) => op.name(),
            Instr::Binary(op) => op.name(),
        }
    }

    /// `true` if this instruction opens a new block scope.
    pub fn begins_block(&self) -> bool {
        matches!(self, Instr::Block(_) | Instr::Loop(_) | Instr::If(_))
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Block(bt) | Instr::Loop(bt) | Instr::If(bt) => {
                write!(f, "{}", self.name())?;
                if bt.0.is_some() {
                    write!(f, " (result {bt})")?;
                }
                Ok(())
            }
            Instr::Br(l) => write!(f, "br {l}"),
            Instr::BrIf(l) => write!(f, "br_if {l}"),
            Instr::BrTable { table, default } => {
                write!(f, "br_table")?;
                for l in table {
                    write!(f, " {l}")?;
                }
                write!(f, " {default}")
            }
            Instr::Call(idx) => write!(f, "call {idx}"),
            Instr::CallIndirect(ty, _) => write!(f, "call_indirect {ty}"),
            Instr::Local(op, idx) => write!(f, "{op} {idx}"),
            Instr::Global(op, idx) => write!(f, "{op} {idx}"),
            Instr::Load(op, memarg) => write!(f, "{op} offset={}", memarg.offset),
            Instr::Store(op, memarg) => write!(f, "{op} offset={}", memarg.offset),
            Instr::Const(val) => write!(f, "{} {val}", self.name()),
            _ => f.write_str(self.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_instruction_count_matches_paper() {
        // Paper §2.3: "there are 123 numeric instructions alone".
        assert_eq!(UnaryOp::ALL.len() + BinaryOp::ALL.len(), 123);
        assert_eq!(UnaryOp::ALL.len(), 47);
        assert_eq!(BinaryOp::ALL.len(), 76);
    }

    #[test]
    fn unary_opcode_roundtrip() {
        for &op in UnaryOp::ALL {
            assert_eq!(UnaryOp::from_opcode(op.opcode()), Some(op));
        }
    }

    #[test]
    fn binary_opcode_roundtrip() {
        for &op in BinaryOp::ALL {
            assert_eq!(BinaryOp::from_opcode(op.opcode()), Some(op));
        }
    }

    #[test]
    fn load_store_opcode_roundtrip() {
        for &op in LoadOp::ALL {
            assert_eq!(LoadOp::from_opcode(op.opcode()), Some(op));
        }
        for &op in StoreOp::ALL {
            assert_eq!(StoreOp::from_opcode(op.opcode()), Some(op));
        }
    }

    #[test]
    fn comparison_ops_produce_i32() {
        assert!(BinaryOp::I64LtS.is_comparison());
        assert_eq!(BinaryOp::I64LtS.result(), ValType::I32);
        assert!(!BinaryOp::I64Add.is_comparison());
        assert_eq!(BinaryOp::I64Add.result(), ValType::I64);
        assert!(BinaryOp::F64Ge.is_comparison());
        assert_eq!(BinaryOp::F64Ge.result(), ValType::I32);
        assert!(!BinaryOp::F64Max.is_comparison());
    }

    #[test]
    fn comparison_count() {
        let n = BinaryOp::ALL.iter().filter(|op| op.is_comparison()).count();
        assert_eq!(n, 32);
    }

    #[test]
    fn conversion_types() {
        assert_eq!(UnaryOp::I32WrapI64.input(), ValType::I64);
        assert_eq!(UnaryOp::I32WrapI64.result(), ValType::I32);
        assert_eq!(UnaryOp::F32ConvertSI64.input(), ValType::I64);
        assert_eq!(UnaryOp::F32ConvertSI64.result(), ValType::F32);
        assert_eq!(UnaryOp::F64PromoteF32.input(), ValType::F32);
        assert_eq!(UnaryOp::F64PromoteF32.result(), ValType::F64);
        assert_eq!(UnaryOp::I64ReinterpretF64.input(), ValType::F64);
        assert_eq!(UnaryOp::I64ReinterpretF64.result(), ValType::I64);
    }

    #[test]
    fn load_store_access_widths() {
        assert_eq!(LoadOp::I64Load32U.access_bytes(), 4);
        assert_eq!(LoadOp::I32Load8S.access_bytes(), 1);
        assert_eq!(LoadOp::F64Load.access_bytes(), 8);
        assert_eq!(StoreOp::I64Store32.access_bytes(), 4);
        assert_eq!(StoreOp::I32Store16.access_bytes(), 2);
    }

    #[test]
    fn val_bitwise_eq_handles_nan() {
        let nan1 = Val::F64(f64::NAN);
        let nan2 = Val::F64(f64::NAN);
        assert_eq!(nan1, nan2);
        assert_ne!(Val::F64(0.0), Val::F64(-0.0));
        assert_eq!(Val::F32(1.5), Val::F32(1.5));
    }

    #[test]
    fn idx_is_typed() {
        let f: Idx<FunctionSpace> = Idx::new(3);
        assert_eq!(f.to_u32(), 3);
        assert_eq!(f, Idx::from(3u32));
    }

    #[test]
    fn instr_display() {
        assert_eq!(Instr::Const(Val::I32(7)).to_string(), "i32.const 7");
        assert_eq!(Instr::Br(Label(1)).to_string(), "br 1");
        assert_eq!(
            Instr::Local(LocalOp::Get, Idx::new(0)).to_string(),
            "get_local 0"
        );
        assert_eq!(Instr::Binary(BinaryOp::I32Add).to_string(), "i32.add");
    }

    #[test]
    fn memarg_natural_alignment() {
        assert_eq!(Memarg::natural(4).alignment_exp, 2);
        assert_eq!(Memarg::natural(8).alignment_exp, 3);
        assert_eq!(Memarg::natural(1).alignment_exp, 0);
    }
}
