//! Binary format encoder: [`Module`] AST → bytes.
//!
//! The binary format requires all imports to precede all local definitions
//! in each index space. The AST does not (so that Wasabi can append hook
//! imports without renumbering); the encoder therefore computes a
//! permutation per index space and remaps every reference:
//! `call` immediates, element segments, exports, and the start function.

use std::collections::HashMap;

use crate::decode::{MAGIC, VERSION};
use crate::instr::{FunctionSpace, GlobalSpace, Idx, Instr, Val};
use crate::leb128;
use crate::module::{GlobalKind, Module};
use crate::types::{FuncType, GlobalType, Limits, ValType};

/// Encode a module into the WebAssembly binary format.
pub fn encode(module: &Module) -> Vec<u8> {
    Encoder::new(module).run()
}

/// Heuristic estimate of the encoded size of `module`, used to preallocate
/// the output buffer in [`encode`] (instrumented modules are encode-heavy,
/// and growing the buffer through repeated doubling copies the whole
/// prefix each time). Deliberately a slight over-estimate for typical
/// instruction mixes; it is **not** a guaranteed upper bound (e.g. bodies
/// dominated by `f64.const`, at 9 bytes per instruction, exceed it).
pub fn size_hint(module: &Module) -> usize {
    // Magic + version + per-section headers and counts.
    let mut hint = 8 + 12 * 8;
    for f in &module.functions {
        // Type-section entry (over-counts duplicates, which is fine for a
        // capacity hint).
        hint += 4 + f.type_.params.len() + f.type_.results.len();
        if let Some(import) = f.import() {
            hint += 8 + import.module.len() + import.name.len();
        }
        if let Some(code) = f.code() {
            // Body size prefix + locals RLE + ~3 bytes per instruction
            // (opcode + a short LEB immediate).
            hint += 16 + code.locals.len() + code.body.len() * 3;
        }
        for name in &f.export {
            hint += 8 + name.len();
        }
        if let Some(name) = &f.name {
            hint += 8 + name.len();
        }
    }
    for t in &module.tables {
        hint += 16;
        for e in &t.elements {
            hint += 16 + e.functions.len() * 3;
        }
    }
    for m in &module.memories {
        hint += 16;
        for d in &m.data {
            hint += 16 + d.bytes.len();
        }
    }
    hint += module.globals.len() * 16;
    for c in &module.custom_sections {
        hint += 16 + c.name.len() + c.bytes.len();
    }
    if let Some(name) = &module.name {
        hint += 16 + name.len();
    }
    hint
}

/// Mapping from stable AST indices to binary indices (imports first).
///
/// Exposed so that tooling (e.g. the WAT printer or debuggers) can relate
/// AST indices to the indices an engine will report.
#[derive(Debug, Clone)]
pub struct IndexPermutation {
    /// `ast_to_binary[ast_index] == binary_index`.
    ast_to_binary: Vec<u32>,
    /// Number of imported entries (binary indices `0..import_count`).
    import_count: u32,
}

impl IndexPermutation {
    /// Compute the permutation for a sequence of `is_import` flags.
    pub fn compute(is_import: impl Iterator<Item = bool>) -> Self {
        let flags: Vec<bool> = is_import.collect();
        let import_count = flags.iter().filter(|&&b| b).count() as u32;
        let mut next_import = 0u32;
        let mut next_local = import_count;
        let ast_to_binary = flags
            .iter()
            .map(|&is_import| {
                if is_import {
                    let idx = next_import;
                    next_import += 1;
                    idx
                } else {
                    let idx = next_local;
                    next_local += 1;
                    idx
                }
            })
            .collect();
        IndexPermutation {
            ast_to_binary,
            import_count,
        }
    }

    /// Map an AST index to its binary index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds for the module that produced
    /// this permutation.
    pub fn binary_index(&self, ast_index: u32) -> u32 {
        self.ast_to_binary[ast_index as usize]
    }

    /// Number of imported entries in this index space.
    pub fn import_count(&self) -> u32 {
        self.import_count
    }
}

struct Encoder<'a> {
    module: &'a Module,
    types: Vec<FuncType>,
    type_indices: HashMap<FuncType, u32>,
    functions: IndexPermutation,
    globals: IndexPermutation,
}

impl<'a> Encoder<'a> {
    fn new(module: &'a Module) -> Self {
        let types = module.collect_types();
        let type_indices = types
            .iter()
            .enumerate()
            .map(|(i, ty)| (ty.clone(), i as u32))
            .collect();
        let functions =
            IndexPermutation::compute(module.functions.iter().map(|f| f.import().is_some()));
        let globals =
            IndexPermutation::compute(module.globals.iter().map(|g| g.import().is_some()));
        Encoder {
            module,
            types,
            type_indices,
            functions,
            globals,
        }
    }

    fn type_idx(&self, ty: &FuncType) -> u32 {
        *self
            .type_indices
            .get(ty)
            .expect("collect_types covers all types in the module")
    }

    fn run(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(size_hint(self.module));
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION);

        self.section(&mut out, 1, Self::type_section);
        self.section(&mut out, 2, Self::import_section);
        self.section(&mut out, 3, Self::function_section);
        self.section(&mut out, 4, Self::table_section);
        self.section(&mut out, 5, Self::memory_section);
        self.section(&mut out, 6, Self::global_section);
        self.section(&mut out, 7, Self::export_section);
        self.section(&mut out, 8, Self::start_section);
        self.section(&mut out, 9, Self::element_section);
        self.section(&mut out, 10, Self::code_section);
        self.section(&mut out, 11, Self::data_section);

        self.name_section(&mut out);

        for custom in &self.module.custom_sections {
            let mut body = Vec::with_capacity(custom.bytes.len() + custom.name.len() + 5);
            write_name(&mut body, &custom.name);
            body.extend_from_slice(&custom.bytes);
            out.push(0);
            leb128::write_u32(&mut out, body.len() as u32);
            out.extend_from_slice(&body);
        }

        out
    }

    /// Emit the standard "name" custom section if the module carries a
    /// module name or any function names. Function indices are the binary
    /// indices (imports-first permutation applied), in increasing order.
    fn name_section(&self, out: &mut Vec<u8>) {
        let mut named: Vec<(u32, &str)> = self
            .module
            .functions
            .iter()
            .enumerate()
            .filter_map(|(i, f)| {
                f.name
                    .as_deref()
                    .map(|name| (self.functions.binary_index(i as u32), name))
            })
            .collect();
        if self.module.name.is_none() && named.is_empty() {
            return;
        }
        named.sort_by_key(|&(idx, _)| idx);

        let mut body = Vec::new();
        write_name(&mut body, "name");
        if let Some(module_name) = &self.module.name {
            let mut sub = Vec::new();
            write_name(&mut sub, module_name);
            body.push(0);
            leb128::write_u32(&mut body, sub.len() as u32);
            body.extend_from_slice(&sub);
        }
        if !named.is_empty() {
            let mut sub = Vec::new();
            leb128::write_u32(&mut sub, named.len() as u32);
            for (idx, name) in named {
                leb128::write_u32(&mut sub, idx);
                write_name(&mut sub, name);
            }
            body.push(1);
            leb128::write_u32(&mut body, sub.len() as u32);
            body.extend_from_slice(&sub);
        }
        out.push(0);
        leb128::write_u32(out, body.len() as u32);
        out.extend_from_slice(&body);
    }

    /// Emit one section if its body is non-empty.
    fn section(&self, out: &mut Vec<u8>, id: u8, emit: fn(&Self, &mut Vec<u8>)) {
        let mut body = Vec::new();
        emit(self, &mut body);
        if body.is_empty() {
            return;
        }
        out.push(id);
        leb128::write_u32(out, body.len() as u32);
        out.extend_from_slice(&body);
    }

    fn type_section(&self, out: &mut Vec<u8>) {
        if self.types.is_empty() {
            return;
        }
        leb128::write_u32(out, self.types.len() as u32);
        for ty in &self.types {
            write_func_type(out, ty);
        }
    }

    fn import_section(&self, out: &mut Vec<u8>) {
        let mut imports = Vec::new();
        let mut count = 0u32;

        // Binary import order must match the permutation: functions keep
        // their relative AST order, as do tables, memories, and globals.
        for f in &self.module.functions {
            if let Some(import) = f.import() {
                write_name(&mut imports, &import.module);
                write_name(&mut imports, &import.name);
                imports.push(0x00);
                leb128::write_u32(&mut imports, self.type_idx(&f.type_));
                count += 1;
            }
        }
        for t in &self.module.tables {
            if let Some(import) = &t.import {
                write_name(&mut imports, &import.module);
                write_name(&mut imports, &import.name);
                imports.push(0x01);
                imports.push(0x70);
                write_limits(&mut imports, t.type_.0);
                count += 1;
            }
        }
        for m in &self.module.memories {
            if let Some(import) = &m.import {
                write_name(&mut imports, &import.module);
                write_name(&mut imports, &import.name);
                imports.push(0x02);
                write_limits(&mut imports, m.type_.0);
                count += 1;
            }
        }
        for g in &self.module.globals {
            if let Some(import) = g.import() {
                write_name(&mut imports, &import.module);
                write_name(&mut imports, &import.name);
                imports.push(0x03);
                write_global_type(&mut imports, g.type_);
                count += 1;
            }
        }

        if count == 0 {
            return;
        }
        leb128::write_u32(out, count);
        out.extend_from_slice(&imports);
    }

    fn function_section(&self, out: &mut Vec<u8>) {
        let local: Vec<&FuncType> = self
            .module
            .functions
            .iter()
            .filter(|f| f.import().is_none())
            .map(|f| &f.type_)
            .collect();
        if local.is_empty() {
            return;
        }
        leb128::write_u32(out, local.len() as u32);
        for ty in local {
            leb128::write_u32(out, self.type_idx(ty));
        }
    }

    fn table_section(&self, out: &mut Vec<u8>) {
        let local: Vec<_> = self
            .module
            .tables
            .iter()
            .filter(|t| t.import.is_none())
            .collect();
        if local.is_empty() {
            return;
        }
        leb128::write_u32(out, local.len() as u32);
        for t in local {
            out.push(0x70);
            write_limits(out, t.type_.0);
        }
    }

    fn memory_section(&self, out: &mut Vec<u8>) {
        let local: Vec<_> = self
            .module
            .memories
            .iter()
            .filter(|m| m.import.is_none())
            .collect();
        if local.is_empty() {
            return;
        }
        leb128::write_u32(out, local.len() as u32);
        for m in local {
            write_limits(out, m.type_.0);
        }
    }

    fn global_section(&self, out: &mut Vec<u8>) {
        let local: Vec<_> = self
            .module
            .globals
            .iter()
            .filter_map(|g| match &g.kind {
                GlobalKind::Init(init) => Some((g.type_, init)),
                GlobalKind::Import(_) => None,
            })
            .collect();
        if local.is_empty() {
            return;
        }
        leb128::write_u32(out, local.len() as u32);
        for (ty, init) in local {
            write_global_type(out, ty);
            for instr in init {
                self.instr(out, instr);
            }
        }
    }

    fn export_section(&self, out: &mut Vec<u8>) {
        let mut body = Vec::new();
        let mut count = 0u32;
        for (i, f) in self.module.functions.iter().enumerate() {
            for name in &f.export {
                write_name(&mut body, name);
                body.push(0x00);
                leb128::write_u32(&mut body, self.functions.binary_index(i as u32));
                count += 1;
            }
        }
        for (i, t) in self.module.tables.iter().enumerate() {
            for name in &t.export {
                write_name(&mut body, name);
                body.push(0x01);
                leb128::write_u32(&mut body, i as u32);
                count += 1;
            }
        }
        for (i, m) in self.module.memories.iter().enumerate() {
            for name in &m.export {
                write_name(&mut body, name);
                body.push(0x02);
                leb128::write_u32(&mut body, i as u32);
                count += 1;
            }
        }
        for (i, g) in self.module.globals.iter().enumerate() {
            for name in &g.export {
                write_name(&mut body, name);
                body.push(0x03);
                leb128::write_u32(&mut body, self.globals.binary_index(i as u32));
                count += 1;
            }
        }
        if count == 0 {
            return;
        }
        leb128::write_u32(out, count);
        out.extend_from_slice(&body);
    }

    fn start_section(&self, out: &mut Vec<u8>) {
        if let Some(start) = self.module.start {
            leb128::write_u32(out, self.functions.binary_index(start.to_u32()));
        }
    }

    fn element_section(&self, out: &mut Vec<u8>) {
        let mut body = Vec::new();
        let mut count = 0u32;
        for (table_idx, table) in self.module.tables.iter().enumerate() {
            for element in &table.elements {
                leb128::write_u32(&mut body, table_idx as u32);
                for instr in &element.offset {
                    self.instr(&mut body, instr);
                }
                leb128::write_u32(&mut body, element.functions.len() as u32);
                for f in &element.functions {
                    leb128::write_u32(&mut body, self.functions.binary_index(f.to_u32()));
                }
                count += 1;
            }
        }
        if count == 0 {
            return;
        }
        leb128::write_u32(out, count);
        out.extend_from_slice(&body);
    }

    fn code_section(&self, out: &mut Vec<u8>) {
        let local: Vec<_> = self
            .module
            .functions
            .iter()
            .filter_map(|f| f.code())
            .collect();
        if local.is_empty() {
            return;
        }
        leb128::write_u32(out, local.len() as u32);
        for code in local {
            let mut body = Vec::with_capacity(code.body.len() * 3 + code.locals.len() + 16);

            // Locals are run-length encoded by type.
            let mut groups: Vec<(ValType, u32)> = Vec::new();
            for &ty in &code.locals {
                match groups.last_mut() {
                    Some((last_ty, n)) if *last_ty == ty => *n += 1,
                    _ => groups.push((ty, 1)),
                }
            }
            leb128::write_u32(&mut body, groups.len() as u32);
            for (ty, n) in groups {
                leb128::write_u32(&mut body, n);
                body.push(val_type_byte(ty));
            }

            for instr in &code.body {
                self.instr(&mut body, instr);
            }

            leb128::write_u32(out, body.len() as u32);
            out.extend_from_slice(&body);
        }
    }

    fn data_section(&self, out: &mut Vec<u8>) {
        let mut body = Vec::new();
        let mut count = 0u32;
        for (mem_idx, memory) in self.module.memories.iter().enumerate() {
            for data in &memory.data {
                leb128::write_u32(&mut body, mem_idx as u32);
                for instr in &data.offset {
                    self.instr(&mut body, instr);
                }
                leb128::write_u32(&mut body, data.bytes.len() as u32);
                body.extend_from_slice(&data.bytes);
                count += 1;
            }
        }
        if count == 0 {
            return;
        }
        leb128::write_u32(out, count);
        out.extend_from_slice(&body);
    }

    fn instr(&self, out: &mut Vec<u8>, instr: &Instr) {
        match instr {
            Instr::Unreachable => out.push(0x00),
            Instr::Nop => out.push(0x01),
            Instr::Block(bt) => {
                out.push(0x02);
                out.push(block_type_byte(*bt));
            }
            Instr::Loop(bt) => {
                out.push(0x03);
                out.push(block_type_byte(*bt));
            }
            Instr::If(bt) => {
                out.push(0x04);
                out.push(block_type_byte(*bt));
            }
            Instr::Else => out.push(0x05),
            Instr::End => out.push(0x0b),
            Instr::Br(label) => {
                out.push(0x0c);
                leb128::write_u32(out, label.to_u32());
            }
            Instr::BrIf(label) => {
                out.push(0x0d);
                leb128::write_u32(out, label.to_u32());
            }
            Instr::BrTable { table, default } => {
                out.push(0x0e);
                leb128::write_u32(out, table.len() as u32);
                for label in table {
                    leb128::write_u32(out, label.to_u32());
                }
                leb128::write_u32(out, default.to_u32());
            }
            Instr::Return => out.push(0x0f),
            Instr::Call(idx) => {
                out.push(0x10);
                leb128::write_u32(out, self.functions.binary_index(idx.to_u32()));
            }
            Instr::CallIndirect(ty, table_idx) => {
                out.push(0x11);
                leb128::write_u32(out, self.type_idx(ty));
                leb128::write_u32(out, table_idx.to_u32());
            }
            Instr::Drop => out.push(0x1a),
            Instr::Select => out.push(0x1b),
            Instr::Local(op, idx) => {
                out.push(match op {
                    crate::instr::LocalOp::Get => 0x20,
                    crate::instr::LocalOp::Set => 0x21,
                    crate::instr::LocalOp::Tee => 0x22,
                });
                leb128::write_u32(out, idx.to_u32());
            }
            Instr::Global(op, idx) => {
                out.push(match op {
                    crate::instr::GlobalOp::Get => 0x23,
                    crate::instr::GlobalOp::Set => 0x24,
                });
                leb128::write_u32(out, self.globals.binary_index(idx.to_u32()));
            }
            Instr::Load(op, memarg) => {
                out.push(op.opcode());
                leb128::write_u32(out, memarg.alignment_exp);
                leb128::write_u32(out, memarg.offset);
            }
            Instr::Store(op, memarg) => {
                out.push(op.opcode());
                leb128::write_u32(out, memarg.alignment_exp);
                leb128::write_u32(out, memarg.offset);
            }
            Instr::MemorySize(idx) => {
                out.push(0x3f);
                leb128::write_u32(out, idx.to_u32());
            }
            Instr::MemoryGrow(idx) => {
                out.push(0x40);
                leb128::write_u32(out, idx.to_u32());
            }
            Instr::Const(val) => match val {
                Val::I32(v) => {
                    out.push(0x41);
                    leb128::write_i32(out, *v);
                }
                Val::I64(v) => {
                    out.push(0x42);
                    leb128::write_i64(out, *v);
                }
                Val::F32(v) => {
                    out.push(0x43);
                    out.extend_from_slice(&v.to_le_bytes());
                }
                Val::F64(v) => {
                    out.push(0x44);
                    out.extend_from_slice(&v.to_le_bytes());
                }
            },
            Instr::Unary(op) => out.push(op.opcode()),
            Instr::Binary(op) => out.push(op.opcode()),
        }
    }
}

/// Compute the binary function-index permutation of a module without
/// encoding it (used by `ModuleInfo` to report engine-visible indices).
pub fn function_permutation(module: &Module) -> IndexPermutation {
    IndexPermutation::compute(module.functions.iter().map(|f| f.import().is_some()))
}

fn val_type_byte(ty: ValType) -> u8 {
    match ty {
        ValType::I32 => 0x7f,
        ValType::I64 => 0x7e,
        ValType::F32 => 0x7d,
        ValType::F64 => 0x7c,
    }
}

fn block_type_byte(bt: crate::instr::BlockType) -> u8 {
    match bt.0 {
        None => 0x40,
        Some(ty) => val_type_byte(ty),
    }
}

fn write_func_type(out: &mut Vec<u8>, ty: &FuncType) {
    out.push(0x60);
    leb128::write_u32(out, ty.params.len() as u32);
    for &p in &ty.params {
        out.push(val_type_byte(p));
    }
    leb128::write_u32(out, ty.results.len() as u32);
    for &r in &ty.results {
        out.push(val_type_byte(r));
    }
}

fn write_limits(out: &mut Vec<u8>, limits: Limits) {
    match limits.max {
        None => {
            out.push(0x00);
            leb128::write_u32(out, limits.initial);
        }
        Some(max) => {
            out.push(0x01);
            leb128::write_u32(out, limits.initial);
            leb128::write_u32(out, max);
        }
    }
}

fn write_global_type(out: &mut Vec<u8>, ty: GlobalType) {
    out.push(val_type_byte(ty.val_type));
    out.push(u8::from(ty.mutable));
}

fn write_name(out: &mut Vec<u8>, name: &str) {
    leb128::write_u32(out, name.len() as u32);
    out.extend_from_slice(name.as_bytes());
}

// Re-exported index space marker aliases for doc clarity.
#[allow(unused)]
type FunctionIdx = Idx<FunctionSpace>;
#[allow(unused)]
type GlobalIdx = Idx<GlobalSpace>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;
    use crate::instr::{BinaryOp, LocalOp};
    use crate::module::{Function, Global};
    use crate::types::{FuncType, GlobalType, Limits, ValType};

    fn sample_module() -> Module {
        let mut module = Module::new();
        let add = module.add_function(
            FuncType::new(&[ValType::I32, ValType::I32], &[ValType::I32]),
            vec![ValType::I64],
            vec![
                Instr::Local(LocalOp::Get, Idx::from(0u32)),
                Instr::Local(LocalOp::Get, Idx::from(1u32)),
                Instr::Binary(BinaryOp::I32Add),
                Instr::End,
            ],
        );
        module.function_mut(add).export.push("add".to_string());
        module
    }

    #[test]
    fn encode_decode_roundtrip() {
        let module = sample_module();
        let bytes = encode(&module);
        let decoded = decode(&bytes).expect("decodes");
        assert_eq!(module, decoded);
    }

    #[test]
    fn size_hint_covers_typical_modules() {
        // The hint is a heuristic, but for ordinary instruction mixes it
        // should preallocate enough that `encode` never regrows, while not
        // overshooting absurdly.
        let mut module = sample_module();
        let mut memory = crate::module::Memory::new(Limits::at_least(1));
        memory.data.push(crate::module::Data {
            offset: vec![Instr::Const(Val::I32(0)), Instr::End],
            bytes: vec![0u8; 4096],
        });
        module.memories.push(memory);
        let bytes = encode(&module);
        let hint = size_hint(&module);
        assert!(hint >= bytes.len(), "hint {hint} < encoded {}", bytes.len());
        assert!(hint <= bytes.len() * 8 + 1024, "hint {hint} overshoots");
        // The returned buffer was allocated up front, not grown by
        // doubling past the hint.
        assert!(bytes.capacity() <= hint.max(bytes.len()));
    }

    #[test]
    fn late_import_is_sorted_first_and_calls_remapped() {
        let mut module = sample_module();
        // Add an import *after* the local function, then call it from a new
        // function: AST index 1 refers to the import.
        let import_idx = module.add_function_import(FuncType::new(&[], &[]), "env", "hook");
        module.add_function(
            FuncType::new(&[], &[]),
            vec![],
            vec![Instr::Call(import_idx), Instr::End],
        );

        let bytes = encode(&module);
        let decoded = decode(&bytes).expect("decodes");

        // After decoding, the import must be function 0.
        assert!(decoded.functions[0].import().is_some());
        // The caller (now at some local index) must call function 0.
        let caller = decoded
            .functions
            .iter()
            .find(|f| {
                f.code()
                    .is_some_and(|c| c.body.iter().any(|i| matches!(i, Instr::Call(_))))
            })
            .expect("caller exists");
        let call = caller
            .code()
            .unwrap()
            .body
            .iter()
            .find_map(|i| match i {
                Instr::Call(idx) => Some(*idx),
                _ => None,
            })
            .unwrap();
        assert_eq!(call.to_u32(), 0);
        // Once normalized (imports first), encoding is a fixed point.
        let bytes2 = encode(&decoded);
        let decoded2 = decode(&bytes2).expect("decodes");
        assert_eq!(decoded, decoded2);
        assert_eq!(encode(&decoded2), bytes2);
    }

    #[test]
    fn globals_permuted_and_remapped() {
        let mut module = Module::new();
        module.add_global(GlobalType::mutable(ValType::I32), Val::I32(7));
        module.globals.push(Global::new_import(
            GlobalType::const_(ValType::F64),
            "env",
            "g",
        ));
        module.add_function(
            FuncType::new(&[], &[ValType::I32]),
            vec![],
            vec![
                Instr::Global(crate::instr::GlobalOp::Get, Idx::from(0u32)),
                Instr::End,
            ],
        );
        let bytes = encode(&module);
        let decoded = decode(&bytes).expect("decodes");
        // Imported global must be binary index 0, so the get_global of the
        // (formerly first) local global must now reference index 1.
        assert!(decoded.globals[0].import().is_some());
        let body = &decoded.functions[0].code().unwrap().body;
        assert_eq!(
            body[0],
            Instr::Global(crate::instr::GlobalOp::Get, Idx::from(1u32))
        );
    }

    #[test]
    fn table_memory_elements_data_roundtrip() {
        let mut module = sample_module();
        let mut table = crate::module::Table::new(Limits::bounded(2, 2));
        table.elements.push(crate::module::Element {
            offset: vec![Instr::Const(Val::I32(0)), Instr::End],
            functions: vec![Idx::from(0u32)],
        });
        module.tables.push(table);
        let mut memory = crate::module::Memory::new(Limits::at_least(1));
        memory.data.push(crate::module::Data {
            offset: vec![Instr::Const(Val::I32(16)), Instr::End],
            bytes: vec![1, 2, 3, 4],
        });
        module.memories.push(memory);
        module.start = Some(Idx::from(0u32));

        let bytes = encode(&module);
        let decoded = decode(&bytes).expect("decodes");
        assert_eq!(module, decoded);
    }

    #[test]
    fn name_section_roundtrip() {
        let mut module = sample_module();
        module.name = Some("my_module".to_string());
        module.functions[0].name = Some("my_add".to_string());
        // A late import that the encoder permutes to binary index 0: its
        // name must follow it.
        let import = module.add_function_import(FuncType::new(&[], &[]), "env", "h");
        module.functions[import.to_usize()].name = Some("h_dbg".to_string());

        let decoded = decode(&encode(&module)).expect("decodes");
        assert_eq!(decoded.name.as_deref(), Some("my_module"));
        // After decoding, the import is function 0 and carries its name.
        assert_eq!(decoded.functions[0].name.as_deref(), Some("h_dbg"));
        assert_eq!(decoded.functions[1].name.as_deref(), Some("my_add"));
        // No opaque "name" custom section is kept around.
        assert!(decoded.custom_sections.iter().all(|c| c.name != "name"));
    }

    #[test]
    fn malformed_name_section_kept_opaque() {
        let mut module = sample_module();
        module.custom_sections.push(crate::module::CustomSection {
            name: "name".to_string(),
            bytes: vec![0xff, 0xff, 0xff], // not a valid subsection
        });
        let decoded = decode(&encode(&module)).expect("decodes");
        assert!(decoded.custom_sections.iter().any(|c| c.name == "name"));
    }

    #[test]
    fn imported_function_before_local_is_identity() {
        let mut module = Module::new();
        module
            .functions
            .push(Function::new_import(FuncType::new(&[], &[]), "env", "f"));
        module.add_function(FuncType::new(&[], &[]), vec![], vec![Instr::End]);
        let perm = function_permutation(&module);
        assert_eq!(perm.binary_index(0), 0);
        assert_eq!(perm.binary_index(1), 1);
        assert_eq!(perm.import_count(), 1);
    }

    #[test]
    fn all_instruction_encodings_roundtrip() {
        use crate::instr::*;
        let mut body: Vec<Instr> = vec![
            Instr::Nop,
            Instr::Block(BlockType(Some(ValType::I32))),
            Instr::Const(Val::I32(42)),
            Instr::End,
            Instr::Drop,
            Instr::Block(BlockType(None)),
            Instr::Br(Label(0)),
            Instr::End,
            Instr::Const(Val::I64(-1)),
            Instr::Drop,
            Instr::Const(Val::F32(1.5)),
            Instr::Drop,
            Instr::Const(Val::F64(-2.5)),
            Instr::Drop,
            Instr::Const(Val::I32(0)),
            Instr::If(BlockType(None)),
            Instr::Nop,
            Instr::Else,
            Instr::Unreachable,
            Instr::End,
        ];
        for op in UnaryOp::ALL {
            body.push(Instr::Const(Val::zero(op.input())));
            body.push(Instr::Unary(*op));
            body.push(Instr::Drop);
        }
        for op in BinaryOp::ALL {
            body.push(Instr::Const(Val::zero(op.input())));
            body.push(Instr::Const(match op.input() {
                ValType::I32 => Val::I32(1),
                ValType::I64 => Val::I64(1),
                ValType::F32 => Val::F32(1.0),
                ValType::F64 => Val::F64(1.0),
            }));
            body.push(Instr::Binary(*op));
            body.push(Instr::Drop);
        }
        for op in LoadOp::ALL {
            body.push(Instr::Const(Val::I32(0)));
            body.push(Instr::Load(*op, Memarg::natural(op.access_bytes())));
            body.push(Instr::Drop);
        }
        for op in StoreOp::ALL {
            body.push(Instr::Const(Val::I32(0)));
            body.push(Instr::Const(Val::zero(op.value_type())));
            body.push(Instr::Store(*op, Memarg::natural(op.access_bytes())));
        }
        body.push(Instr::MemorySize(Idx::from(0u32)));
        body.push(Instr::Drop);
        body.push(Instr::Const(Val::I32(1)));
        body.push(Instr::MemoryGrow(Idx::from(0u32)));
        body.push(Instr::Drop);
        body.push(Instr::End);

        let mut module = Module::new();
        module
            .memories
            .push(crate::module::Memory::new(Limits::at_least(1)));
        module.add_function(FuncType::new(&[], &[]), vec![], body);

        let bytes = encode(&module);
        let decoded = decode(&bytes).expect("decodes");
        assert_eq!(module, decoded);
    }
}
