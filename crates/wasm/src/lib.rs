//! # wasabi-wasm — WebAssembly 1.0 language substrate
//!
//! A self-contained implementation of the WebAssembly 1.0 ("MVP") binary
//! format and static semantics, built for the reproduction of *Wasabi: A
//! Framework for Dynamically Analyzing WebAssembly* (ASPLOS 2019). It plays
//! the role of the `wasm` crate plus WABT's `wasm-validate` in the paper's
//! toolchain:
//!
//! - [`module::Module`]: a high-level AST with *stable indices* — imports
//!   and local definitions may be freely interleaved, so that an
//!   instrumenter can append hook imports without renumbering `call`s.
//! - [`decode::decode`] / [`encode::encode`]: the binary codec. The encoder
//!   performs the imports-first permutation the binary format requires.
//! - [`validate::validate`]: the full type checker (also used streaming by
//!   the Wasabi instrumenter, paper §2.4.3).
//! - [`builder::ModuleBuilder`]: ergonomic construction, used by the
//!   workload generators.
//! - [`wat::render`]: human-readable text output for debugging.
//!
//! # Examples
//!
//! ```
//! use wasabi_wasm::builder::ModuleBuilder;
//! use wasabi_wasm::types::ValType;
//!
//! let mut builder = ModuleBuilder::new();
//! builder.function("add1", &[ValType::I32], &[ValType::I32], |f| {
//!     f.get_local(0u32).i32_const(1).i32_add();
//! });
//! let module = builder.finish();
//!
//! let bytes = wasabi_wasm::encode::encode(&module);
//! let roundtripped = wasabi_wasm::decode::decode(&bytes)?;
//! assert_eq!(module, roundtripped);
//! wasabi_wasm::validate::validate(&module)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod builder;
pub mod decode;
pub mod encode;
pub mod error;
pub mod instr;
pub mod leb128;
pub mod module;
pub mod types;
pub mod validate;
pub mod wat;

pub use error::{DecodeError, ValidationError};
pub use instr::{
    BinaryOp, BlockType, FunctionSpace, GlobalOp, GlobalSpace, Idx, Instr, Label, LoadOp, LocalOp,
    LocalSpace, Memarg, MemorySpace, StoreOp, TableSpace, UnaryOp, Val,
};
pub use module::{Code, Function, FunctionKind, Global, GlobalKind, Import, Memory, Module, Table};
pub use types::{FuncType, GlobalType, Limits, MemoryType, TableType, ValType, PAGE_SIZE};
