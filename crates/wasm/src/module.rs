//! High-level module AST (paper Fig. 3).
//!
//! Unlike the raw binary format, this AST keeps *stable indices*: the
//! function list is in declaration order and may freely mix imported and
//! local functions. The binary encoder re-sorts imports first (as the binary
//! format requires) and remaps every function/global reference. This is what
//! makes instrumentation sound: Wasabi appends hook *imports* to an existing
//! module without invalidating any `call` immediate in the AST.

use serde::{Deserialize, Serialize};

use crate::instr::{FunctionSpace, GlobalSpace, Idx, Instr, LocalSpace, Val};
use crate::types::{FuncType, GlobalType, Limits, MemoryType, TableType, ValType};

/// Provenance of a function/global/table/memory: imported or defined locally.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Import {
    pub module: String,
    pub name: String,
}

impl Import {
    /// Create an import descriptor from module and field name.
    pub fn new(module: impl Into<String>, name: impl Into<String>) -> Self {
        Import {
            module: module.into(),
            name: name.into(),
        }
    }
}

/// Body of a locally-defined function.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Code {
    /// Types of the explicit locals (the local index space is the function's
    /// parameters followed by these).
    pub locals: Vec<ValType>,
    /// Instruction sequence, terminated by an [`Instr::End`].
    pub body: Vec<Instr>,
}

/// A function: either imported or carrying code (paper Fig. 3, `function`).
///
/// Equality ignores the debug [`Function::name`], which is tooling metadata
/// that is not part of the binary format (so `decode(encode(m)) == m` holds
/// for modules with builder-assigned names).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Function {
    pub type_: FuncType,
    pub kind: FunctionKind,
    /// Names under which this function is exported (may be several).
    pub export: Vec<String>,
    /// Optional debug name (not emitted to the binary, ignored by `==`).
    pub name: Option<String>,
}

impl PartialEq for Function {
    fn eq(&self, other: &Self) -> bool {
        self.type_ == other.type_ && self.kind == other.kind && self.export == other.export
    }
}

/// Import-or-code alternative for functions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FunctionKind {
    Import(Import),
    Local(Code),
}

impl Function {
    /// A locally-defined function with the given type, locals and body.
    pub fn new(type_: FuncType, locals: Vec<ValType>, body: Vec<Instr>) -> Self {
        Function {
            type_,
            kind: FunctionKind::Local(Code { locals, body }),
            export: Vec::new(),
            name: None,
        }
    }

    /// An imported function.
    pub fn new_import(type_: FuncType, module: &str, name: &str) -> Self {
        Function {
            type_,
            kind: FunctionKind::Import(Import::new(module, name)),
            export: Vec::new(),
            name: None,
        }
    }

    /// The import descriptor, if this function is imported.
    pub fn import(&self) -> Option<&Import> {
        match &self.kind {
            FunctionKind::Import(import) => Some(import),
            FunctionKind::Local(_) => None,
        }
    }

    /// The code, if this function is locally defined.
    pub fn code(&self) -> Option<&Code> {
        match &self.kind {
            FunctionKind::Local(code) => Some(code),
            FunctionKind::Import(_) => None,
        }
    }

    /// Mutable access to the code, if locally defined.
    pub fn code_mut(&mut self) -> Option<&mut Code> {
        match &mut self.kind {
            FunctionKind::Local(code) => Some(code),
            FunctionKind::Import(_) => None,
        }
    }

    /// Number of parameters.
    pub fn param_count(&self) -> usize {
        self.type_.params.len()
    }

    /// Type of the local with the given index (parameters first, then
    /// explicit locals), or `None` if out of range (or imported).
    pub fn local_type(&self, idx: Idx<LocalSpace>) -> Option<ValType> {
        let i = idx.to_usize();
        if i < self.type_.params.len() {
            return Some(self.type_.params[i]);
        }
        let code = self.code()?;
        code.locals.get(i - self.type_.params.len()).copied()
    }

    /// Append a fresh local of type `ty` and return its index.
    ///
    /// # Panics
    ///
    /// Panics if the function is imported (it has no locals).
    pub fn add_fresh_local(&mut self, ty: ValType) -> Idx<LocalSpace> {
        let param_count = self.type_.params.len();
        let code = self
            .code_mut()
            .expect("cannot add a local to an imported function");
        code.locals.push(ty);
        Idx::from(param_count + code.locals.len() - 1)
    }

    /// Number of instructions in the body (0 for imports).
    pub fn instr_count(&self) -> usize {
        self.code().map_or(0, |code| code.body.len())
    }
}

/// A global variable (paper Fig. 3, `global`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Global {
    pub type_: GlobalType,
    pub kind: GlobalKind,
    pub export: Vec<String>,
}

/// Import-or-initializer alternative for globals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GlobalKind {
    Import(Import),
    /// Initialization constant expression (a single `const` or `get_global`
    /// followed by `end` in Wasm 1.0).
    Init(Vec<Instr>),
}

impl Global {
    /// A local global initialized with a constant value.
    pub fn new(type_: GlobalType, init: Val) -> Self {
        Global {
            type_,
            kind: GlobalKind::Init(vec![Instr::Const(init), Instr::End]),
            export: Vec::new(),
        }
    }

    /// An imported global.
    pub fn new_import(type_: GlobalType, module: &str, name: &str) -> Self {
        Global {
            type_,
            kind: GlobalKind::Import(Import::new(module, name)),
            export: Vec::new(),
        }
    }

    /// The import descriptor, if imported.
    pub fn import(&self) -> Option<&Import> {
        match &self.kind {
            GlobalKind::Import(import) => Some(import),
            GlobalKind::Init(_) => None,
        }
    }
}

/// An element segment: function indices copied into the table at
/// instantiation (used by `call_indirect`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Element {
    /// Constant expression for the start offset.
    pub offset: Vec<Instr>,
    pub functions: Vec<Idx<FunctionSpace>>,
}

/// The table (at most one in Wasm 1.0), with its element segments attached.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    pub type_: TableType,
    pub import: Option<Import>,
    pub elements: Vec<Element>,
    pub export: Vec<String>,
}

impl Table {
    /// A local table with the given limits and no elements.
    pub fn new(limits: Limits) -> Self {
        Table {
            type_: TableType(limits),
            import: None,
            elements: Vec::new(),
            export: Vec::new(),
        }
    }
}

/// A data segment: bytes copied into linear memory at instantiation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Data {
    /// Constant expression for the start offset.
    pub offset: Vec<Instr>,
    pub bytes: Vec<u8>,
}

/// The linear memory (at most one in Wasm 1.0), with data segments attached.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Memory {
    pub type_: MemoryType,
    pub import: Option<Import>,
    pub data: Vec<Data>,
    pub export: Vec<String>,
}

impl Memory {
    /// A local memory with the given page limits and no data segments.
    pub fn new(limits: Limits) -> Self {
        Memory {
            type_: MemoryType(limits),
            import: None,
            data: Vec::new(),
            export: Vec::new(),
        }
    }
}

/// An uninterpreted custom section (preserved byte-exactly on round-trips).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CustomSection {
    pub name: String,
    pub bytes: Vec<u8>,
}

/// A WebAssembly module (paper Fig. 3, `module`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Module {
    pub functions: Vec<Function>,
    pub globals: Vec<Global>,
    pub tables: Vec<Table>,
    pub memories: Vec<Memory>,
    pub start: Option<Idx<FunctionSpace>>,
    /// Debug module name from the `name` custom section, if any.
    pub name: Option<String>,
    pub custom_sections: Vec<CustomSection>,
}

impl Module {
    /// An empty module.
    pub fn new() -> Self {
        Module::default()
    }

    /// Append a locally-defined function; returns its (stable) index.
    pub fn add_function(
        &mut self,
        type_: FuncType,
        locals: Vec<ValType>,
        body: Vec<Instr>,
    ) -> Idx<FunctionSpace> {
        self.functions.push(Function::new(type_, locals, body));
        Idx::from(self.functions.len() - 1)
    }

    /// Append an imported function; returns its (stable) index.
    ///
    /// Note that unlike in the raw binary format, imports may be added *after*
    /// local functions without renumbering: the encoder performs the
    /// imports-first permutation (this is how hook imports are injected).
    pub fn add_function_import(
        &mut self,
        type_: FuncType,
        module: &str,
        name: &str,
    ) -> Idx<FunctionSpace> {
        self.functions
            .push(Function::new_import(type_, module, name));
        Idx::from(self.functions.len() - 1)
    }

    /// Append a global; returns its index.
    pub fn add_global(&mut self, type_: GlobalType, init: Val) -> Idx<GlobalSpace> {
        self.globals.push(Global::new(type_, init));
        Idx::from(self.globals.len() - 1)
    }

    /// The function at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn function(&self, idx: Idx<FunctionSpace>) -> &Function {
        &self.functions[idx.to_usize()]
    }

    /// Mutable access to the function at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn function_mut(&mut self, idx: Idx<FunctionSpace>) -> &mut Function {
        &mut self.functions[idx.to_usize()]
    }

    /// Iterate over `(index, function)` pairs.
    pub fn iter_functions(&self) -> impl Iterator<Item = (Idx<FunctionSpace>, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, f)| (Idx::from(i), f))
    }

    /// Find an exported function by name.
    pub fn export_function(&self, name: &str) -> Option<Idx<FunctionSpace>> {
        self.iter_functions()
            .find(|(_, f)| f.export.iter().any(|e| e == name))
            .map(|(i, _)| i)
    }

    /// The deduplicated list of function types used anywhere in the module
    /// (function declarations and `call_indirect` immediates), in first-use
    /// order. This is the type section the encoder emits.
    pub fn collect_types(&self) -> Vec<FuncType> {
        let mut types = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut push = |ty: &FuncType, types: &mut Vec<FuncType>| {
            if seen.insert(ty.clone()) {
                types.push(ty.clone());
            }
        };
        for function in &self.functions {
            push(&function.type_, &mut types);
            if let Some(code) = function.code() {
                for instr in &code.body {
                    if let Instr::CallIndirect(ty, _) = instr {
                        push(ty, &mut types);
                    }
                }
            }
        }
        types
    }

    /// Total number of instructions across all local function bodies.
    pub fn instr_count(&self) -> usize {
        self.functions.iter().map(Function::instr_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{BinaryOp, LocalOp};

    fn i32_i32_to_i32() -> FuncType {
        FuncType::new(&[ValType::I32, ValType::I32], &[ValType::I32])
    }

    fn add_function_body() -> Vec<Instr> {
        vec![
            Instr::Local(LocalOp::Get, Idx::from(0u32)),
            Instr::Local(LocalOp::Get, Idx::from(1u32)),
            Instr::Binary(BinaryOp::I32Add),
            Instr::End,
        ]
    }

    #[test]
    fn add_and_lookup_function() {
        let mut module = Module::new();
        let idx = module.add_function(i32_i32_to_i32(), vec![], add_function_body());
        assert_eq!(idx.to_u32(), 0);
        assert_eq!(module.function(idx).instr_count(), 4);
        assert_eq!(module.instr_count(), 4);
    }

    #[test]
    fn local_index_space_spans_params_and_locals() {
        let mut module = Module::new();
        let idx = module.add_function(i32_i32_to_i32(), vec![ValType::F64], add_function_body());
        let function = module.function(idx);
        assert_eq!(function.local_type(Idx::from(0u32)), Some(ValType::I32));
        assert_eq!(function.local_type(Idx::from(1u32)), Some(ValType::I32));
        assert_eq!(function.local_type(Idx::from(2u32)), Some(ValType::F64));
        assert_eq!(function.local_type(Idx::from(3u32)), None);
    }

    #[test]
    fn fresh_local_extends_index_space() {
        let mut module = Module::new();
        let idx = module.add_function(i32_i32_to_i32(), vec![], add_function_body());
        let function = module.function_mut(idx);
        let l = function.add_fresh_local(ValType::I64);
        assert_eq!(l.to_u32(), 2);
        assert_eq!(function.local_type(l), Some(ValType::I64));
    }

    #[test]
    fn collect_types_deduplicates() {
        let mut module = Module::new();
        module.add_function(i32_i32_to_i32(), vec![], add_function_body());
        module.add_function(i32_i32_to_i32(), vec![], add_function_body());
        module.add_function_import(FuncType::new(&[], &[]), "env", "f");
        assert_eq!(module.collect_types().len(), 2);
    }

    #[test]
    fn collect_types_includes_call_indirect() {
        let mut module = Module::new();
        let indirect_ty = FuncType::new(&[ValType::F32], &[]);
        module.add_function(
            FuncType::new(&[], &[]),
            vec![],
            vec![
                Instr::Const(Val::F32(0.0)),
                Instr::Const(Val::I32(0)),
                Instr::CallIndirect(indirect_ty.clone(), Idx::from(0u32)),
                Instr::End,
            ],
        );
        let types = module.collect_types();
        assert!(types.contains(&indirect_ty));
        assert_eq!(types.len(), 2);
    }

    #[test]
    fn export_lookup() {
        let mut module = Module::new();
        let idx = module.add_function(i32_i32_to_i32(), vec![], add_function_body());
        module.function_mut(idx).export.push("add".to_string());
        assert_eq!(module.export_function("add"), Some(idx));
        assert_eq!(module.export_function("missing"), None);
    }

    #[test]
    fn imported_function_has_no_code() {
        let f = Function::new_import(FuncType::new(&[], &[]), "wasabi", "hook");
        assert!(f.code().is_none());
        assert_eq!(f.import().map(|i| i.module.as_str()), Some("wasabi"));
    }
}
