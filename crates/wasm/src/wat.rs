//! Minimal text rendering of modules, loosely following the WebAssembly text
//! format. Output is meant for humans (debugging, documentation, examples) —
//! there is intentionally no parser.

use std::fmt::Write as _;

use crate::instr::Instr;
use crate::module::{FunctionKind, GlobalKind, Module};

/// Render a module as indented pseudo-WAT text.
pub fn render(module: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "(module");

    for (i, function) in module.functions.iter().enumerate() {
        let mut head = format!("  (func $f{i}");
        if let Some(name) = &function.name {
            let _ = write!(head, " ;; {name}");
            let _ = writeln!(out, "{head}");
            head = String::from("   ");
        }
        let _ = write!(head, " {}", function.type_);
        match &function.kind {
            FunctionKind::Import(import) => {
                let _ = writeln!(
                    out,
                    "{head} (import \"{}\" \"{}\"))",
                    import.module, import.name
                );
            }
            FunctionKind::Local(code) => {
                let _ = writeln!(out, "{head}");
                if !code.locals.is_empty() {
                    let locals: Vec<String> = code.locals.iter().map(ToString::to_string).collect();
                    let _ = writeln!(out, "    (local {})", locals.join(" "));
                }
                let mut indent = 4usize;
                for instr in &code.body {
                    match instr {
                        Instr::End | Instr::Else => indent = indent.saturating_sub(2),
                        _ => {}
                    }
                    let _ = writeln!(out, "{:indent$}{instr}", "");
                    match instr {
                        Instr::Block(_) | Instr::Loop(_) | Instr::If(_) | Instr::Else => {
                            indent += 2;
                        }
                        _ => {}
                    }
                }
                let _ = writeln!(out, "  )");
            }
        }
        for export in &function.export {
            let _ = writeln!(out, "  (export \"{export}\" (func $f{i}))");
        }
    }

    for (i, global) in module.globals.iter().enumerate() {
        let mutability = if global.type_.mutable { "mut " } else { "" };
        match &global.kind {
            GlobalKind::Import(import) => {
                let _ = writeln!(
                    out,
                    "  (global $g{i} ({mutability}{}) (import \"{}\" \"{}\"))",
                    global.type_.val_type, import.module, import.name
                );
            }
            GlobalKind::Init(init) => {
                let init_str: Vec<String> = init
                    .iter()
                    .filter(|instr| !matches!(instr, Instr::End))
                    .map(ToString::to_string)
                    .collect();
                let _ = writeln!(
                    out,
                    "  (global $g{i} ({mutability}{}) ({}))",
                    global.type_.val_type,
                    init_str.join(" ")
                );
            }
        }
    }

    for table in &module.tables {
        let _ = writeln!(
            out,
            "  (table {} funcref) ;; {} element segment(s)",
            table.type_.0.initial,
            table.elements.len()
        );
    }
    for memory in &module.memories {
        let _ = writeln!(
            out,
            "  (memory {}) ;; {} data segment(s)",
            memory.type_.0.initial,
            memory.data.len()
        );
    }
    if let Some(start) = module.start {
        let _ = writeln!(out, "  (start $f{start})");
    }

    out.push_str(")\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::types::ValType;

    #[test]
    fn renders_functions_and_structure() {
        let mut builder = ModuleBuilder::new();
        builder.memory(1, None);
        builder.import_function("env", "print", &[ValType::I32], &[]);
        builder.function("main", &[], &[ValType::I32], |f| {
            f.block(None).i32_const(1).br_if(0).end();
            f.i32_const(42);
        });
        let text = render(&builder.finish());
        assert!(text.contains("(module"));
        assert!(text.contains("import \"env\" \"print\""));
        assert!(text.contains("i32.const 42"));
        assert!(text.contains("(export \"main\""));
        assert!(text.contains("(memory 1)"));
        // Nesting: br_if is indented deeper than block.
        let block_line = text
            .lines()
            .find(|l| l.trim_start().starts_with("block"))
            .unwrap();
        let br_line = text
            .lines()
            .find(|l| l.trim_start().starts_with("br_if"))
            .unwrap();
        let indent = |l: &str| l.len() - l.trim_start().len();
        assert!(indent(br_line) > indent(block_line));
    }
}
