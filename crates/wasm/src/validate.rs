//! Type checking and module validation (the paper's `wasm-validate`
//! replacement, §4.3, and the abstract operand stack the instrumenter uses
//! for on-demand monomorphization of `drop`/`select`, §2.4.3).
//!
//! Implements the validation algorithm from the WebAssembly 1.0
//! specification appendix: an abstract operand stack of (possibly unknown)
//! value types plus a control stack of frames, with stack-polymorphic
//! unreachable code handling.

use crate::error::ValidationError;
use crate::instr::{BlockType, GlobalOp, Idx, Instr, Label, LocalOp};
use crate::module::{Function, GlobalKind, Module};
use crate::types::{FuncType, ValType, MAX_PAGES};

/// A value type on the abstract stack: known, or unknown because it
/// originates from stack-polymorphic (unreachable) code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InferredType {
    Known(ValType),
    Unknown,
}

impl InferredType {
    /// The concrete type, if known.
    pub fn known(self) -> Option<ValType> {
        match self {
            InferredType::Known(t) => Some(t),
            InferredType::Unknown => None,
        }
    }

    fn matches(self, expected: ValType) -> bool {
        match self {
            InferredType::Known(t) => t == expected,
            InferredType::Unknown => true,
        }
    }
}

/// What kind of structure opened the current control frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// The implicit block wrapping the whole function body.
    Function,
    Block,
    Loop,
    If,
    Else,
}

#[derive(Debug, Clone)]
struct Frame {
    kind: FrameKind,
    /// Result types of the block (at most one in Wasm 1.0, but kept general).
    end_types: Vec<ValType>,
    /// Operand stack height at frame entry.
    height: usize,
    /// Set once an unconditional branch/return/unreachable was seen.
    unreachable: bool,
}

impl Frame {
    /// Types a branch *to* this frame carries: none for loops (the branch
    /// jumps back to the start), the result types otherwise.
    fn label_types(&self) -> &[ValType] {
        match self.kind {
            FrameKind::Loop => &[],
            _ => &self.end_types,
        }
    }
}

/// Streaming type checker for one function body.
///
/// Feed instructions in order with [`TypeChecker::step`]; query the abstract
/// stack in between. This is exactly the "full type checking during
/// instrumentation" of paper §2.4.3.
#[derive(Debug)]
pub struct TypeChecker {
    frames: Vec<Frame>,
    stack: Vec<InferredType>,
    results: Vec<ValType>,
}

impl TypeChecker {
    /// Start checking the body of `function` (pushes the implicit function
    /// frame).
    pub fn begin_function(function: &Function) -> Self {
        TypeChecker {
            frames: vec![Frame {
                kind: FrameKind::Function,
                end_types: function.type_.results.clone(),
                height: 0,
                unreachable: false,
            }],
            stack: Vec::new(),
            results: function.type_.results.clone(),
        }
    }

    /// `true` while the current code position is reachable.
    pub fn reachable(&self) -> bool {
        self.frames.last().is_none_or(|f| !f.unreachable)
    }

    /// `true` once the implicit function frame has been closed by the final
    /// `end`.
    pub fn done(&self) -> bool {
        self.frames.is_empty()
    }

    /// Type of the operand `depth` positions below the stack top (0 = top),
    /// without popping. Returns `None` if that operand is not statically
    /// available (below the current frame in unreachable code).
    pub fn peek(&self, depth: usize) -> Option<InferredType> {
        if depth < self.stack.len() {
            let idx = self.stack.len() - 1 - depth;
            if let Some(frame) = self.frames.last() {
                if idx < frame.height {
                    return if frame.unreachable {
                        Some(InferredType::Unknown)
                    } else {
                        None
                    };
                }
            }
            Some(self.stack[idx])
        } else if self.frames.last().is_some_and(|f| f.unreachable) {
            Some(InferredType::Unknown)
        } else {
            None
        }
    }

    /// Current depth of the control stack (function frame included).
    pub fn control_depth(&self) -> usize {
        self.frames.len()
    }

    fn push(&mut self, ty: InferredType) {
        self.stack.push(ty);
    }

    fn push_known(&mut self, ty: ValType) {
        self.stack.push(InferredType::Known(ty));
    }

    fn pop(&mut self) -> Result<InferredType, String> {
        let frame = self.frames.last().ok_or("no open control frame")?;
        if self.stack.len() == frame.height {
            return if frame.unreachable {
                Ok(InferredType::Unknown)
            } else {
                Err("operand stack underflow".to_string())
            };
        }
        Ok(self.stack.pop().expect("height checked above"))
    }

    fn expect(&mut self, expected: ValType) -> Result<(), String> {
        let actual = self.pop()?;
        if actual.matches(expected) {
            Ok(())
        } else {
            Err(format!(
                "type mismatch: expected {expected}, found {actual:?}"
            ))
        }
    }

    fn expect_all(&mut self, expected: &[ValType]) -> Result<(), String> {
        for &ty in expected.iter().rev() {
            self.expect(ty)?;
        }
        Ok(())
    }

    fn set_unreachable(&mut self) {
        let frame = self.frames.last_mut().expect("frame exists");
        self.stack.truncate(frame.height);
        frame.unreachable = true;
    }

    fn push_frame(&mut self, kind: FrameKind, block_type: BlockType) {
        self.frames.push(Frame {
            kind,
            end_types: block_type.0.into_iter().collect(),
            height: self.stack.len(),
            unreachable: false,
        });
    }

    fn pop_frame(&mut self) -> Result<Frame, String> {
        let frame = self.frames.last().ok_or("unbalanced end")?.clone();
        self.expect_all(&frame.end_types.clone())?;
        if self.stack.len() != frame.height && !frame.unreachable {
            return Err(format!(
                "{} values left on stack at block end",
                self.stack.len() - frame.height
            ));
        }
        self.stack.truncate(frame.height);
        Ok(self.frames.pop().expect("frame exists"))
    }

    fn label_types(&self, label: Label) -> Result<Vec<ValType>, String> {
        let depth = label.to_usize();
        if depth >= self.frames.len() {
            return Err(format!("branch label {label} out of range"));
        }
        let frame = &self.frames[self.frames.len() - 1 - depth];
        Ok(frame.label_types().to_vec())
    }

    /// Process one instruction.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated typing rule. After an error the
    /// checker state is unspecified; abort checking this function.
    pub fn step(
        &mut self,
        module: &Module,
        function: &Function,
        instr: &Instr,
    ) -> Result<(), String> {
        if self.frames.is_empty() {
            return Err("instruction after function end".to_string());
        }
        match instr {
            Instr::Nop => {}
            Instr::Unreachable => self.set_unreachable(),

            Instr::Block(bt) => self.push_frame(FrameKind::Block, *bt),
            Instr::Loop(bt) => self.push_frame(FrameKind::Loop, *bt),
            Instr::If(bt) => {
                self.expect(ValType::I32)?;
                self.push_frame(FrameKind::If, *bt);
            }
            Instr::Else => {
                let frame = self.pop_frame()?;
                if frame.kind != FrameKind::If {
                    return Err("else without matching if".to_string());
                }
                self.push_frame(FrameKind::Else, BlockType(frame.end_types.first().copied()));
            }
            Instr::End => {
                let frame = self.pop_frame()?;
                if frame.kind == FrameKind::If && !frame.end_types.is_empty() {
                    return Err("if with result type requires an else branch".to_string());
                }
                for ty in frame.end_types {
                    self.push_known(ty);
                }
            }

            Instr::Br(label) => {
                let types = self.label_types(*label)?;
                self.expect_all(&types)?;
                self.set_unreachable();
            }
            Instr::BrIf(label) => {
                self.expect(ValType::I32)?;
                let types = self.label_types(*label)?;
                self.expect_all(&types)?;
                for ty in types {
                    self.push_known(ty);
                }
            }
            Instr::BrTable { table, default } => {
                self.expect(ValType::I32)?;
                let default_types = self.label_types(*default)?;
                for label in table {
                    let types = self.label_types(*label)?;
                    if types != default_types {
                        return Err("br_table labels have inconsistent types".to_string());
                    }
                }
                self.expect_all(&default_types)?;
                self.set_unreachable();
            }
            Instr::Return => {
                self.expect_all(&self.results.clone())?;
                self.set_unreachable();
            }

            Instr::Call(idx) => {
                let callee = module
                    .functions
                    .get(idx.to_usize())
                    .ok_or_else(|| format!("call to unknown function {idx}"))?;
                let ty = callee.type_.clone();
                self.expect_all(&ty.params)?;
                for r in ty.results {
                    self.push_known(r);
                }
            }
            Instr::CallIndirect(ty, table_idx) => {
                if module.tables.get(table_idx.to_usize()).is_none() {
                    return Err("call_indirect without table".to_string());
                }
                self.expect(ValType::I32)?;
                self.expect_all(&ty.params)?;
                for &r in &ty.results {
                    self.push_known(r);
                }
            }

            Instr::Drop => {
                self.pop()?;
            }
            Instr::Select => {
                self.expect(ValType::I32)?;
                let second = self.pop()?;
                let first = self.pop()?;
                match (first, second) {
                    (InferredType::Known(a), InferredType::Known(b)) if a != b => {
                        return Err(format!("select operands differ: {a} vs {b}"));
                    }
                    _ => {}
                }
                self.push(if first.known().is_some() {
                    first
                } else {
                    second
                });
            }

            Instr::Local(op, idx) => {
                let ty = function
                    .local_type(*idx)
                    .ok_or_else(|| format!("unknown local {idx}"))?;
                match op {
                    LocalOp::Get => self.push_known(ty),
                    LocalOp::Set => self.expect(ty)?,
                    LocalOp::Tee => {
                        self.expect(ty)?;
                        self.push_known(ty);
                    }
                }
            }
            Instr::Global(op, idx) => {
                let global = module
                    .globals
                    .get(idx.to_usize())
                    .ok_or_else(|| format!("unknown global {idx}"))?;
                match op {
                    GlobalOp::Get => self.push_known(global.type_.val_type),
                    GlobalOp::Set => {
                        if !global.type_.mutable {
                            return Err(format!("set_global of immutable global {idx}"));
                        }
                        self.expect(global.type_.val_type)?;
                    }
                }
            }

            Instr::Load(op, memarg) => {
                if module.memories.is_empty() {
                    return Err("load without memory".to_string());
                }
                if 1u64 << memarg.alignment_exp > u64::from(op.access_bytes()) {
                    return Err(format!("alignment of {op} exceeds access width"));
                }
                self.expect(ValType::I32)?;
                self.push_known(op.result());
            }
            Instr::Store(op, memarg) => {
                if module.memories.is_empty() {
                    return Err("store without memory".to_string());
                }
                if 1u64 << memarg.alignment_exp > u64::from(op.access_bytes()) {
                    return Err(format!("alignment of {op} exceeds access width"));
                }
                self.expect(op.value_type())?;
                self.expect(ValType::I32)?;
            }
            Instr::MemorySize(_) => {
                if module.memories.is_empty() {
                    return Err("memory.size without memory".to_string());
                }
                self.push_known(ValType::I32);
            }
            Instr::MemoryGrow(_) => {
                if module.memories.is_empty() {
                    return Err("memory.grow without memory".to_string());
                }
                self.expect(ValType::I32)?;
                self.push_known(ValType::I32);
            }

            Instr::Const(val) => self.push_known(val.ty()),
            Instr::Unary(op) => {
                self.expect(op.input())?;
                self.push_known(op.result());
            }
            Instr::Binary(op) => {
                self.expect(op.input())?;
                self.expect(op.input())?;
                self.push_known(op.result());
            }
        }
        Ok(())
    }
}

/// Validate a whole module: all function bodies type check, constant
/// expressions are well-formed, and all indices are in bounds.
///
/// # Errors
///
/// Returns the first [`ValidationError`] found.
pub fn validate(module: &Module) -> Result<(), ValidationError> {
    validate_module_structure(module)?;
    for (func_idx, function) in module.iter_functions() {
        if function.code().is_some() {
            validate_function(module, func_idx.to_u32(), function)?;
        }
    }
    Ok(())
}

fn validate_module_structure(module: &Module) -> Result<(), ValidationError> {
    if module.tables.len() > 1 {
        return Err(ValidationError::module("at most one table is allowed"));
    }
    if module.memories.len() > 1 {
        return Err(ValidationError::module("at most one memory is allowed"));
    }
    for memory in &module.memories {
        let limits = memory.type_.0;
        if limits.initial > MAX_PAGES || limits.max.is_some_and(|max| max > MAX_PAGES) {
            return Err(ValidationError::module("memory limits exceed 4 GiB"));
        }
        if limits.max.is_some_and(|max| max < limits.initial) {
            return Err(ValidationError::module("memory max below initial size"));
        }
        for data in &memory.data {
            validate_const_expr(module, &data.offset, ValType::I32)?;
        }
    }
    for table in &module.tables {
        let limits = table.type_.0;
        if limits.max.is_some_and(|max| max < limits.initial) {
            return Err(ValidationError::module("table max below initial size"));
        }
        for element in &table.elements {
            validate_const_expr(module, &element.offset, ValType::I32)?;
            for f in &element.functions {
                if f.to_usize() >= module.functions.len() {
                    return Err(ValidationError::module(format!(
                        "element segment references unknown function {f}"
                    )));
                }
            }
        }
    }
    for (i, global) in module.globals.iter().enumerate() {
        if let GlobalKind::Init(init) = &global.kind {
            validate_const_expr(module, init, global.type_.val_type).map_err(|mut e| {
                e.message = format!("global {i}: {}", e.message);
                e
            })?;
        }
    }
    if let Some(start) = module.start {
        let function = module
            .functions
            .get(start.to_usize())
            .ok_or_else(|| ValidationError::module("start function index out of bounds"))?;
        if function.type_ != FuncType::new(&[], &[]) {
            return Err(ValidationError::module(
                "start function must have type [] -> []",
            ));
        }
    }

    // Export names must be unique across all index spaces.
    let mut names = std::collections::HashSet::new();
    let all_exports = module
        .functions
        .iter()
        .flat_map(|f| f.export.iter())
        .chain(module.tables.iter().flat_map(|t| t.export.iter()))
        .chain(module.memories.iter().flat_map(|m| m.export.iter()))
        .chain(module.globals.iter().flat_map(|g| g.export.iter()));
    for name in all_exports {
        if !names.insert(name) {
            return Err(ValidationError::module(format!(
                "duplicate export name {name:?}"
            )));
        }
    }
    Ok(())
}

/// A constant expression is a single `const` or `get_global` (of an
/// immutable imported global) followed by `end`.
fn validate_const_expr(
    module: &Module,
    expr: &[Instr],
    expected: ValType,
) -> Result<(), ValidationError> {
    let err = |msg: &str| Err(ValidationError::module(msg.to_string()));
    match expr {
        [Instr::Const(val), Instr::End] => {
            if val.ty() != expected {
                return err("constant expression has wrong type");
            }
            Ok(())
        }
        [Instr::Global(GlobalOp::Get, idx), Instr::End] => {
            let global = match module.globals.get(idx.to_usize()) {
                Some(g) => g,
                None => return err("constant expression references unknown global"),
            };
            if global.import().is_none() {
                return err("constant expression may only reference imported globals");
            }
            if global.type_.mutable {
                return err("constant expression may not reference mutable globals");
            }
            if global.type_.val_type != expected {
                return err("constant expression has wrong type");
            }
            Ok(())
        }
        _ => err("unsupported constant expression"),
    }
}

fn validate_function(
    module: &Module,
    func_idx: u32,
    function: &Function,
) -> Result<(), ValidationError> {
    let code = function.code().expect("caller checked");
    let mut checker = TypeChecker::begin_function(function);
    for (i, instr) in code.body.iter().enumerate() {
        checker
            .step(module, function, instr)
            .map_err(|msg| ValidationError::at(func_idx, i as u32, msg))?;
    }
    if !checker.done() {
        return Err(ValidationError {
            func: Some(func_idx),
            instr: None,
            message: "function body not terminated by end".to_string(),
        });
    }
    Ok(())
}

#[allow(unused)]
fn idx_usize<T>(idx: Idx<T>) -> usize {
    idx.to_usize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{BinaryOp, Label, LoadOp, Memarg, StoreOp, UnaryOp, Val};
    use crate::module::Memory;
    use crate::types::Limits;

    fn module_with_body(
        params: &[ValType],
        results: &[ValType],
        body: Vec<Instr>,
    ) -> (Module, Function) {
        let mut module = Module::new();
        module.memories.push(Memory::new(Limits::at_least(1)));
        let idx = module.add_function(FuncType::new(params, results), vec![], body);
        let function = module.function(idx).clone();
        (module, function)
    }

    fn check(
        params: &[ValType],
        results: &[ValType],
        body: Vec<Instr>,
    ) -> Result<(), ValidationError> {
        let (module, _) = module_with_body(params, results, body);
        validate(&module)
    }

    #[test]
    fn valid_add_function() {
        check(
            &[ValType::I32, ValType::I32],
            &[ValType::I32],
            vec![
                Instr::Local(LocalOp::Get, Idx::from(0u32)),
                Instr::Local(LocalOp::Get, Idx::from(1u32)),
                Instr::Binary(BinaryOp::I32Add),
                Instr::End,
            ],
        )
        .expect("valid");
    }

    #[test]
    fn type_mismatch_detected() {
        let err = check(
            &[],
            &[ValType::I32],
            vec![
                Instr::Const(Val::F32(1.0)),
                Instr::Const(Val::I32(1)),
                Instr::Binary(BinaryOp::I32Add),
                Instr::End,
            ],
        )
        .expect_err("must fail");
        assert!(err.message.contains("type mismatch"), "{err}");
    }

    #[test]
    fn stack_underflow_detected() {
        let err = check(&[], &[], vec![Instr::Binary(BinaryOp::I32Add), Instr::End])
            .expect_err("must fail");
        assert!(err.message.contains("underflow"), "{err}");
    }

    #[test]
    fn leftover_values_detected() {
        let err =
            check(&[], &[], vec![Instr::Const(Val::I32(1)), Instr::End]).expect_err("must fail");
        assert!(err.message.contains("left on stack"), "{err}");
    }

    #[test]
    fn unreachable_code_is_stack_polymorphic() {
        // After `unreachable`, drop and add type check against the unknown
        // stack (spec appendix algorithm).
        check(
            &[],
            &[ValType::I32],
            vec![
                Instr::Unreachable,
                Instr::Drop,
                Instr::Binary(BinaryOp::I32Add),
                Instr::End,
            ],
        )
        .expect("valid per spec");
    }

    #[test]
    fn branch_label_out_of_range() {
        let err = check(&[], &[], vec![Instr::Br(Label(5)), Instr::End]).expect_err("must fail");
        assert!(err.message.contains("out of range"), "{err}");
    }

    #[test]
    fn paper_figure_4_control_flow_validates() {
        // block block get_local 0 br_if 1 end end
        check(
            &[ValType::I32],
            &[],
            vec![
                Instr::Block(BlockType(None)),
                Instr::Block(BlockType(None)),
                Instr::Local(LocalOp::Get, Idx::from(0u32)),
                Instr::BrIf(Label(1)),
                Instr::End,
                Instr::End,
                Instr::End,
            ],
        )
        .expect("valid");
    }

    #[test]
    fn block_result_types() {
        check(
            &[],
            &[ValType::F64],
            vec![
                Instr::Block(BlockType(Some(ValType::F64))),
                Instr::Const(Val::F64(3.25)),
                Instr::End,
                Instr::End,
            ],
        )
        .expect("valid");
    }

    #[test]
    fn loop_label_takes_no_values() {
        // br to a loop must not carry the loop's result type.
        check(
            &[],
            &[ValType::I32],
            vec![
                Instr::Loop(BlockType(Some(ValType::I32))),
                Instr::Const(Val::I32(0)),
                Instr::BrIf(Label(0)),
                Instr::Const(Val::I32(42)),
                Instr::End,
                Instr::End,
            ],
        )
        .expect("valid");
    }

    #[test]
    fn if_with_result_requires_else() {
        let err = check(
            &[ValType::I32],
            &[ValType::I32],
            vec![
                Instr::Local(LocalOp::Get, Idx::from(0u32)),
                Instr::If(BlockType(Some(ValType::I32))),
                Instr::Const(Val::I32(1)),
                Instr::End,
                Instr::End,
            ],
        )
        .expect_err("must fail");
        assert!(err.message.contains("else"), "{err}");
    }

    #[test]
    fn if_else_with_result() {
        check(
            &[ValType::I32],
            &[ValType::I32],
            vec![
                Instr::Local(LocalOp::Get, Idx::from(0u32)),
                Instr::If(BlockType(Some(ValType::I32))),
                Instr::Const(Val::I32(1)),
                Instr::Else,
                Instr::Const(Val::I32(2)),
                Instr::End,
                Instr::End,
            ],
        )
        .expect("valid");
    }

    #[test]
    fn select_requires_matching_operands() {
        let err = check(
            &[],
            &[],
            vec![
                Instr::Const(Val::I32(1)),
                Instr::Const(Val::F64(2.0)),
                Instr::Const(Val::I32(0)),
                Instr::Select,
                Instr::Drop,
                Instr::End,
            ],
        )
        .expect_err("must fail");
        assert!(err.message.contains("select"), "{err}");
    }

    #[test]
    fn drop_type_inference_via_peek() {
        let (module, function) = module_with_body(
            &[],
            &[],
            vec![Instr::Const(Val::F64(1.0)), Instr::Drop, Instr::End],
        );
        let mut checker = TypeChecker::begin_function(&function);
        checker
            .step(&module, &function, &Instr::Const(Val::F64(1.0)))
            .expect("ok");
        assert_eq!(checker.peek(0), Some(InferredType::Known(ValType::F64)));
    }

    #[test]
    fn set_of_immutable_global_rejected() {
        let mut module = Module::new();
        module.add_global(crate::types::GlobalType::const_(ValType::I32), Val::I32(0));
        module.add_function(
            FuncType::new(&[], &[]),
            vec![],
            vec![
                Instr::Const(Val::I32(1)),
                Instr::Global(GlobalOp::Set, Idx::from(0u32)),
                Instr::End,
            ],
        );
        let err = validate(&module).expect_err("must fail");
        assert!(err.message.contains("immutable"), "{err}");
    }

    #[test]
    fn load_store_without_memory_rejected() {
        let mut module = Module::new();
        module.add_function(
            FuncType::new(&[], &[]),
            vec![],
            vec![
                Instr::Const(Val::I32(0)),
                Instr::Load(LoadOp::I32Load, Memarg::natural(4)),
                Instr::Drop,
                Instr::End,
            ],
        );
        let err = validate(&module).expect_err("must fail");
        assert!(err.message.contains("memory"), "{err}");
    }

    #[test]
    fn excessive_alignment_rejected() {
        let mut module = Module::new();
        module.memories.push(Memory::new(Limits::at_least(1)));
        module.add_function(
            FuncType::new(&[], &[]),
            vec![],
            vec![
                Instr::Const(Val::I32(0)),
                Instr::Const(Val::I32(0)),
                Instr::Store(
                    StoreOp::I32Store,
                    Memarg {
                        alignment_exp: 3,
                        offset: 0,
                    },
                ),
                Instr::End,
            ],
        );
        let err = validate(&module).expect_err("must fail");
        assert!(err.message.contains("alignment"), "{err}");
    }

    #[test]
    fn br_table_validates() {
        check(
            &[ValType::I32],
            &[],
            vec![
                Instr::Block(BlockType(None)),
                Instr::Block(BlockType(None)),
                Instr::Local(LocalOp::Get, Idx::from(0u32)),
                Instr::BrTable {
                    table: vec![Label(0), Label(1)],
                    default: Label(0),
                },
                Instr::End,
                Instr::End,
                Instr::End,
            ],
        )
        .expect("valid");
    }

    #[test]
    fn start_function_type_enforced() {
        let mut module = Module::new();
        let idx = module.add_function(
            FuncType::new(&[ValType::I32], &[]),
            vec![],
            vec![Instr::End],
        );
        module.start = Some(idx);
        let err = validate(&module).expect_err("must fail");
        assert!(err.message.contains("start"), "{err}");
    }

    #[test]
    fn duplicate_export_names_rejected() {
        let mut module = Module::new();
        let a = module.add_function(FuncType::new(&[], &[]), vec![], vec![Instr::End]);
        let b = module.add_function(FuncType::new(&[], &[]), vec![], vec![Instr::End]);
        module.function_mut(a).export.push("f".to_string());
        module.function_mut(b).export.push("f".to_string());
        let err = validate(&module).expect_err("must fail");
        assert!(err.message.contains("duplicate"), "{err}");
    }

    #[test]
    fn unary_conversion_chain_validates() {
        check(
            &[],
            &[ValType::I64],
            vec![
                Instr::Const(Val::F32(1.5)),
                Instr::Unary(UnaryOp::F64PromoteF32),
                Instr::Unary(UnaryOp::I64TruncSF64),
                Instr::End,
            ],
        )
        .expect("valid");
    }
}
