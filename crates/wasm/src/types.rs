//! Value, function, global, table, and memory types of WebAssembly 1.0.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The four primitive WebAssembly value types (paper Fig. 3, `typeval`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ValType {
    /// 32-bit integer (sign-agnostic).
    I32,
    /// 64-bit integer (sign-agnostic).
    I64,
    /// 32-bit IEEE 754 float.
    F32,
    /// 64-bit IEEE 754 float.
    F64,
}

impl ValType {
    /// All value types, in binary-format discriminant order.
    pub const ALL: [ValType; 4] = [ValType::I32, ValType::I64, ValType::F32, ValType::F64];

    /// Size of a value of this type in bytes.
    pub fn size_bytes(self) -> u32 {
        match self {
            ValType::I32 | ValType::F32 => 4,
            ValType::I64 | ValType::F64 => 8,
        }
    }

    /// Short one-character mnemonic used in monomorphized hook names
    /// (`i`, `I`, `f`, `F`).
    pub fn to_char(self) -> char {
        match self {
            ValType::I32 => 'i',
            ValType::I64 => 'I',
            ValType::F32 => 'f',
            ValType::F64 => 'F',
        }
    }

    /// Inverse of [`ValType::to_char`].
    pub fn from_char(c: char) -> Option<ValType> {
        match c {
            'i' => Some(ValType::I32),
            'I' => Some(ValType::I64),
            'f' => Some(ValType::F32),
            'F' => Some(ValType::F64),
            _ => None,
        }
    }

    /// `true` for `i32`/`i64`.
    pub fn is_int(self) -> bool {
        matches!(self, ValType::I32 | ValType::I64)
    }

    /// `true` for `f32`/`f64`.
    pub fn is_float(self) -> bool {
        matches!(self, ValType::F32 | ValType::F64)
    }
}

impl fmt::Display for ValType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ValType::I32 => "i32",
            ValType::I64 => "i64",
            ValType::F32 => "f32",
            ValType::F64 => "f64",
        })
    }
}

/// A function type: parameters and results (paper Fig. 3, `typefunc`).
///
/// WebAssembly 1.0 binaries allow at most one result, but the AST (like the
/// formal semantics of Haas et al.) supports arbitrarily many.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FuncType {
    pub params: Vec<ValType>,
    pub results: Vec<ValType>,
}

impl FuncType {
    /// Create a function type from parameter and result slices.
    pub fn new(params: &[ValType], results: &[ValType]) -> Self {
        FuncType {
            params: params.to_vec(),
            results: results.to_vec(),
        }
    }
}

impl fmt::Display for FuncType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, t) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "] -> [")?;
        for (i, t) in self.results.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "]")
    }
}

/// Minimum and optional maximum size of a table or memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Limits {
    pub initial: u32,
    pub max: Option<u32>,
}

impl Limits {
    /// Limits with an initial size and no maximum.
    pub fn at_least(initial: u32) -> Self {
        Limits { initial, max: None }
    }

    /// Limits with both an initial size and a maximum.
    pub fn bounded(initial: u32, max: u32) -> Self {
        Limits {
            initial,
            max: Some(max),
        }
    }
}

/// Memory type: limits in units of 64 KiB pages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemoryType(pub Limits);

/// Table type: limits in number of `funcref` elements (the only element type
/// in WebAssembly 1.0).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TableType(pub Limits);

/// Global type: a value type plus mutability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GlobalType {
    pub val_type: ValType,
    pub mutable: bool,
}

impl GlobalType {
    /// An immutable global of the given value type.
    pub fn const_(val_type: ValType) -> Self {
        GlobalType {
            val_type,
            mutable: false,
        }
    }

    /// A mutable global of the given value type.
    pub fn mutable(val_type: ValType) -> Self {
        GlobalType {
            val_type,
            mutable: true,
        }
    }
}

/// WebAssembly page size: 64 KiB.
pub const PAGE_SIZE: u32 = 65536;

/// Hard limit on the number of memory pages (4 GiB address space).
pub const MAX_PAGES: u32 = 65536;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valtype_char_roundtrip() {
        for t in ValType::ALL {
            assert_eq!(ValType::from_char(t.to_char()), Some(t));
        }
        assert_eq!(ValType::from_char('x'), None);
    }

    #[test]
    fn valtype_display() {
        assert_eq!(ValType::I32.to_string(), "i32");
        assert_eq!(ValType::F64.to_string(), "f64");
    }

    #[test]
    fn valtype_sizes() {
        assert_eq!(ValType::I32.size_bytes(), 4);
        assert_eq!(ValType::I64.size_bytes(), 8);
        assert_eq!(ValType::F32.size_bytes(), 4);
        assert_eq!(ValType::F64.size_bytes(), 8);
    }

    #[test]
    fn valtype_classification() {
        assert!(ValType::I32.is_int() && ValType::I64.is_int());
        assert!(ValType::F32.is_float() && ValType::F64.is_float());
        assert!(!ValType::I32.is_float() && !ValType::F64.is_int());
    }

    #[test]
    fn functype_display() {
        let ty = FuncType::new(&[ValType::I32, ValType::F64], &[ValType::I64]);
        assert_eq!(ty.to_string(), "[i32 f64] -> [I64]".replace("I64", "i64"));
    }

    #[test]
    fn limits_constructors() {
        assert_eq!(
            Limits::at_least(3),
            Limits {
                initial: 3,
                max: None
            }
        );
        assert_eq!(
            Limits::bounded(1, 5),
            Limits {
                initial: 1,
                max: Some(5)
            }
        );
    }
}
