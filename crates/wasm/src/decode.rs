//! Binary format decoder: bytes → [`Module`] AST.
//!
//! Because the binary format places all imports before all local
//! definitions, the decoder's AST indices coincide with binary indices (the
//! encoder's remapping is the identity on freshly-decoded modules).

use crate::error::{DecodeError, DecodeErrorKind};
use crate::instr::{
    BinaryOp, BlockType, GlobalOp, Idx, Instr, Label, LoadOp, LocalOp, Memarg, StoreOp, UnaryOp,
    Val,
};
use crate::leb128::Reader;
use crate::module::{
    Code, CustomSection, Data, Element, Function, FunctionKind, Global, GlobalKind, Import, Memory,
    Module, Table,
};
use crate::types::{FuncType, GlobalType, Limits, MemoryType, TableType, ValType};

/// Magic bytes at the start of every Wasm binary: `\0asm`.
pub const MAGIC: [u8; 4] = [0x00, 0x61, 0x73, 0x6d];
/// Binary format version 1 (little-endian u32).
pub const VERSION: [u8; 4] = [0x01, 0x00, 0x00, 0x00];

/// Decode a WebAssembly binary into a [`Module`].
///
/// # Errors
///
/// Returns a [`DecodeError`] with byte-offset information if the input is
/// malformed. Note that decoding does not type check; use
/// [`crate::validate::validate`] for that.
pub fn decode(bytes: &[u8]) -> Result<Module, DecodeError> {
    Decoder::new(bytes).run()
}

struct Decoder<'a> {
    r: Reader<'a>,
    module: Module,
    /// Type section contents, referenced by later sections.
    types: Vec<FuncType>,
    /// AST indices of local (non-imported) functions declared by the
    /// function section; their bodies are filled in by the code section.
    local_function_indices: Vec<usize>,
    /// Number of imported functions (= index of the first local function).
    imported_function_count: usize,
}

impl<'a> Decoder<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Decoder {
            r: Reader::new(bytes),
            module: Module::new(),
            types: Vec::new(),
            local_function_indices: Vec::new(),
            imported_function_count: 0,
        }
    }

    fn err(&self, kind: DecodeErrorKind) -> DecodeError {
        DecodeError::new(self.r.pos(), kind)
    }

    fn run(mut self) -> Result<Module, DecodeError> {
        if self.r.bytes(4)? != MAGIC {
            return Err(self.err(DecodeErrorKind::InvalidMagic));
        }
        if self.r.bytes(4)? != VERSION {
            return Err(self.err(DecodeErrorKind::InvalidVersion));
        }

        let mut last_section_id = 0u8;
        while !self.r.is_at_end() {
            let id = self.r.byte()?;
            let size = self.r.u32()? as usize;
            let section_end = self.r.pos() + size;
            if self.r.remaining() < size {
                return Err(self.err(DecodeErrorKind::UnexpectedEof));
            }
            if id > 11 {
                return Err(self.err(DecodeErrorKind::InvalidSection(id)));
            }
            // Non-custom sections must appear in increasing id order.
            if id != 0 {
                if id <= last_section_id {
                    return Err(self.err(DecodeErrorKind::InvalidSection(id)));
                }
                last_section_id = id;
            }
            match id {
                0 => self.custom_section(section_end)?,
                1 => self.type_section()?,
                2 => self.import_section()?,
                3 => self.function_section()?,
                4 => self.table_section()?,
                5 => self.memory_section()?,
                6 => self.global_section()?,
                7 => self.export_section()?,
                8 => self.start_section()?,
                9 => self.element_section()?,
                10 => self.code_section()?,
                11 => self.data_section()?,
                _ => unreachable!("section id checked above"),
            }
            if self.r.pos() != section_end {
                return Err(self.err(DecodeErrorKind::SizeMismatch));
            }
        }

        Ok(self.module)
    }

    fn val_type(&mut self) -> Result<ValType, DecodeError> {
        let byte = self.r.byte()?;
        match byte {
            0x7f => Ok(ValType::I32),
            0x7e => Ok(ValType::I64),
            0x7d => Ok(ValType::F32),
            0x7c => Ok(ValType::F64),
            other => Err(self.err(DecodeErrorKind::InvalidType(other))),
        }
    }

    fn block_type(&mut self) -> Result<BlockType, DecodeError> {
        let byte = self.r.byte()?;
        match byte {
            0x40 => Ok(BlockType(None)),
            0x7f => Ok(BlockType(Some(ValType::I32))),
            0x7e => Ok(BlockType(Some(ValType::I64))),
            0x7d => Ok(BlockType(Some(ValType::F32))),
            0x7c => Ok(BlockType(Some(ValType::F64))),
            other => Err(self.err(DecodeErrorKind::InvalidType(other))),
        }
    }

    fn func_type(&mut self) -> Result<FuncType, DecodeError> {
        let tag = self.r.byte()?;
        if tag != 0x60 {
            return Err(self.err(DecodeErrorKind::InvalidType(tag)));
        }
        let param_count = self.r.u32()? as usize;
        let mut params = Vec::with_capacity(param_count.min(64));
        for _ in 0..param_count {
            params.push(self.val_type()?);
        }
        let result_count = self.r.u32()? as usize;
        let mut results = Vec::with_capacity(result_count.min(8));
        for _ in 0..result_count {
            results.push(self.val_type()?);
        }
        Ok(FuncType { params, results })
    }

    fn limits(&mut self) -> Result<Limits, DecodeError> {
        let flag = self.r.byte()?;
        let initial = self.r.u32()?;
        let max = match flag {
            0x00 => None,
            0x01 => Some(self.r.u32()?),
            other => return Err(self.err(DecodeErrorKind::InvalidKind(other))),
        };
        Ok(Limits { initial, max })
    }

    fn table_type(&mut self) -> Result<TableType, DecodeError> {
        let elem_type = self.r.byte()?;
        if elem_type != 0x70 {
            return Err(self.err(DecodeErrorKind::InvalidType(elem_type)));
        }
        Ok(TableType(self.limits()?))
    }

    fn global_type(&mut self) -> Result<GlobalType, DecodeError> {
        let val_type = self.val_type()?;
        let mutable = match self.r.byte()? {
            0x00 => false,
            0x01 => true,
            other => return Err(self.err(DecodeErrorKind::InvalidKind(other))),
        };
        Ok(GlobalType { val_type, mutable })
    }

    fn lookup_type(&self, idx: u32) -> Result<FuncType, DecodeError> {
        self.types
            .get(idx as usize)
            .cloned()
            .ok_or_else(|| DecodeError::new(self.r.pos(), DecodeErrorKind::IndexOutOfBounds))
    }

    fn custom_section(&mut self, section_end: usize) -> Result<(), DecodeError> {
        let name = self.r.name()?;
        if self.r.pos() > section_end {
            return Err(self.err(DecodeErrorKind::SizeMismatch));
        }
        let bytes = self.r.bytes(section_end - self.r.pos())?.to_vec();
        if name == "name" {
            // Parse the standard debug-name section into structured names.
            // A malformed name section is ignored (engines do the same)
            // and kept as an opaque custom section instead.
            if self.parse_name_section(&bytes).is_ok() {
                return Ok(());
            }
        }
        self.module
            .custom_sections
            .push(CustomSection { name, bytes });
        Ok(())
    }

    /// The "name" custom section: subsections for the module name (id 0)
    /// and function names (id 1). Local-name subsections (id 2) are
    /// dropped, like in the original Wasabi.
    fn parse_name_section(&mut self, bytes: &[u8]) -> Result<(), DecodeError> {
        let mut r = Reader::new(bytes);
        let mut module_name = None;
        let mut function_names: Vec<(u32, String)> = Vec::new();
        while !r.is_at_end() {
            let id = r.byte()?;
            let size = r.u32()? as usize;
            if r.remaining() < size {
                return Err(DecodeError::new(r.pos(), DecodeErrorKind::UnexpectedEof));
            }
            let mut sub = Reader::new(r.bytes(size)?);
            match id {
                0 => module_name = Some(sub.name()?),
                1 => {
                    let count = sub.u32()?;
                    for _ in 0..count {
                        let func_idx = sub.u32()?;
                        let name = sub.name()?;
                        if func_idx as usize >= self.module.functions.len() {
                            return Err(DecodeError::new(0, DecodeErrorKind::IndexOutOfBounds));
                        }
                        function_names.push((func_idx, name));
                    }
                }
                _ => {} // local names and nonstandard subsections: dropped
            }
        }
        self.module.name = module_name;
        for (func_idx, name) in function_names {
            self.module.functions[func_idx as usize].name = Some(name);
        }
        Ok(())
    }

    fn type_section(&mut self) -> Result<(), DecodeError> {
        let count = self.r.u32()?;
        for _ in 0..count {
            let ty = self.func_type()?;
            self.types.push(ty);
        }
        Ok(())
    }

    fn import_section(&mut self) -> Result<(), DecodeError> {
        let count = self.r.u32()?;
        for _ in 0..count {
            let module = self.r.name()?;
            let name = self.r.name()?;
            let import = Import { module, name };
            match self.r.byte()? {
                0x00 => {
                    let type_idx = self.r.u32()?;
                    let type_ = self.lookup_type(type_idx)?;
                    self.module.functions.push(Function {
                        type_,
                        kind: FunctionKind::Import(import),
                        export: Vec::new(),
                        name: None,
                    });
                    self.imported_function_count += 1;
                }
                0x01 => {
                    let type_ = self.table_type()?;
                    self.module.tables.push(Table {
                        type_,
                        import: Some(import),
                        elements: Vec::new(),
                        export: Vec::new(),
                    });
                }
                0x02 => {
                    let type_ = MemoryType(self.limits()?);
                    self.module.memories.push(Memory {
                        type_,
                        import: Some(import),
                        data: Vec::new(),
                        export: Vec::new(),
                    });
                }
                0x03 => {
                    let type_ = self.global_type()?;
                    self.module.globals.push(Global {
                        type_,
                        kind: GlobalKind::Import(import),
                        export: Vec::new(),
                    });
                }
                other => return Err(self.err(DecodeErrorKind::InvalidKind(other))),
            }
        }
        Ok(())
    }

    fn function_section(&mut self) -> Result<(), DecodeError> {
        let count = self.r.u32()?;
        for _ in 0..count {
            let type_idx = self.r.u32()?;
            let type_ = self.lookup_type(type_idx)?;
            // Placeholder body; the code section fills it in. Creating the
            // entry now gives later sections (export, element, start) valid
            // function indices to reference.
            self.local_function_indices
                .push(self.module.functions.len());
            self.module.functions.push(Function {
                type_,
                kind: FunctionKind::Local(Code::default()),
                export: Vec::new(),
                name: None,
            });
        }
        Ok(())
    }

    fn table_section(&mut self) -> Result<(), DecodeError> {
        let count = self.r.u32()?;
        for _ in 0..count {
            let type_ = self.table_type()?;
            self.module.tables.push(Table {
                type_,
                import: None,
                elements: Vec::new(),
                export: Vec::new(),
            });
        }
        Ok(())
    }

    fn memory_section(&mut self) -> Result<(), DecodeError> {
        let count = self.r.u32()?;
        for _ in 0..count {
            let type_ = MemoryType(self.limits()?);
            self.module.memories.push(Memory {
                type_,
                import: None,
                data: Vec::new(),
                export: Vec::new(),
            });
        }
        Ok(())
    }

    fn global_section(&mut self) -> Result<(), DecodeError> {
        let count = self.r.u32()?;
        for _ in 0..count {
            let type_ = self.global_type()?;
            let init = self.const_expr()?;
            self.module.globals.push(Global {
                type_,
                kind: GlobalKind::Init(init),
                export: Vec::new(),
            });
        }
        Ok(())
    }

    fn export_section(&mut self) -> Result<(), DecodeError> {
        let count = self.r.u32()?;
        for _ in 0..count {
            let name = self.r.name()?;
            let kind = self.r.byte()?;
            let idx = self.r.u32()? as usize;
            let export_list = match kind {
                0x00 => self.module.functions.get_mut(idx).map(|f| &mut f.export),
                0x01 => self.module.tables.get_mut(idx).map(|t| &mut t.export),
                0x02 => self.module.memories.get_mut(idx).map(|m| &mut m.export),
                0x03 => self.module.globals.get_mut(idx).map(|g| &mut g.export),
                other => return Err(self.err(DecodeErrorKind::InvalidKind(other))),
            };
            match export_list {
                Some(list) => list.push(name),
                None => return Err(self.err(DecodeErrorKind::IndexOutOfBounds)),
            }
        }
        Ok(())
    }

    fn start_section(&mut self) -> Result<(), DecodeError> {
        let idx = self.r.u32()?;
        self.module.start = Some(Idx::from(idx));
        Ok(())
    }

    fn element_section(&mut self) -> Result<(), DecodeError> {
        let count = self.r.u32()?;
        for _ in 0..count {
            let table_idx = self.r.u32()? as usize;
            let offset = self.const_expr()?;
            let func_count = self.r.u32()? as usize;
            let mut functions = Vec::with_capacity(func_count.min(1024));
            for _ in 0..func_count {
                functions.push(Idx::from(self.r.u32()?));
            }
            let table = self
                .module
                .tables
                .get_mut(table_idx)
                .ok_or_else(|| DecodeError::new(0, DecodeErrorKind::IndexOutOfBounds))?;
            table.elements.push(Element { offset, functions });
        }
        Ok(())
    }

    fn code_section(&mut self) -> Result<(), DecodeError> {
        let count = self.r.u32()? as usize;
        if count != self.local_function_indices.len() {
            return Err(self.err(DecodeErrorKind::Malformed(
                "function and code section disagree",
            )));
        }
        for i in 0..count {
            let size = self.r.u32()? as usize;
            let body_end = self.r.pos() + size;

            let local_group_count = self.r.u32()? as usize;
            let mut locals = Vec::new();
            for _ in 0..local_group_count {
                let n = self.r.u32()? as usize;
                let ty = self.val_type()?;
                if locals.len() + n > 1_000_000 {
                    return Err(self.err(DecodeErrorKind::Malformed("too many locals")));
                }
                locals.extend(std::iter::repeat(ty).take(n));
            }

            let body = self.instr_seq()?;
            if self.r.pos() != body_end {
                return Err(self.err(DecodeErrorKind::SizeMismatch));
            }

            let ast_index = self.local_function_indices[i];
            self.module.functions[ast_index].kind = FunctionKind::Local(Code { locals, body });
        }
        Ok(())
    }

    fn data_section(&mut self) -> Result<(), DecodeError> {
        let count = self.r.u32()?;
        for _ in 0..count {
            let mem_idx = self.r.u32()? as usize;
            let offset = self.const_expr()?;
            let len = self.r.u32()? as usize;
            let bytes = self.r.bytes(len)?.to_vec();
            let memory = self
                .module
                .memories
                .get_mut(mem_idx)
                .ok_or_else(|| DecodeError::new(0, DecodeErrorKind::IndexOutOfBounds))?;
            memory.data.push(Data { offset, bytes });
        }
        Ok(())
    }

    /// A constant expression: instructions up to and including `end`.
    fn const_expr(&mut self) -> Result<Vec<Instr>, DecodeError> {
        let mut instrs = Vec::new();
        loop {
            let instr = self.instr()?;
            let done = instr == Instr::End;
            instrs.push(instr);
            if done {
                return Ok(instrs);
            }
        }
    }

    /// A function body: instructions up to and including the `end` that
    /// closes the function block (nesting-aware).
    fn instr_seq(&mut self) -> Result<Vec<Instr>, DecodeError> {
        let mut instrs = Vec::new();
        let mut depth = 0usize;
        loop {
            let instr = self.instr()?;
            match &instr {
                Instr::Block(_) | Instr::Loop(_) | Instr::If(_) => depth += 1,
                Instr::End => {
                    if depth == 0 {
                        instrs.push(instr);
                        return Ok(instrs);
                    }
                    depth -= 1;
                }
                _ => {}
            }
            instrs.push(instr);
        }
    }

    fn memarg(&mut self) -> Result<Memarg, DecodeError> {
        let alignment_exp = self.r.u32()?;
        let offset = self.r.u32()?;
        Ok(Memarg {
            alignment_exp,
            offset,
        })
    }

    fn instr(&mut self) -> Result<Instr, DecodeError> {
        let opcode = self.r.byte()?;
        Ok(match opcode {
            0x00 => Instr::Unreachable,
            0x01 => Instr::Nop,
            0x02 => Instr::Block(self.block_type()?),
            0x03 => Instr::Loop(self.block_type()?),
            0x04 => Instr::If(self.block_type()?),
            0x05 => Instr::Else,
            0x0b => Instr::End,
            0x0c => Instr::Br(Label(self.r.u32()?)),
            0x0d => Instr::BrIf(Label(self.r.u32()?)),
            0x0e => {
                let count = self.r.u32()? as usize;
                let mut table = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    table.push(Label(self.r.u32()?));
                }
                let default = Label(self.r.u32()?);
                Instr::BrTable { table, default }
            }
            0x0f => Instr::Return,
            0x10 => Instr::Call(Idx::from(self.r.u32()?)),
            0x11 => {
                let type_idx = self.r.u32()?;
                let ty = self.lookup_type(type_idx)?;
                let table_idx = self.r.u32()?;
                Instr::CallIndirect(ty, Idx::from(table_idx))
            }
            0x1a => Instr::Drop,
            0x1b => Instr::Select,
            0x20 => Instr::Local(LocalOp::Get, Idx::from(self.r.u32()?)),
            0x21 => Instr::Local(LocalOp::Set, Idx::from(self.r.u32()?)),
            0x22 => Instr::Local(LocalOp::Tee, Idx::from(self.r.u32()?)),
            0x23 => Instr::Global(GlobalOp::Get, Idx::from(self.r.u32()?)),
            0x24 => Instr::Global(GlobalOp::Set, Idx::from(self.r.u32()?)),
            0x28..=0x35 => {
                let op = LoadOp::from_opcode(opcode).expect("load opcode in range");
                Instr::Load(op, self.memarg()?)
            }
            0x36..=0x3e => {
                let op = StoreOp::from_opcode(opcode).expect("store opcode in range");
                Instr::Store(op, self.memarg()?)
            }
            0x3f => Instr::MemorySize(Idx::from(self.r.u32()?)),
            0x40 => Instr::MemoryGrow(Idx::from(self.r.u32()?)),
            0x41 => Instr::Const(Val::I32(self.r.i32()?)),
            0x42 => Instr::Const(Val::I64(self.r.i64()?)),
            0x43 => Instr::Const(Val::F32(self.r.f32()?)),
            0x44 => Instr::Const(Val::F64(self.r.f64()?)),
            other => {
                if let Some(op) = UnaryOp::from_opcode(other) {
                    Instr::Unary(op)
                } else if let Some(op) = BinaryOp::from_opcode(other) {
                    Instr::Binary(op)
                } else {
                    return Err(self.err(DecodeErrorKind::InvalidOpcode(other)));
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_module_roundtrip() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION);
        let module = decode(&bytes).expect("decodes");
        assert_eq!(module, Module::new());
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = [0x00, 0x61, 0x73, 0x00, 0x01, 0x00, 0x00, 0x00];
        let err = decode(&bytes).expect_err("must fail");
        assert_eq!(err.kind(), DecodeErrorKind::InvalidMagic);
    }

    #[test]
    fn bad_version_rejected() {
        let bytes = [0x00, 0x61, 0x73, 0x6d, 0x02, 0x00, 0x00, 0x00];
        let err = decode(&bytes).expect_err("must fail");
        assert_eq!(err.kind(), DecodeErrorKind::InvalidVersion);
    }

    #[test]
    fn truncated_section_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION);
        bytes.push(1); // type section
        bytes.push(10); // declared size larger than remaining
        bytes.push(0);
        let err = decode(&bytes).expect_err("must fail");
        assert_eq!(err.kind(), DecodeErrorKind::UnexpectedEof);
    }

    #[test]
    fn out_of_order_sections_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION);
        // code section (10) followed by type section (1)
        bytes.extend_from_slice(&[10, 1, 0]);
        bytes.extend_from_slice(&[1, 1, 0]);
        let err = decode(&bytes).expect_err("must fail");
        assert!(matches!(err.kind(), DecodeErrorKind::InvalidSection(1)));
    }

    #[test]
    fn custom_section_preserved() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION);
        let payload = [4u8, b'n', b'a', b'm', b'e', 1, 2, 3];
        bytes.push(0);
        bytes.push(payload.len() as u8);
        bytes.extend_from_slice(&payload);
        let module = decode(&bytes).expect("decodes");
        assert_eq!(module.custom_sections.len(), 1);
        assert_eq!(module.custom_sections[0].name, "name");
        assert_eq!(module.custom_sections[0].bytes, vec![1, 2, 3]);
    }
}
