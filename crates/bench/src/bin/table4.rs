//! Reproduces paper Table 4: "Analyses built on top of Wasabi" — name,
//! hooks used, and lines of code. LoC are counted from the real analysis
//! sources embedded at compile time (comments, blanks, and unit tests
//! excluded).
//!
//! ```sh
//! cargo run --release -p wasabi-bench --bin table4
//! ```

use wasabi_analyses::{count_loc, source_inventory};

/// The paper's JS line counts, for side-by-side comparison.
const PAPER_LOC: [usize; 8] = [42, 9, 11, 14, 18, 208, 10, 11];

fn main() {
    println!("Table 4: Analyses built on top of Wasabi");
    println!();
    println!(
        "{:<28} {:<30} {:>9} {:>12}",
        "Analysis", "Hooks", "LoC", "paper (JS)"
    );
    println!("{:-<28} {:-<30} {:->9} {:->12}", "", "", "", "");
    for (i, (name, hooks, source)) in source_inventory().into_iter().enumerate() {
        let loc = count_loc(source);
        println!("{name:<28} {hooks:<30} {loc:>9} {:>12}", PAPER_LOC[i]);
    }
    println!();
    println!("note: Rust LoC count the analysis module without its unit tests;");
    println!("instruction+branch coverage share one module, so both rows report");
    println!("that file. Rust is more verbose than the paper's JavaScript, but");
    println!("the shape holds: every analysis is a few dozen to a couple hundred");
    println!("lines, with taint analysis the largest by an order of magnitude.");
}
