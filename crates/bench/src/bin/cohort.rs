//! Cohort-sweep throughput (ISSUE 10 headline): the same 1-module ×
//! N-input sweep is executed two ways —
//!
//! - **fleet**: N independent [`wasabi::fleet::Job`]s on a pre-warmed
//!   shared `ModuleCache` (the PR 8/9 path: translation amortized, but
//!   every job still pays dispatch, host-plan construction, analysis
//!   instantiation, and result plumbing), and
//! - **cohort**: one [`wasabi::Pipeline::run_cohort`] sweep — the module
//!   is instrumented + translated + host-planned once, N instances share
//!   them and interleave in chunked rounds, each owning only its memory,
//!   globals, and fuel.
//!
//! ```sh
//! cargo run --release -p wasabi-bench --bin cohort \
//!     [input_count] [--out <path>] [--smoke]
//! ```
//!
//! Default output path: `BENCH_cohort.json`. `--smoke` shrinks the sweep
//! for CI. The headline ratio `speedup_cohort_vs_fleet` (instances/sec
//! over jobs/sec, both at 1 worker on a warm cache) is gated >= 1.5x in
//! ci.sh: it measures exactly the per-job overhead the cohort design
//! amortizes, not parallelism — `cores` is recorded for context.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use wasabi::cache::ModuleCache;
use wasabi::fleet::Job;
use wasabi::hooks::Analysis;
use wasabi::Wasabi;
use wasabi_analyses::registry;
use wasabi_wasm::builder::ModuleBuilder;
use wasabi_wasm::instr::Val;
use wasabi_wasm::module::Module;
use wasabi_wasm::types::ValType;

/// Analyses attached to every job / fused into the sweep pipeline. Light
/// on purpose: the contrast is per-job overhead, not hook volume.
const SWEEP_ANALYSES: [&str; 1] = ["call_graph"];

/// `main(x)`: a short arithmetic loop whose trip count depends on `x` —
/// enough per-instance work to be a real program, little enough that
/// per-job fixed costs stay visible.
fn sweep_module() -> Module {
    let mut builder = ModuleBuilder::new();
    builder.memory(1, None);
    builder.function("main", &[ValType::I32], &[ValType::I32], |f| {
        let acc = f.local(ValType::I32);
        let i = f.local(ValType::I32);
        f.get_local(0u32).set_local(acc);
        f.block(None).loop_(None);
        // for i in 0..((x & 63) + 32) { acc = acc * 3 + i }
        f.get_local(i)
            .get_local(0u32)
            .i32_const(63)
            .binary(wasabi_wasm::instr::BinaryOp::I32And)
            .i32_const(32)
            .i32_add()
            .binary(wasabi_wasm::instr::BinaryOp::I32GeS)
            .br_if(1);
        f.get_local(acc)
            .i32_const(3)
            .i32_mul()
            .get_local(i)
            .i32_add()
            .set_local(acc);
        f.get_local(i).i32_const(1).i32_add().set_local(i);
        f.br(0).end().end();
        f.i32_const(0)
            .get_local(acc)
            .store(wasabi_wasm::instr::StoreOp::I32Store, 0);
        f.get_local(acc);
    });
    builder.finish()
}

struct Row {
    config: &'static str,
    wall: Duration,
    per_sec: f64,
}

/// N jobs through a 1-worker fleet on a warm shared cache; returns the
/// per-job results for the cross-check plus the measured row.
fn run_fleet(module: &Arc<Module>, inputs: &[i32]) -> (Vec<Vec<Val>>, Row) {
    let cache = ModuleCache::shared();
    // Prime the (module, hook set) entry, untimed — the measured batch
    // must contrast per-job overhead, not first-touch translation.
    let mut primer = registry::fleet()
        .workers(1)
        .cache(Arc::clone(&cache))
        .build();
    primer.submit(
        Job::new("prime", Arc::clone(module), "main", vec![Val::I32(0)])
            .analyses(SWEEP_ANALYSES.iter().copied()),
    );
    assert!(primer.run().all_ok(), "priming job failed");

    let mut fleet = registry::fleet().workers(1).cache(cache).build();
    for &input in inputs {
        fleet.submit(
            Job::new(
                format!("sweep-{input}"),
                Arc::clone(module),
                "main",
                vec![Val::I32(input)],
            )
            .analyses(SWEEP_ANALYSES.iter().copied()),
        );
    }
    let started = Instant::now();
    let batch = fleet.run();
    let wall = started.elapsed();
    assert!(batch.all_ok(), "a fleet job failed");
    let results = batch
        .jobs
        .into_iter()
        .map(|j| j.result.expect("checked all_ok"))
        .collect();
    let row = Row {
        config: "fleet_warm_1worker",
        wall,
        per_sec: inputs.len() as f64 / wall.as_secs_f64(),
    };
    (results, row)
}

/// The same sweep as one cohort; the wall time INCLUDES the one-time
/// instrument+translate+plan build — that's the cost being amortized.
fn run_cohort(module: &Module, inputs: &[i32]) -> (Vec<Vec<Val>>, Row) {
    let args: Vec<Vec<Val>> = inputs.iter().map(|&i| vec![Val::I32(i)]).collect();
    let started = Instant::now();
    let mut analyses: Vec<Box<dyn Analysis>> = SWEEP_ANALYSES
        .iter()
        .map(|name| registry::by_name(name).expect("known analysis"))
        .collect();
    let mut builder = Wasabi::builder();
    for analysis in &mut analyses {
        builder = builder.analysis(analysis.as_mut());
    }
    let mut pipeline = builder.build(module).expect("module validates");
    let outcomes = pipeline.run_cohort("main", &args);
    let wall = started.elapsed();
    let results = outcomes
        .into_iter()
        .map(|o| o.result.expect("sweep member trapped"))
        .collect();
    let row = Row {
        config: "cohort",
        wall,
        per_sec: inputs.len() as f64 / wall.as_secs_f64(),
    };
    (results, row)
}

/// Median-by-wall of `rounds` runs.
fn median<F: FnMut() -> (Vec<Vec<Val>>, Row)>(mut run: F, rounds: usize) -> (Vec<Vec<Val>>, Row) {
    let mut measured: Vec<(Vec<Vec<Val>>, Row)> = (0..rounds).map(|_| run()).collect();
    measured.sort_by(|a, b| a.1.wall.cmp(&b.1.wall));
    measured.swap_remove(measured.len() / 2)
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let smoke = raw.iter().any(|a| a == "--smoke");
    let out_path = raw
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| raw.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_cohort.json".to_string());
    let default_inputs: usize = if smoke { 40 } else { 100 };
    let rounds: usize = if smoke { 3 } else { 5 };
    let input_count: usize = raw
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && (*i == 0 || raw[i - 1] != "--out"))
        .map(|(_, a)| a)
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(default_inputs);

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let module = Arc::new(sweep_module());
    let inputs: Vec<i32> = (0..input_count as i32).collect();

    println!(
        "Cohort sweep: 1 module x {input_count} inputs x {:?}, \
         cohort vs {input_count} warm fleet jobs ({cores} core(s), {rounds} round(s))",
        SWEEP_ANALYSES,
    );
    println!();

    let (fleet_results, fleet_row) = median(|| run_fleet(&module, &inputs), rounds);
    let (cohort_results, cohort_row) = median(|| run_cohort(&module, &inputs), rounds);

    // The two arms are differential witnesses of each other.
    assert_eq!(
        cohort_results, fleet_results,
        "cohort sweep and fleet jobs disagree on results"
    );

    println!(
        "{:<20} {:>10} {:>14}",
        "config", "wall (ms)", "instances/sec"
    );
    println!("{:-<20} {:->10} {:->14}", "", "", "");
    for row in [&fleet_row, &cohort_row] {
        println!(
            "{:<20} {:>10.1} {:>14.1}",
            row.config,
            row.wall.as_secs_f64() * 1000.0,
            row.per_sec,
        );
    }
    let speedup = cohort_row.per_sec / fleet_row.per_sec;
    println!();
    println!("cohort vs warm 1-worker fleet:  {speedup:.2}x");

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"inputs\":{input_count},\"analyses\":[{}],\"cores\":{cores},\"rounds\":{rounds},\
         \"speedup_cohort_vs_fleet\":{speedup:.3},\"rows\":[",
        SWEEP_ANALYSES
            .iter()
            .map(|a| format!("\"{a}\""))
            .collect::<Vec<_>>()
            .join(","),
    );
    for (i, row) in [&fleet_row, &cohort_row].into_iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"config\":\"{}\",\"wall_ms\":{:.3},\"per_sec\":{:.3}}}",
            row.config,
            row.wall.as_secs_f64() * 1000.0,
            row.per_sec,
        );
    }
    json.push_str("]}");
    std::fs::write(&out_path, &json).expect("write cohort json");
    println!("wrote {out_path}");
}
