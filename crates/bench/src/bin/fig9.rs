//! Reproduces paper Figure 9: "Runtime of the instrumented programs
//! relative to the uninstrumented runtime, per analysis hook" — 21 hook
//! groups × {PolyBench geomean, app-like}, plus the `all` row (paper: 49x
//! to 163x).
//!
//! Two relative-cost metrics are reported:
//! - wall-clock time in this repository's interpreter (like the paper's
//!   wall-clock in Firefox — absolute values differ, ratios are comparable),
//! - executed VM instructions (deterministic, machine-independent).
//!
//! ```sh
//! cargo run --release -p wasabi-bench --bin fig9 [polybench_n] [kernels_per_group]
//! cargo run --release -p wasabi-bench --bin fig9 -- --smoke   # CI smoke mode
//! ```
//!
//! `--smoke` shrinks the workload (2 kernels at n=6, single repeats) so CI
//! can exercise the full hook-group × subject matrix in seconds.

use wasabi::hooks::HookSet;
use wasabi_bench::{
    geomean, run_instrumented_amortized, run_instrumented_repeated, run_original_amortized,
    run_original_repeated, FIGURE_HOOK_GROUPS,
};
use wasabi_workloads::synthetic::{synthetic_app, SyntheticConfig};
use wasabi_workloads::{compile, polybench};

/// Repeated runs per kernel measurement (minimum wall time is reported).
const REPEATS: usize = 3;
/// Consecutive invocations of the short-running app subject (totals are
/// compared, so timer resolution stops mattering).
const APP_INVOCATIONS: usize = 300;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let smoke = raw.iter().any(|a| a == "--smoke");
    let mut args = raw.iter().filter(|a| !a.starts_with("--"));
    let (default_n, default_kernels, repeats, app_invocations) = if smoke {
        (6, 2, 1, 30)
    } else {
        (12, 10, REPEATS, APP_INVOCATIONS)
    };
    let polybench_n: u32 = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(default_n);
    let kernel_count: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(default_kernels);

    // A representative kernel subset (full 30 × 22 hook-sets × VM runs is
    // hours of interpreter time; pass 30 to use all kernels).
    let kernels: Vec<(String, wasabi_wasm::Module)> = polybench::NAMES
        .iter()
        .take(kernel_count)
        .map(|name| {
            (
                name.to_string(),
                compile(&polybench::by_name(name, polybench_n).expect("known")),
            )
        })
        .collect();
    // App subject: moderate call fan-out (the call tree grows
    // polynomially in the function count with degree ≈ calls per body, so
    // keep the statement count small) — wall time is amortized over
    // repeated invocations below instead.
    let app = synthetic_app(&SyntheticConfig {
        seed: 0x5EED,
        function_count: 128,
        body_statements: 10,
    });

    println!("Figure 9: Runtime relative to the uninstrumented run, per hook");
    println!(
        "(geometric mean over {} PolyBench kernels at n={polybench_n}; app-like subject)",
        kernels.len()
    );
    println!();
    println!(
        "{:<14} {:>16} {:>16} {:>14} {:>14}",
        "hook", "poly wall", "poly instrs", "app wall", "app instrs"
    );
    println!(
        "{:-<14} {:->16} {:->16} {:->14} {:->14}",
        "", "", "", "", ""
    );

    let kernel_base: Vec<_> = kernels
        .iter()
        .map(|(_, module)| run_original_repeated(module, "main", repeats))
        .collect();
    let app_base = run_original_amortized(&app, "main", app_invocations);

    let mut rows: Vec<(&str, HookSet)> = FIGURE_HOOK_GROUPS
        .iter()
        .map(|(name, hooks)| (*name, HookSet::of(hooks)))
        .collect();
    rows.push(("all", HookSet::all()));

    for (name, hooks) in rows {
        let mut wall_ratios = Vec::new();
        let mut instr_ratios = Vec::new();
        for ((_, module), base) in kernels.iter().zip(&kernel_base) {
            let run = run_instrumented_repeated(module, hooks, "main", repeats);
            wall_ratios.push(run.wall.as_secs_f64() / base.wall.as_secs_f64());
            instr_ratios.push(run.vm_instrs as f64 / base.vm_instrs as f64);
        }
        let app_run = run_instrumented_amortized(&app, hooks, "main", app_invocations);
        println!(
            "{name:<14} {:>15.2}x {:>15.2}x {:>13.2}x {:>13.2}x",
            geomean(wall_ratios.iter().copied()),
            geomean(instr_ratios.iter().copied()),
            app_run.wall.as_secs_f64() / app_base.wall.as_secs_f64(),
            app_run.vm_instrs as f64 / app_base.vm_instrs as f64,
        );
    }

    println!();
    println!("expected shape (paper, Firefox): ~1x for nop/unreachable/");
    println!("memory_size/memory_grow/select/drop/unary; return <=1.3x; call");
    println!("<=2.8x; begin/end 1.5-9.9x; load 1.8-20x; store <=6.5x; const");
    println!("2-32x; local 4-48.5x; binary 2.6-77.5x; 'all' 49-163x, with");
    println!("PolyBench overheads higher than the real-world apps.");
}
