//! Interpreter hot-loop baseline: run uninstrumented PolyBench kernels
//! under the **structured-walk** semantics (the seed interpreter, kept as
//! `wasabi_vm::Reference`) vs. the **flat pre-translated IR** with fused
//! superinstructions (the production `Instance` path), and write the
//! before/after comparison as JSON.
//!
//! ```sh
//! cargo run --release -p wasabi-bench --bin interp \
//!     [polybench_n] [kernel_count] [--out <path>] [--smoke]
//! ```
//!
//! Default output path: `BENCH_interp.json` in the current directory.
//! `--smoke` shrinks the workload for CI. Each kernel is translated once
//! and invoked `invocations` times on one instance (wall times are
//! totals); both executors must report identical executed-instruction
//! counts, which the harness asserts.

use std::fmt::Write as _;
use std::time::Instant;

use wasabi_bench::{geomean, run_flat_amortized, run_reference_amortized};
use wasabi_vm::TranslatedModule;
use wasabi_workloads::{compile, polybench};

struct KernelResult {
    name: String,
    structured_ms: f64,
    flat_ms: f64,
    translate_ms: f64,
    vm_instrs: u64,
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let smoke = raw.iter().any(|a| a == "--smoke");
    let out_path = raw
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| raw.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_interp.json".to_string());
    let mut positional = raw
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && (*i == 0 || raw[i - 1] != "--out"))
        .map(|(_, a)| a);
    let default_n: u32 = if smoke { 6 } else { 12 };
    let default_kernels: usize = if smoke { 2 } else { 8 };
    let invocations: usize = if smoke { 3 } else { 12 };
    let polybench_n: u32 = positional
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(default_n);
    let kernel_count: usize = positional
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(default_kernels);

    println!(
        "Interpreter baseline: structured walk vs. flat pre-translated IR \
         ({kernel_count} PolyBench kernels at n={polybench_n}, \
         {invocations} invocations each, uninstrumented)"
    );
    println!();
    println!(
        "{:<16} {:>15} {:>11} {:>9} {:>14} {:>13}",
        "kernel", "structured (ms)", "flat (ms)", "speedup", "translate (ms)", "instructions"
    );
    println!(
        "{:-<16} {:->15} {:->11} {:->9} {:->14} {:->13}",
        "", "", "", "", "", ""
    );

    let mut results: Vec<KernelResult> = Vec::new();
    for name in polybench::NAMES.iter().take(kernel_count) {
        let module = compile(&polybench::by_name(name, polybench_n).expect("known kernel"));

        let translate_start = Instant::now();
        let translated = TranslatedModule::new(module.clone()).expect("validates");
        let translate_ms = translate_start.elapsed().as_secs_f64() * 1000.0;

        let flat = run_flat_amortized(&translated, "main", invocations);
        let structured = run_reference_amortized(&module, "main", invocations);
        assert_eq!(
            flat.vm_instrs, structured.vm_instrs,
            "{name}: flat IR and structured walk must count identically"
        );

        let structured_ms = structured.wall.as_secs_f64() * 1000.0;
        let flat_ms = flat.wall.as_secs_f64() * 1000.0;
        println!(
            "{name:<16} {structured_ms:>15.1} {flat_ms:>11.1} {:>8.2}x {translate_ms:>14.3} {:>13}",
            structured_ms / flat_ms,
            flat.vm_instrs,
        );
        results.push(KernelResult {
            name: name.to_string(),
            structured_ms,
            flat_ms,
            translate_ms,
            vm_instrs: flat.vm_instrs,
        });
    }

    let speedup = geomean(results.iter().map(|r| r.structured_ms / r.flat_ms));
    let total_structured: f64 = results.iter().map(|r| r.structured_ms).sum();
    let total_flat: f64 = results.iter().map(|r| r.flat_ms).sum();
    println!();
    println!(
        "total: structured {total_structured:.1} ms vs flat {total_flat:.1} ms \
         (geomean speedup {speedup:.2}x)"
    );

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"polybench_n\":{polybench_n},\"invocations\":{invocations},\
         \"geomean_speedup\":{speedup:.3},\
         \"total_structured_ms\":{total_structured:.3},\
         \"total_flat_ms\":{total_flat:.3},\"kernels\":["
    );
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"name\":\"{}\",\"structured_ms\":{:.3},\"flat_ms\":{:.3},\
             \"speedup\":{:.3},\"translate_ms\":{:.3},\"vm_instrs\":{}}}",
            r.name,
            r.structured_ms,
            r.flat_ms,
            r.structured_ms / r.flat_ms,
            r.translate_ms,
            r.vm_instrs,
        );
    }
    json.push_str("]}");
    std::fs::write(&out_path, &json).expect("write baseline json");
    println!("wrote {out_path}");
}
