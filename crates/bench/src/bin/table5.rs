//! Reproduces paper Table 5: "Time taken to instrument programs" — binary
//! size, instrumentation runtime (mean ± std over repeated runs), and
//! throughput in MB/s — plus the §4.4 single- vs. multi-threaded
//! comparison.
//!
//! Usage (release mode strongly recommended):
//!
//! ```sh
//! cargo run --release -p wasabi-bench --bin table5 [app_kilobytes] [runs]
//! ```
//!
//! `app_kilobytes` scales the two synthetic app binaries (default 2000 KB
//! for the PSPDFKit-like subject; pass 9615 for the paper's full size).

use wasabi::hooks::HookSet;
use wasabi::Instrumenter;
use wasabi_bench::{binary_size, format_bytes, instrumentation_stats, subjects};

fn main() {
    let mut args = std::env::args().skip(1);
    let app_kb: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2000);
    let runs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);

    println!("Table 5: Time taken to instrument programs (full instrumentation,");
    println!("averaged across {runs} runs; PolyBench averaged over 30 programs)");
    println!();
    println!(
        "{:<16} {:>14} {:>22} {:>8}",
        "Program", "Binary (B)", "Runtime (ms)", "MB/s"
    );
    println!("{:-<16} {:->14} {:->22} {:->8}", "", "", "", "");

    let subjects = subjects(16, app_kb * 1000);

    // PolyBench row: average size and time over the 30 kernels.
    let polybench: Vec<_> = subjects.iter().filter(|s| s.is_polybench).collect();
    let sizes: Vec<usize> = polybench.iter().map(|s| binary_size(&s.module)).collect();
    let mean_size = sizes.iter().sum::<usize>() / sizes.len();
    let mut total_time = 0.0;
    let mut total_std = 0.0;
    for subject in &polybench {
        let (mean, std) = instrumentation_stats(&subject.module, HookSet::all(), runs);
        total_time += mean.as_secs_f64();
        total_std += std.as_secs_f64();
    }
    let mean_time = total_time / polybench.len() as f64;
    let mean_std = total_std / polybench.len() as f64;
    let total_size: usize = sizes.iter().sum();
    println!(
        "{:<16} {:>14} {:>15.3} ± {:>4.3} {:>8.2}",
        "PolyBench (avg.)",
        format_bytes(mean_size),
        mean_time * 1000.0,
        mean_std * 1000.0,
        total_size as f64 / 1e6 / total_time
    );

    for subject in subjects.iter().filter(|s| !s.is_polybench) {
        let size = binary_size(&subject.module);
        let (mean, std) = instrumentation_stats(&subject.module, HookSet::all(), runs);
        println!(
            "{:<16} {:>14} {:>15.1} ± {:>4.1} {:>8.2}",
            subject.name,
            format_bytes(size),
            mean.as_secs_f64() * 1000.0,
            std.as_secs_f64() * 1000.0,
            size as f64 / 1e6 / mean.as_secs_f64()
        );
    }

    // §4.4: parallel speedup on the largest binary.
    println!();
    println!("Parallel instrumentation (paper §4.4; largest subject):");
    let largest = subjects
        .iter()
        .max_by_key(|s| binary_size(&s.module))
        .expect("non-empty corpus");
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    for n in [1, threads] {
        let start = std::time::Instant::now();
        for _ in 0..runs.max(1) {
            let out = Instrumenter::new(HookSet::all())
                .threads(n)
                .run(&largest.module)
                .expect("instruments");
            std::hint::black_box(out);
        }
        let per_run = start.elapsed().as_secs_f64() / runs.max(1) as f64;
        println!("  {n:>2} thread(s): {:.1} ms per run", per_run * 1000.0);
    }
    println!(
        "  (paper: 15.5 s multi-threaded vs 26.5 s single-threaded on the\n   39.5 MB Unreal Engine binary, a ratio of ~0.58)"
    );
}
