//! Ablation benchmarks for Wasabi's design choices (DESIGN.md §5):
//!
//! 1. **Temp-local reuse** (Table 3's "freshly generated locals" are reused
//!    across instructions): code size and local count with reuse on/off.
//! 2. **Selective instrumentation** (§2.4.2): size of instrumenting one
//!    hook vs. all hooks (the aggregate view of Figure 8).
//! 3. **On-demand monomorphization** (§2.4.3): generated hooks vs. the
//!    eager alternative (details in the `monomorphization` binary).
//!
//! ```sh
//! cargo run --release -p wasabi-bench --bin ablation
//! ```

use wasabi::hooks::{Hook, HookSet};
use wasabi::Instrumenter;
use wasabi_bench::{binary_size, format_bytes};
use wasabi_workloads::synthetic::{synthetic_app, SyntheticConfig};
use wasabi_workloads::{compile, polybench};

fn total_locals(module: &wasabi_wasm::Module) -> usize {
    module
        .functions
        .iter()
        .filter_map(|f| f.code())
        .map(|c| c.locals.len())
        .sum()
}

fn main() {
    let subjects: Vec<(String, wasabi_wasm::Module)> = ["gemm", "cholesky", "adi"]
        .iter()
        .map(|name| {
            (
                name.to_string(),
                compile(&polybench::by_name(name, 16).expect("known")),
            )
        })
        .chain(std::iter::once((
            "app-like".to_string(),
            synthetic_app(&SyntheticConfig::pspdfkit_like().with_target_bytes(500_000)),
        )))
        .collect();

    println!("Ablation 1: temp-local reuse (full instrumentation)");
    println!();
    println!(
        "{:<10} {:>14} {:>14} {:>9} {:>12} {:>12}",
        "program", "reuse (B)", "fresh (B)", "size +", "reuse locals", "fresh locals"
    );
    println!(
        "{:-<10} {:->14} {:->14} {:->9} {:->12} {:->12}",
        "", "", "", "", "", ""
    );
    for (name, module) in &subjects {
        let (reused, _) = Instrumenter::new(HookSet::all())
            .reuse_temps(true)
            .run(module)
            .expect("instruments");
        let (fresh, _) = Instrumenter::new(HookSet::all())
            .reuse_temps(false)
            .run(module)
            .expect("instruments");
        let reused_size = binary_size(&reused);
        let fresh_size = binary_size(&fresh);
        println!(
            "{name:<10} {:>14} {:>14} {:>8.1}% {:>12} {:>12}",
            format_bytes(reused_size),
            format_bytes(fresh_size),
            (fresh_size as f64 - reused_size as f64) / reused_size as f64 * 100.0,
            total_locals(&reused),
            total_locals(&fresh),
        );
    }

    println!();
    println!("Ablation 2: selective vs. full instrumentation (binary size)");
    println!();
    println!(
        "{:<10} {:>12} {:>14} {:>14} {:>14}",
        "program", "original", "call only", "binary only", "all hooks"
    );
    println!(
        "{:-<10} {:->12} {:->14} {:->14} {:->14}",
        "", "", "", "", ""
    );
    for (name, module) in &subjects {
        let size = |hooks: HookSet| {
            let (instrumented, _) = Instrumenter::new(hooks).run(module).expect("instruments");
            binary_size(&instrumented)
        };
        println!(
            "{name:<10} {:>12} {:>14} {:>14} {:>14}",
            format_bytes(binary_size(module)),
            format_bytes(size(HookSet::of(&[Hook::CallPre, Hook::CallPost]))),
            format_bytes(size(HookSet::of(&[Hook::Binary]))),
            format_bytes(size(HookSet::all())),
        );
    }
    println!();
    println!("(ablation 3, eager vs. on-demand monomorphization, is the");
    println!(" `monomorphization` binary: the eager variant cannot even be");
    println!(" materialized — 4^22 call hooks.)");
}
