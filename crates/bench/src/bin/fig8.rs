//! Reproduces paper Figure 8: "Binary size increase in percent of the
//! original size, when instrumenting the test programs for different
//! analysis hooks" — 21 hook groups × {PolyBench mean, pspdfkit-like,
//! unreal-like}, plus the `all` row (§4.5 text: between 495% and 743%).
//!
//! ```sh
//! cargo run --release -p wasabi-bench --bin fig8 [polybench_n] [app_kilobytes]
//! ```

use wasabi::hooks::HookSet;
use wasabi::instrument;
use wasabi_bench::{binary_size, subjects, Subject, FIGURE_HOOK_GROUPS};

fn size_increase_percent(subject: &Subject, hooks: HookSet) -> f64 {
    let original = binary_size(&subject.module);
    let (instrumented, _) = instrument(&subject.module, hooks).expect("instruments");
    let new_size = binary_size(&instrumented);
    (new_size as f64 - original as f64) / original as f64 * 100.0
}

fn main() {
    let mut args = std::env::args().skip(1);
    let polybench_n: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let app_kb: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1000);

    let subjects = subjects(polybench_n, app_kb * 1000);
    let polybench: Vec<&Subject> = subjects.iter().filter(|s| s.is_polybench).collect();
    let apps: Vec<&Subject> = subjects.iter().filter(|s| !s.is_polybench).collect();

    println!("Figure 8: Binary size increase per instrumented hook (percent of");
    println!("original size; PolyBench averaged over 30 programs)");
    println!();
    println!(
        "{:<14} {:>12} {:>15} {:>13}",
        "hook", "PolyBench", "pspdfkit-like", "unreal-like"
    );
    println!("{:-<14} {:->12} {:->15} {:->13}", "", "", "", "");

    let mut rows: Vec<(&str, HookSet)> = FIGURE_HOOK_GROUPS
        .iter()
        .map(|(name, hooks)| (*name, HookSet::of(hooks)))
        .collect();
    rows.push(("all", HookSet::all()));

    for (name, hooks) in rows {
        let poly_mean = polybench
            .iter()
            .map(|s| size_increase_percent(s, hooks))
            .sum::<f64>()
            / polybench.len() as f64;
        let app_values: Vec<f64> = apps
            .iter()
            .map(|s| size_increase_percent(s, hooks))
            .collect();
        println!(
            "{name:<14} {poly_mean:>11.1}% {:>14.1}% {:>12.1}%",
            app_values[0], app_values[1]
        );
    }

    println!();
    println!("expected shape (paper): <1% for nop/unreachable/memory_size/");
    println!("memory_grow/select/br_table; load/store 39-58%; begin/end 11-84%;");
    println!("const 59-71%; local 128-180%; binary 83-190% (PolyBench highest);");
    println!("'all' 495-743%.");
}
