//! Reproduces paper §4.5's on-demand monomorphization evaluation: the
//! number of low-level hooks generated for full instrumentation of each
//! program, against the astronomic eager alternative.
//!
//! Paper numbers: 110–122 hooks for PolyBench programs, 302 for PSPDFKit,
//! 783 for the Unreal Engine; eagerly generating call hooks for the
//! observed maximum of 22 i32 arguments would need 4^22 ≈ 1.7×10^13
//! variants, and even a 10-argument heuristic limit 4^10 = 1,048,576.
//!
//! ```sh
//! cargo run --release -p wasabi-bench --bin monomorphization [polybench_n] [app_kilobytes]
//! ```

use wasabi::hookmap::eager_call_hook_count;
use wasabi::hooks::HookSet;
use wasabi::instrument;
use wasabi_bench::subjects;

fn main() {
    let mut args = std::env::args().skip(1);
    let polybench_n: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let app_kb: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1000);

    println!("On-demand monomorphization (paper §4.5): low-level hooks actually");
    println!("generated under full instrumentation");
    println!();
    println!(
        "{:<16} {:>12} {:>14} {:>22}",
        "Program", "hooks", "max call args", "eager call hooks"
    );
    println!("{:-<16} {:->12} {:->14} {:->22}", "", "", "", "");

    let mut poly_min = usize::MAX;
    let mut poly_max = 0usize;
    for subject in subjects(polybench_n, app_kb * 1000) {
        let (_, info) = instrument(&subject.module, HookSet::all()).expect("instruments");
        let hook_count = info.hooks.len();
        let max_args = subject
            .module
            .functions
            .iter()
            .map(|f| f.type_.params.len())
            .max()
            .unwrap_or(0);
        if subject.is_polybench {
            poly_min = poly_min.min(hook_count);
            poly_max = poly_max.max(hook_count);
        } else {
            println!(
                "{:<16} {hook_count:>12} {max_args:>14} {:>22.3e}",
                subject.name,
                eager_call_hook_count(max_args as u32) as f64
            );
        }
    }
    println!(
        "{:<16} {:>12} {:>14} {:>22}",
        "PolyBench (range)",
        format!("{poly_min}-{poly_max}"),
        "~6",
        format!("{}", eager_call_hook_count(6))
    );

    println!();
    println!(
        "heuristic 10-argument limit would still need {} call hooks (4^10 = 1,048,576 per the paper)",
        eager_call_hook_count(10)
    );
    println!("paper: 110-122 hooks (PolyBench), 302 (PSPDFKit), 783 (Unreal Engine)");
}
