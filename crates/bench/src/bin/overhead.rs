//! The Fig. 9 **overhead artifact**: runtime of instrumented execution
//! relative to the uninstrumented flat baseline, per hook group and for
//! all hooks at once — with the all-hooks row measured on **three**
//! execution paths:
//!
//! - **direct** (direct-emit): hook calls injected at translate time as
//!   synthetic imports (`AnalysisSession::direct`); under `NoAnalysis`
//!   every plan is a no-op, so the instantiation-time `is_noop` mask drops
//!   each call before argument marshalling,
//! - **intrinsic** (rewrite + intrinsics): the binary-rewritten module on
//!   `Op::HostCall`/`Op::HostCallConst` dispatch plus the runtime's
//!   zero-subscriber skip (`NoAnalysis` listens to nothing, like Fig. 9's
//!   no-op analysis),
//! - **generic** (pre-intrinsic): the generic call machinery with full
//!   event construction (`AllHooksNop` subscribes to everything).
//!
//! The recorded `improvement` (generic wall / intrinsic wall) and
//! `direct_vs_rewrite` (direct wall / intrinsic wall, gated ≤ 0.75) are
//! the acceptance numbers; `ci.sh` also gates on the recorded all-hooks
//! overhead not regressing past the committed baseline × 1.1.
//!
//! ```sh
//! cargo run --release -p wasabi-bench --bin overhead \
//!     [polybench_n] [kernel_count] [--out <path>] [--smoke]
//! ```
//!
//! Default output path: `BENCH_overhead.json`. `--smoke` shrinks the run
//! (3 kernels, all-hooks row only) while keeping `polybench_n` at the full
//! value so the recorded overhead ratio stays comparable to the committed
//! baseline.

use std::fmt::Write as _;

use wasabi::hooks::HookSet;
use wasabi_bench::{
    geomean, run_direct_amortized, run_flat_amortized, run_instrumented_amortized,
    run_instrumented_generic_amortized, FIGURE_HOOK_GROUPS,
};
use wasabi_vm::TranslatedModule;
use wasabi_workloads::{compile, polybench};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let smoke = raw.iter().any(|a| a == "--smoke");
    let out_path = raw
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| raw.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_overhead.json".to_string());
    let mut positional = raw
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && (*i == 0 || raw[i - 1] != "--out"))
        .map(|(_, a)| a);
    // Keep n and the invocation count at the full values even in smoke
    // mode: the overhead is a ratio, and the CI gate compares it per
    // kernel against the committed baseline — only the kernel count and
    // the per-hook-group sweep shrink.
    let default_kernels: usize = if smoke { 3 } else { 8 };
    let invocations: usize = 4;
    let polybench_n: u32 = positional.next().and_then(|a| a.parse().ok()).unwrap_or(12);
    let kernel_count: usize = positional
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(default_kernels);

    let kernels: Vec<(&str, wasabi_wasm::Module)> = polybench::NAMES
        .iter()
        .take(kernel_count)
        .map(|name| {
            (
                *name,
                compile(&polybench::by_name(name, polybench_n).expect("known kernel")),
            )
        })
        .collect();

    println!(
        "Overhead of instrumented execution vs. uninstrumented flat \
         ({} PolyBench kernels at n={polybench_n}, {invocations} invocation(s))",
        kernels.len()
    );
    println!();

    // Every gated measurement is best-of-REPEATS (minimum wall time):
    // the per-kernel wall times are milliseconds-scale, so a single
    // sample carries enough scheduler/cache-state noise to trip the CI
    // regression gate; the minimum is the stable estimator of the
    // undisturbed run (same policy as `run_original_repeated`).
    const REPEATS: usize = 5;
    fn best_of(
        repeats: usize,
        mut run: impl FnMut() -> wasabi_bench::RunMeasurement,
    ) -> wasabi_bench::RunMeasurement {
        (0..repeats.max(1))
            .map(|_| run())
            .min_by(|a, b| a.wall.cmp(&b.wall))
            .expect("at least one run")
    }

    // Uninstrumented flat baseline, translated once per kernel. The base
    // is the denominator of every gated ratio and an uninstrumented
    // invocation is sub-millisecond, so it runs BASE_SCALE x more
    // invocations than the instrumented arms and the ratios divide by a
    // per-invocation base time — otherwise base timer noise dominates the
    // recorded overheads.
    const BASE_SCALE: usize = 8;
    let bases: Vec<_> = kernels
        .iter()
        .map(|(_, module)| {
            let translated = TranslatedModule::new(module.clone()).expect("validates");
            best_of(REPEATS, || {
                run_flat_amortized(&translated, "main", invocations * BASE_SCALE)
            })
        })
        .collect();
    // Wall seconds and executed instructions of `invocations` base calls
    // (the unit the instrumented arms are measured in).
    let base_wall =
        |base: &wasabi_bench::RunMeasurement| base.wall.as_secs_f64() / BASE_SCALE as f64;
    let base_instrs =
        |base: &wasabi_bench::RunMeasurement| base.vm_instrs as f64 / BASE_SCALE as f64;

    // Per-hook-group overhead on the intrinsic path (skipped in smoke
    // mode; the all-hooks row is the gated artifact).
    let mut group_rows = Vec::new();
    if !smoke {
        println!("{:<14} {:>12} {:>12}", "hook", "wall", "instrs");
        println!("{:-<14} {:->12} {:->12}", "", "", "");
        for (name, hooks) in FIGURE_HOOK_GROUPS {
            let set = HookSet::of(hooks);
            let mut wall_ratios = Vec::new();
            let mut instr_ratios = Vec::new();
            for ((_, module), base) in kernels.iter().zip(&bases) {
                let run = run_instrumented_amortized(module, set, "main", invocations);
                assert_eq!(run.host_calls_slow, 0, "{name}: intrinsic path only");
                wall_ratios.push(run.wall.as_secs_f64() / base_wall(base));
                instr_ratios.push(run.vm_instrs as f64 / base_instrs(base));
            }
            let wall = geomean(wall_ratios.iter().copied());
            let instrs = geomean(instr_ratios.iter().copied());
            println!("{name:<14} {wall:>11.2}x {instrs:>11.2}x");
            group_rows.push((name, wall, instrs));
        }
        println!();
    }

    // The all-hooks row, on all three paths.
    let mut base_ms = 0.0;
    let mut direct_ms = 0.0;
    let mut intrinsic_ms = 0.0;
    let mut generic_ms = 0.0;
    let mut direct_wall_ratios = Vec::new();
    let mut intrinsic_wall_ratios = Vec::new();
    let mut generic_wall_ratios = Vec::new();
    let mut instr_ratios = Vec::new();
    let mut kernel_rows = Vec::new();
    for ((name, module), base) in kernels.iter().zip(&bases) {
        let intrinsic = best_of(REPEATS, || {
            run_instrumented_amortized(module, HookSet::all(), "main", invocations)
        });
        // The benches must be able to assert the intrinsic path actually
        // fired — that is the artifact being measured.
        assert!(
            intrinsic.host_calls_fast > 0,
            "{name}: intrinsic path did not fire"
        );
        assert_eq!(
            intrinsic.host_calls_slow, 0,
            "{name}: unexpected slow calls"
        );
        let generic = best_of(REPEATS, || {
            run_instrumented_generic_amortized(module, HookSet::all(), "main", invocations)
        });
        assert_eq!(generic.host_calls_fast, 0, "{name}: generic path leaked");
        assert_eq!(
            generic.host_calls_slow, intrinsic.host_calls_fast,
            "{name}: both paths must make the same hook calls"
        );
        assert_eq!(
            generic.vm_instrs, intrinsic.vm_instrs,
            "{name}: instr counts"
        );
        let direct = best_of(REPEATS, || {
            run_direct_amortized(module, HookSet::all(), "main", invocations)
        });
        // Direct-emit must inject the same hook sites as the rewrite and,
        // under NoAnalysis, mask every one of them at instantiation.
        assert_eq!(
            direct.vm_instrs, intrinsic.vm_instrs,
            "{name}: direct-emit instr counts"
        );
        assert_eq!(
            direct.host_calls_fast, intrinsic.host_calls_fast,
            "{name}: direct-emit hook-site counts"
        );
        assert_eq!(direct.host_calls_slow, 0, "{name}: direct-emit slow calls");
        base_ms += base_wall(base) * 1000.0;
        direct_ms += direct.wall.as_secs_f64() * 1000.0;
        intrinsic_ms += intrinsic.wall.as_secs_f64() * 1000.0;
        generic_ms += generic.wall.as_secs_f64() * 1000.0;
        direct_wall_ratios.push(direct.wall.as_secs_f64() / base_wall(base));
        intrinsic_wall_ratios.push(intrinsic.wall.as_secs_f64() / base_wall(base));
        generic_wall_ratios.push(generic.wall.as_secs_f64() / base_wall(base));
        instr_ratios.push(intrinsic.vm_instrs as f64 / base_instrs(base));
        kernel_rows.push((
            *name,
            direct.wall.as_secs_f64() / base_wall(base),
            intrinsic.wall.as_secs_f64() / base_wall(base),
            generic.wall.as_secs_f64() / base_wall(base),
        ));
    }
    let overhead_direct = geomean(direct_wall_ratios.iter().copied());
    let overhead_intrinsic = geomean(intrinsic_wall_ratios.iter().copied());
    let overhead_generic = geomean(generic_wall_ratios.iter().copied());
    let overhead_instrs = geomean(instr_ratios.iter().copied());
    let improvement = generic_ms / intrinsic_ms;
    let direct_vs_rewrite = direct_ms / intrinsic_ms;

    println!("all hooks, geomean overhead vs. uninstrumented flat:");
    println!("  direct    (direct-emit): {overhead_direct:>8.2}x wall");
    println!(
        "  intrinsic (rewrite):     {overhead_intrinsic:>8.2}x wall, {overhead_instrs:.2}x instrs"
    );
    println!("  generic   (pre-PR):      {overhead_generic:>8.2}x wall");
    println!();
    println!(
        "totals: base {base_ms:.1} ms, direct {direct_ms:.1} ms, \
         intrinsic {intrinsic_ms:.1} ms, generic {generic_ms:.1} ms \
         -> improvement {improvement:.2}x, direct/rewrite {direct_vs_rewrite:.2}x"
    );

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"polybench_n\":{polybench_n},\"kernel_count\":{},\
         \"invocations\":{invocations},\"kernels\":[",
        kernels.len()
    );
    for (i, (name, direct, intrinsic, generic)) in kernel_rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"name\":\"{name}\",\"overhead_direct\":{direct:.3},\
             \"overhead_intrinsic\":{intrinsic:.3},\
             \"overhead_generic\":{generic:.3}}}"
        );
    }
    json.push_str("],\"hook_groups\":[");
    for (i, (name, wall, instrs)) in group_rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"hook\":\"{name}\",\"wall_overhead\":{wall:.3},\
             \"instr_overhead\":{instrs:.3}}}"
        );
    }
    let _ = write!(
        json,
        "],\"all\":{{\"base_ms\":{base_ms:.3},\
         \"direct_ms\":{direct_ms:.3},\
         \"intrinsic_ms\":{intrinsic_ms:.3},\
         \"generic_ms\":{generic_ms:.3},\
         \"overhead_direct\":{overhead_direct:.3},\
         \"overhead_intrinsic\":{overhead_intrinsic:.3},\
         \"overhead_generic\":{overhead_generic:.3},\
         \"overhead_instrs\":{overhead_instrs:.3},\
         \"improvement\":{improvement:.3},\
         \"direct_vs_rewrite\":{direct_vs_rewrite:.3}}}}}"
    );
    std::fs::write(&out_path, &json).expect("write overhead json");
    println!("wrote {out_path}");
}
