//! The Fig. 9 **overhead artifact** of the host-call intrinsics PR:
//! runtime of instrumented execution relative to the uninstrumented flat
//! baseline, per hook group and for all hooks at once — with the all-hooks
//! row measured on **both** execution paths:
//!
//! - **intrinsic** (post-PR): `Op::HostCall`/`Op::HostCallConst` dispatch
//!   plus the runtime's zero-subscriber skip (`NoAnalysis` listens to
//!   nothing, like Fig. 9's no-op analysis),
//! - **generic** (pre-PR): the generic call machinery with full event
//!   construction (`AllHooksNop` subscribes to everything).
//!
//! The recorded `improvement` (generic wall / intrinsic wall) is the PR's
//! acceptance number (≥ 1.5×); `ci.sh` gates on the recorded all-hooks
//! overhead not regressing past the committed baseline × 1.1.
//!
//! ```sh
//! cargo run --release -p wasabi-bench --bin overhead \
//!     [polybench_n] [kernel_count] [--out <path>] [--smoke]
//! ```
//!
//! Default output path: `BENCH_overhead.json`. `--smoke` shrinks the run
//! (3 kernels, all-hooks row only) while keeping `polybench_n` at the full
//! value so the recorded overhead ratio stays comparable to the committed
//! baseline.

use std::fmt::Write as _;

use wasabi::hooks::HookSet;
use wasabi_bench::{
    geomean, run_flat_amortized, run_instrumented_amortized, run_instrumented_generic_amortized,
    FIGURE_HOOK_GROUPS,
};
use wasabi_vm::TranslatedModule;
use wasabi_workloads::{compile, polybench};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let smoke = raw.iter().any(|a| a == "--smoke");
    let out_path = raw
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| raw.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_overhead.json".to_string());
    let mut positional = raw
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && (*i == 0 || raw[i - 1] != "--out"))
        .map(|(_, a)| a);
    // Keep n and the invocation count at the full values even in smoke
    // mode: the overhead is a ratio, and the CI gate compares it per
    // kernel against the committed baseline — only the kernel count and
    // the per-hook-group sweep shrink.
    let default_kernels: usize = if smoke { 3 } else { 8 };
    let invocations: usize = 4;
    let polybench_n: u32 = positional.next().and_then(|a| a.parse().ok()).unwrap_or(12);
    let kernel_count: usize = positional
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(default_kernels);

    let kernels: Vec<(&str, wasabi_wasm::Module)> = polybench::NAMES
        .iter()
        .take(kernel_count)
        .map(|name| {
            (
                *name,
                compile(&polybench::by_name(name, polybench_n).expect("known kernel")),
            )
        })
        .collect();

    println!(
        "Overhead of instrumented execution vs. uninstrumented flat \
         ({} PolyBench kernels at n={polybench_n}, {invocations} invocation(s))",
        kernels.len()
    );
    println!();

    // Uninstrumented flat baseline, translated once per kernel.
    let bases: Vec<_> = kernels
        .iter()
        .map(|(_, module)| {
            let translated = TranslatedModule::new(module.clone()).expect("validates");
            run_flat_amortized(&translated, "main", invocations)
        })
        .collect();

    // Per-hook-group overhead on the intrinsic path (skipped in smoke
    // mode; the all-hooks row is the gated artifact).
    let mut group_rows = Vec::new();
    if !smoke {
        println!("{:<14} {:>12} {:>12}", "hook", "wall", "instrs");
        println!("{:-<14} {:->12} {:->12}", "", "", "");
        for (name, hooks) in FIGURE_HOOK_GROUPS {
            let set = HookSet::of(hooks);
            let mut wall_ratios = Vec::new();
            let mut instr_ratios = Vec::new();
            for ((_, module), base) in kernels.iter().zip(&bases) {
                let run = run_instrumented_amortized(module, set, "main", invocations);
                assert_eq!(run.host_calls_slow, 0, "{name}: intrinsic path only");
                wall_ratios.push(run.wall.as_secs_f64() / base.wall.as_secs_f64());
                instr_ratios.push(run.vm_instrs as f64 / base.vm_instrs as f64);
            }
            let wall = geomean(wall_ratios.iter().copied());
            let instrs = geomean(instr_ratios.iter().copied());
            println!("{name:<14} {wall:>11.2}x {instrs:>11.2}x");
            group_rows.push((name, wall, instrs));
        }
        println!();
    }

    // The all-hooks row, on both paths.
    let mut base_ms = 0.0;
    let mut intrinsic_ms = 0.0;
    let mut generic_ms = 0.0;
    let mut intrinsic_wall_ratios = Vec::new();
    let mut generic_wall_ratios = Vec::new();
    let mut instr_ratios = Vec::new();
    let mut kernel_rows = Vec::new();
    for ((name, module), base) in kernels.iter().zip(&bases) {
        let intrinsic = run_instrumented_amortized(module, HookSet::all(), "main", invocations);
        // The benches must be able to assert the intrinsic path actually
        // fired — that is the artifact being measured.
        assert!(
            intrinsic.host_calls_fast > 0,
            "{name}: intrinsic path did not fire"
        );
        assert_eq!(
            intrinsic.host_calls_slow, 0,
            "{name}: unexpected slow calls"
        );
        let generic =
            run_instrumented_generic_amortized(module, HookSet::all(), "main", invocations);
        assert_eq!(generic.host_calls_fast, 0, "{name}: generic path leaked");
        assert_eq!(
            generic.host_calls_slow, intrinsic.host_calls_fast,
            "{name}: both paths must make the same hook calls"
        );
        assert_eq!(
            generic.vm_instrs, intrinsic.vm_instrs,
            "{name}: instr counts"
        );
        base_ms += base.wall.as_secs_f64() * 1000.0;
        intrinsic_ms += intrinsic.wall.as_secs_f64() * 1000.0;
        generic_ms += generic.wall.as_secs_f64() * 1000.0;
        intrinsic_wall_ratios.push(intrinsic.wall.as_secs_f64() / base.wall.as_secs_f64());
        generic_wall_ratios.push(generic.wall.as_secs_f64() / base.wall.as_secs_f64());
        instr_ratios.push(intrinsic.vm_instrs as f64 / base.vm_instrs as f64);
        kernel_rows.push((
            *name,
            intrinsic.wall.as_secs_f64() / base.wall.as_secs_f64(),
            generic.wall.as_secs_f64() / base.wall.as_secs_f64(),
        ));
    }
    let overhead_intrinsic = geomean(intrinsic_wall_ratios.iter().copied());
    let overhead_generic = geomean(generic_wall_ratios.iter().copied());
    let overhead_instrs = geomean(instr_ratios.iter().copied());
    let improvement = generic_ms / intrinsic_ms;

    println!("all hooks, geomean overhead vs. uninstrumented flat:");
    println!(
        "  intrinsic (post-PR): {overhead_intrinsic:>8.2}x wall, {overhead_instrs:.2}x instrs"
    );
    println!("  generic   (pre-PR):  {overhead_generic:>8.2}x wall");
    println!();
    println!(
        "totals: base {base_ms:.1} ms, intrinsic {intrinsic_ms:.1} ms, \
         generic {generic_ms:.1} ms -> improvement {improvement:.2}x"
    );

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"polybench_n\":{polybench_n},\"kernel_count\":{},\
         \"invocations\":{invocations},\"kernels\":[",
        kernels.len()
    );
    for (i, (name, intrinsic, generic)) in kernel_rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"name\":\"{name}\",\"overhead_intrinsic\":{intrinsic:.3},\
             \"overhead_generic\":{generic:.3}}}"
        );
    }
    json.push_str("],\"hook_groups\":[");
    for (i, (name, wall, instrs)) in group_rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"hook\":\"{name}\",\"wall_overhead\":{wall:.3},\
             \"instr_overhead\":{instrs:.3}}}"
        );
    }
    let _ = write!(
        json,
        "],\"all\":{{\"base_ms\":{base_ms:.3},\
         \"intrinsic_ms\":{intrinsic_ms:.3},\
         \"generic_ms\":{generic_ms:.3},\
         \"overhead_intrinsic\":{overhead_intrinsic:.3},\
         \"overhead_generic\":{overhead_generic:.3},\
         \"overhead_instrs\":{overhead_instrs:.3},\
         \"improvement\":{improvement:.3}}}}}"
    );
    std::fs::write(&out_path, &json).expect("write overhead json");
    println!("wrote {out_path}");
}
