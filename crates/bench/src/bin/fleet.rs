//! Batch-throughput baseline for the `wasabi::fleet` engine: the same job
//! list (PolyBench kernels × analyses × repeats) is pushed through a
//! `Fleet` at 1 worker vs. all cores, each on a cold vs. a pre-warmed
//! shared `ModuleCache`, and the jobs/sec of each configuration is
//! recorded as JSON.
//!
//! ```sh
//! cargo run --release -p wasabi-bench --bin fleet \
//!     [polybench_n] [kernel_count] [--out <path>] [--smoke]
//! ```
//!
//! Default output path: `BENCH_fleet.json` in the current directory.
//! `--smoke` shrinks the workload for CI. The headline ratios:
//!
//! - **amortization** (warm vs. cold at 1 worker): what the shared
//!   translated-module cache saves once every distinct (module, hook set)
//!   has been validated + instrumented + translated exactly once.
//! - **scaling** (1 worker vs. all cores, both warm): what the
//!   work-stealing worker fleet adds on top. On a single-core machine
//!   this is ~1x by construction — the JSON records `cores` so the gate
//!   in `ci.sh` can judge the numbers in context.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use wasabi::cache::ModuleCache;
use wasabi::fleet::Job;
use wasabi_analyses::registry;
use wasabi_wasm::module::Module;
use wasabi_workloads::{compile, polybench};

/// The analyses each job runs. Light hook sets keep per-job execution
/// close to uninstrumented speed, so the cold-vs-warm contrast measures
/// the cache, not the analyses.
const JOB_ANALYSES: [&str; 1] = ["call_graph"];

struct Row {
    config: &'static str,
    workers: usize,
    warm: bool,
    wall: Duration,
    jobs: usize,
    jobs_per_sec: f64,
    cache_hits: u64,
    cache_misses: u64,
    stolen: u64,
}

fn job_list(kernels: &[(String, Arc<Module>)], repeats: usize) -> Vec<Job> {
    let mut jobs = Vec::new();
    for _ in 0..repeats {
        for (name, module) in kernels {
            jobs.push(
                Job::new(name.clone(), Arc::clone(module), "main", vec![])
                    .analyses(JOB_ANALYSES.iter().copied()),
            );
        }
    }
    jobs
}

/// Run the job list through a fleet `rounds` times (fresh cache each
/// round) and keep the median round by wall time.
fn run_config(
    config: &'static str,
    kernels: &[(String, Arc<Module>)],
    repeats: usize,
    workers: usize,
    warm: bool,
    rounds: usize,
) -> Row {
    let mut measured: Vec<Row> = (0..rounds)
        .map(|_| run_once(config, kernels, repeats, workers, warm))
        .collect();
    measured.sort_by(|a, b| a.wall.cmp(&b.wall));
    measured.swap_remove(measured.len() / 2)
}

/// One measured batch.
fn run_once(
    config: &'static str,
    kernels: &[(String, Arc<Module>)],
    repeats: usize,
    workers: usize,
    warm: bool,
) -> Row {
    let cache = ModuleCache::shared();
    if warm {
        // Prime every (module, hook set) entry, untimed.
        let mut primer = registry::fleet()
            .workers(workers)
            .cache(Arc::clone(&cache))
            .build();
        for job in job_list(kernels, 1) {
            primer.submit(job);
        }
        assert!(primer.run().all_ok(), "priming batch failed");
    }
    let mut fleet = registry::fleet().workers(workers).cache(cache).build();
    for job in job_list(kernels, repeats) {
        fleet.submit(job);
    }
    let batch = fleet.run();
    assert!(batch.all_ok(), "{config}: a job failed");
    let stolen = batch.jobs.iter().filter(|j| j.stats.stolen).count() as u64;
    Row {
        config,
        workers: batch.workers,
        warm,
        wall: batch.wall,
        jobs: batch.jobs.len(),
        jobs_per_sec: batch.jobs_per_sec(),
        cache_hits: batch.cache_hits,
        cache_misses: batch.cache_misses,
        stolen,
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let smoke = raw.iter().any(|a| a == "--smoke");
    let out_path = raw
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| raw.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_fleet.json".to_string());
    let mut positional = raw
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && (*i == 0 || raw[i - 1] != "--out"))
        .map(|(_, a)| a);
    // Small n on purpose: per-job execution stays cheap, so the numbers
    // contrast the cache + scheduling, not the kernels.
    let default_n: u32 = if smoke { 4 } else { 6 };
    // Full mode: every PolyBench kernel exactly once per batch, so a cold
    // batch pays one instrument+translate per job and a warm batch pays
    // none — the purest cold-vs-warm contrast. Smoke keeps a repeat so
    // the intra-batch cache path is exercised too.
    let default_kernels: usize = if smoke { 2 } else { polybench::NAMES.len() };
    let repeats: usize = if smoke { 2 } else { 1 };
    let rounds: usize = if smoke { 1 } else { 3 };
    let polybench_n: u32 = positional
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(default_n);
    let kernel_count: usize = positional
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(default_kernels);

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // Even on one core, run the "all cores" configs with >= 2 workers so
    // the steal path is actually exercised.
    let max_workers = cores.max(2);

    let kernels: Vec<(String, Arc<Module>)> = polybench::NAMES
        .iter()
        .take(kernel_count)
        .map(|name| {
            let program = polybench::by_name(name, polybench_n).expect("known kernel");
            (format!("{name}.wasm"), Arc::new(compile(&program)))
        })
        .collect();

    println!(
        "Fleet throughput: {} kernels x {:?} x {repeats} repeats = {} jobs \
         (PolyBench n={polybench_n}, {cores} core(s), max {max_workers} workers)",
        kernels.len(),
        JOB_ANALYSES,
        kernels.len() * repeats,
    );
    println!();
    println!(
        "{:<16} {:>8} {:>6} {:>10} {:>10} {:>6} {:>7} {:>7}",
        "config", "workers", "warm", "wall (ms)", "jobs/sec", "hits", "misses", "stolen"
    );
    println!(
        "{:-<16} {:->8} {:->6} {:->10} {:->10} {:->6} {:->7} {:->7}",
        "", "", "", "", "", "", "", ""
    );

    let rows = [
        run_config("cold_1worker", &kernels, repeats, 1, false, rounds),
        run_config("warm_1worker", &kernels, repeats, 1, true, rounds),
        run_config(
            "cold_allcores",
            &kernels,
            repeats,
            max_workers,
            false,
            rounds,
        ),
        run_config(
            "warm_allcores",
            &kernels,
            repeats,
            max_workers,
            true,
            rounds,
        ),
    ];
    for row in &rows {
        println!(
            "{:<16} {:>8} {:>6} {:>10.1} {:>10.1} {:>6} {:>7} {:>7}",
            row.config,
            row.workers,
            row.warm,
            row.wall.as_secs_f64() * 1000.0,
            row.jobs_per_sec,
            row.cache_hits,
            row.cache_misses,
            row.stolen,
        );
    }

    let by_config = |config: &str| {
        rows.iter()
            .find(|r| r.config == config)
            .expect("config measured")
    };
    let amortization =
        by_config("warm_1worker").jobs_per_sec / by_config("cold_1worker").jobs_per_sec;
    let scaling_warm =
        by_config("warm_allcores").jobs_per_sec / by_config("warm_1worker").jobs_per_sec;
    let warm_allcores_vs_cold_1worker =
        by_config("warm_allcores").jobs_per_sec / by_config("cold_1worker").jobs_per_sec;
    println!();
    println!("cache amortization (warm vs cold, 1 worker):   {amortization:.2}x");
    println!("worker scaling (1 -> {max_workers} workers, warm):        {scaling_warm:.2}x");
    println!("warm all-cores vs cold 1-worker:               {warm_allcores_vs_cold_1worker:.2}x");
    if cores == 1 {
        println!("note: single-core machine — worker scaling cannot exceed ~1x here");
    }

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"polybench_n\":{polybench_n},\"kernels\":{},\"repeats\":{repeats},\
         \"jobs\":{},\"analyses\":[{}],\"cores\":{cores},\"max_workers\":{max_workers},\
         \"amortization_warm_vs_cold_1worker\":{amortization:.3},\
         \"scaling_1worker_to_allcores_warm\":{scaling_warm:.3},\
         \"warm_allcores_vs_cold_1worker\":{warm_allcores_vs_cold_1worker:.3},\
         \"rows\":[",
        kernels.len(),
        kernels.len() * repeats,
        JOB_ANALYSES
            .iter()
            .map(|a| format!("\"{a}\""))
            .collect::<Vec<_>>()
            .join(","),
    );
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"config\":\"{}\",\"workers\":{},\"warm\":{},\"wall_ms\":{:.3},\
             \"jobs\":{},\"jobs_per_sec\":{:.3},\"cache_hits\":{},\"cache_misses\":{},\
             \"stolen_jobs\":{}}}",
            row.config,
            row.workers,
            row.warm,
            row.wall.as_secs_f64() * 1000.0,
            row.jobs,
            row.jobs_per_sec,
            row.cache_hits,
            row.cache_misses,
            row.stolen,
        );
    }
    json.push_str("]}");
    std::fs::write(&out_path, &json).expect("write fleet json");
    println!("wrote {out_path}");
}
