//! Parallel-build + persistent-session-cache benchmark (paper §3 /
//! Table 5 at scale): the fused instrument+translate build is swept over
//! thread counts on the PolyBench kernel set, then a cold process start
//! (build + persist) is contrasted with a disk-warm start (load the
//! prepared sessions back from the on-disk cache tier, no rebuild).
//!
//! ```sh
//! cargo run --release -p wasabi-bench --bin parallel \
//!     [polybench_n] [kernel_count] [--out <path>] [--smoke]
//! ```
//!
//! Default output path: `BENCH_parallel.json` in the current directory.
//! `--smoke` shrinks the workload for CI. The headline ratios:
//!
//! - **speedup_max_threads** (threads(1) vs threads(max), same builds):
//!   what function-granular fan-out buys — the paper's Table 5 shape.
//!   On a single-core machine this is ~1x by construction; the JSON
//!   records `cores` so the gate in `ci.sh` can judge it in context.
//! - **disk_warm_vs_cold**: what the persistent session cache saves a
//!   fresh process — decoding prepared code from disk instead of
//!   validating + instrumenting + translating from scratch.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use wasabi::cache::{content_key, ModuleCache};
use wasabi::hooks::HookSet;
use wasabi::{DiskCache, Instrumenter};
use wasabi_wasm::module::Module;
use wasabi_workloads::{compile, polybench};

struct ThreadRow {
    threads: usize,
    wall: Duration,
    speedup: f64,
}

struct DiskRow {
    config: &'static str,
    wall: Duration,
    disk_hits: u64,
    disk_misses: u64,
}

/// Build every kernel `repeats` times at the given thread count; the
/// whole sweep is what Table 5 times (instrumentation, all functions).
fn build_pass(kernels: &[Module], repeats: usize, threads: usize) -> Duration {
    let start = Instant::now();
    for _ in 0..repeats {
        for module in kernels {
            let (_translated, info) = Instrumenter::new(HookSet::all())
                .threads(threads)
                .run_direct(module)
                .expect("kernel builds");
            assert!(!info.hooks.is_empty(), "all-hooks build monomorphizes");
        }
    }
    start.elapsed()
}

/// Median-of-`rounds` wall time for one thread count.
fn measure_threads(kernels: &[Module], repeats: usize, threads: usize, rounds: usize) -> Duration {
    let mut walls: Vec<Duration> = (0..rounds)
        .map(|_| build_pass(kernels, repeats, threads))
        .collect();
    walls.sort();
    walls[walls.len() / 2]
}

/// One process "start": a fresh cache over `dir` prepares a session for
/// every kernel. With an empty dir that is a full build + persist; with a
/// populated one, every session decodes from the disk tier.
fn start_process(
    config: &'static str,
    kernels: &[(String, Module)],
    dir: &std::path::Path,
) -> DiskRow {
    let disk = DiskCache::new(dir).expect("disk cache dir");
    let cache = ModuleCache::new().with_disk(disk);
    let start = Instant::now();
    for (key, module) in kernels {
        cache
            .session_for(key, HookSet::all(), module)
            .expect("kernel builds");
    }
    DiskRow {
        config,
        wall: start.elapsed(),
        disk_hits: cache.disk_hits(),
        disk_misses: cache.disk_misses(),
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let smoke = raw.iter().any(|a| a == "--smoke");
    let out_path = raw
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| raw.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_parallel.json".to_string());
    let mut positional = raw
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && (*i == 0 || raw[i - 1] != "--out"))
        .map(|(_, a)| a);
    let default_n: u32 = if smoke { 4 } else { 6 };
    let default_kernels: usize = if smoke { 2 } else { polybench::NAMES.len() };
    // Enough build repetitions that a pass is comfortably above timer
    // noise even though one kernel builds in well under a millisecond.
    let repeats: usize = if smoke { 3 } else { 20 };
    let rounds: usize = if smoke { 1 } else { 3 };
    let polybench_n: u32 = positional
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(default_n);
    let kernel_count: usize = positional
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(default_kernels);

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // Even on one core, sweep past 1 thread so the fan-out path itself is
    // exercised (its speedup there is ~1x and judged as such).
    let max_threads = cores.max(2);
    let mut thread_counts = vec![1usize];
    let mut t = 2;
    while t < max_threads {
        thread_counts.push(t);
        t *= 2;
    }
    thread_counts.push(max_threads);

    let named_kernels: Vec<(String, Module)> = polybench::NAMES
        .iter()
        .take(kernel_count)
        .map(|name| {
            let program = polybench::by_name(name, polybench_n).expect("known kernel");
            let module = compile(&program);
            let key = content_key(&wasabi_wasm::encode::encode(&module));
            (key, module)
        })
        .collect();
    let kernels: Vec<Module> = named_kernels.iter().map(|(_, m)| m.clone()).collect();
    let functions: usize = kernels.iter().map(|m| m.functions.len()).sum();

    println!(
        "Parallel build: {} kernels ({} functions) x {repeats} repeats per pass \
         (PolyBench n={polybench_n}, {cores} core(s), threads {:?})",
        kernels.len(),
        functions,
        thread_counts,
    );
    println!();
    println!("{:<10} {:>10} {:>9}", "threads", "wall (ms)", "speedup");
    println!("{:-<10} {:->10} {:->9}", "", "", "");

    let base = measure_threads(&kernels, repeats, 1, rounds);
    let mut thread_rows = vec![ThreadRow {
        threads: 1,
        wall: base,
        speedup: 1.0,
    }];
    for &threads in &thread_counts[1..] {
        let wall = measure_threads(&kernels, repeats, threads, rounds);
        thread_rows.push(ThreadRow {
            threads,
            wall,
            speedup: base.as_secs_f64() / wall.as_secs_f64(),
        });
    }
    for row in &thread_rows {
        println!(
            "{:<10} {:>10.1} {:>8.2}x",
            row.threads,
            row.wall.as_secs_f64() * 1000.0,
            row.speedup,
        );
    }
    let speedup_max = thread_rows.last().expect("swept").speedup;

    // Disk tier: cold start (empty dir: build + persist) vs warm start
    // (fresh cache, populated dir: decode only). Median-of-rounds each.
    let dir = PathBuf::from(std::env::temp_dir())
        .join(format!("wasabi-bench-parallel-{}", std::process::id()));
    let mut colds = Vec::new();
    let mut warms = Vec::new();
    for _ in 0..rounds {
        let _ = std::fs::remove_dir_all(&dir);
        colds.push(start_process("cold_start", &named_kernels, &dir));
        warms.push(start_process("disk_warm_start", &named_kernels, &dir));
    }
    colds.sort_by(|a, b| a.wall.cmp(&b.wall));
    warms.sort_by(|a, b| a.wall.cmp(&b.wall));
    let cold = colds.swap_remove(colds.len() / 2);
    let warm = warms.swap_remove(warms.len() / 2);
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(
        cold.disk_misses,
        kernels.len() as u64,
        "a cold start must build every kernel"
    );
    assert_eq!(
        warm.disk_hits,
        kernels.len() as u64,
        "a warm start must serve every kernel from disk"
    );
    let disk_warm_vs_cold = cold.wall.as_secs_f64() / warm.wall.as_secs_f64();

    println!();
    println!(
        "{:<18} {:>10} {:>10} {:>11}",
        "config", "wall (ms)", "disk hits", "disk misses"
    );
    println!("{:-<18} {:->10} {:->10} {:->11}", "", "", "", "");
    for row in [&cold, &warm] {
        println!(
            "{:<18} {:>10.2} {:>10} {:>11}",
            row.config,
            row.wall.as_secs_f64() * 1000.0,
            row.disk_hits,
            row.disk_misses,
        );
    }
    println!();
    println!("build speedup at {max_threads} thread(s): {speedup_max:.2}x");
    println!("disk-warm start vs cold start:  {disk_warm_vs_cold:.2}x");
    if cores == 1 {
        println!("note: single-core machine — thread scaling cannot exceed ~1x here");
    }

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"polybench_n\":{polybench_n},\"kernels\":{},\"functions\":{functions},\
         \"repeats\":{repeats},\"cores\":{cores},\"max_threads\":{max_threads},\
         \"speedup_max_threads\":{speedup_max:.3},\
         \"disk_warm_vs_cold\":{disk_warm_vs_cold:.3},\"threads\":[",
        kernels.len(),
    );
    for (i, row) in thread_rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"threads\":{},\"wall_ms\":{:.3},\"speedup\":{:.3}}}",
            row.threads,
            row.wall.as_secs_f64() * 1000.0,
            row.speedup,
        );
    }
    json.push_str("],\"disk\":[");
    for (i, row) in [&cold, &warm].into_iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"config\":\"{}\",\"wall_ms\":{:.3},\"disk_hits\":{},\"disk_misses\":{}}}",
            row.config,
            row.wall.as_secs_f64() * 1000.0,
            row.disk_hits,
            row.disk_misses,
        );
    }
    json.push_str("]}");
    std::fs::write(&out_path, &json).expect("write parallel json");
    println!("wrote {out_path}");
}
