//! Fused-pipeline throughput baseline: run the eight Table-4 analyses over
//! PolyBench kernels **fused** (one instrumentation + execution pass with
//! per-hook dispatch) vs. **sequential** (eight independent
//! `AnalysisSession`s, as the pre-pipeline API forced), and write the
//! comparison as JSON.
//!
//! ```sh
//! cargo run --release -p wasabi-bench --bin pipeline \
//!     [polybench_n] [kernel_count] [--out <path>] [--smoke]
//! ```
//!
//! Default output path: `BENCH_pipeline.json` in the current directory.
//! `--smoke` shrinks the workload for CI.

use std::fmt::Write as _;
use std::time::Instant;

use wasabi::{stats, AnalysisSession, Wasabi};
use wasabi_analyses::registry;
use wasabi_workloads::{compile, polybench};

struct KernelResult {
    name: String,
    fused_ms: f64,
    sequential_ms: f64,
    fused_instrumentations: u64,
    sequential_instrumentations: u64,
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let smoke = raw.iter().any(|a| a == "--smoke");
    let out_path = raw
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| raw.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_pipeline.json".to_string());
    let mut positional = raw
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && (*i == 0 || raw[i - 1] != "--out"))
        .map(|(_, a)| a);
    let default_n: u32 = if smoke { 6 } else { 12 };
    let default_kernels: usize = if smoke { 2 } else { 8 };
    let polybench_n: u32 = positional
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(default_n);
    let kernel_count: usize = positional
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(default_kernels);

    println!(
        "Pipeline baseline: 8 Table-4 analyses fused vs. sequential \
         ({kernel_count} PolyBench kernels at n={polybench_n})"
    );
    println!();
    println!(
        "{:<16} {:>12} {:>14} {:>9} {:>14}",
        "kernel", "fused (ms)", "sequential", "speedup", "instr passes"
    );
    println!("{:-<16} {:->12} {:->14} {:->9} {:->14}", "", "", "", "", "");

    let mut results: Vec<KernelResult> = Vec::new();
    for name in polybench::NAMES.iter().take(kernel_count) {
        let module = compile(&polybench::by_name(name, polybench_n).expect("known kernel"));

        // Fused: one pipeline over all eight analyses.
        let mut analyses = registry::table4();
        let instr_before = stats::instrumentation_passes();
        let start = Instant::now();
        let mut builder = Wasabi::builder();
        for analysis in &mut analyses {
            builder = builder.analysis(analysis.as_mut());
        }
        let mut pipeline = builder.build(&module).expect("instruments");
        pipeline.run("main", &[]).expect("runs");
        let fused_ms = start.elapsed().as_secs_f64() * 1000.0;
        let fused_instrumentations = stats::instrumentation_passes() - instr_before;
        drop(pipeline);

        // Sequential: eight independent instrument+execute passes.
        let instr_before = stats::instrumentation_passes();
        let start = Instant::now();
        for analysis in registry::table4().iter_mut() {
            let session =
                AnalysisSession::for_analysis(&module, analysis.as_ref()).expect("instruments");
            session.run(analysis.as_mut(), "main", &[]).expect("runs");
        }
        let sequential_ms = start.elapsed().as_secs_f64() * 1000.0;
        let sequential_instrumentations = stats::instrumentation_passes() - instr_before;

        println!(
            "{name:<16} {fused_ms:>12.1} {sequential_ms:>14.1} {:>8.2}x {:>6} vs {:>4}",
            sequential_ms / fused_ms,
            fused_instrumentations,
            sequential_instrumentations,
        );
        results.push(KernelResult {
            name: name.to_string(),
            fused_ms,
            sequential_ms,
            fused_instrumentations,
            sequential_instrumentations,
        });
    }

    let total_fused: f64 = results.iter().map(|r| r.fused_ms).sum();
    let total_sequential: f64 = results.iter().map(|r| r.sequential_ms).sum();
    println!();
    println!(
        "total: fused {total_fused:.1} ms vs sequential {total_sequential:.1} ms \
         ({:.2}x)",
        total_sequential / total_fused
    );

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"polybench_n\":{polybench_n},\"analyses\":8,\
         \"total_fused_ms\":{total_fused:.3},\
         \"total_sequential_ms\":{total_sequential:.3},\
         \"speedup\":{:.3},\"kernels\":[",
        total_sequential / total_fused
    );
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"name\":\"{}\",\"fused_ms\":{:.3},\"sequential_ms\":{:.3},\
             \"fused_instrumentation_passes\":{},\
             \"sequential_instrumentation_passes\":{}}}",
            r.name,
            r.fused_ms,
            r.sequential_ms,
            r.fused_instrumentations,
            r.sequential_instrumentations,
        );
    }
    json.push_str("]}");
    std::fs::write(&out_path, &json).expect("write baseline json");
    println!("wrote {out_path}");
}
