//! # wasabi-bench — harness regenerating and extending the paper's evaluation
//!
//! Two families of binaries. First, one per paper table/figure (see
//! DESIGN.md §4 for the experiment index):
//!
//! | target | paper artifact |
//! |---|---|
//! | `table4` | Table 4 (analyses, hooks, LoC) |
//! | `table5` | Table 5 (instrumentation time & throughput) + §4.4 parallel speedup |
//! | `fig8` | Figure 8 (binary size increase per hook) |
//! | `fig9` | Figure 9 (runtime overhead per hook) |
//! | `monomorphization` | §4.5 (on-demand hook counts vs. eager blow-up) |
//! | `ablation` | per-mechanism cost breakdown |
//!
//! Second, regression baselines for this reproduction's own extensions,
//! each writing a committed `BENCH_*.json` that `ci.sh` gates on:
//!
//! | target | extension measured | artifact |
//! |---|---|---|
//! | `pipeline` | fused multi-analysis pipeline vs. N sequential sessions | `BENCH_pipeline.json` |
//! | `interp` | flat pre-translated IR vs. the structured walk | `BENCH_interp.json` |
//! | `overhead` | host-call intrinsics vs. the generic call path (Fig. 9 revisited) | `BENCH_overhead.json` |
//! | `fleet` | batch engine: shared translated-module cache + work-stealing workers, cold vs. warm, 1 worker vs. all cores | `BENCH_fleet.json` |
//!
//! Every extension binary accepts `--smoke` (a seconds-scale workload for
//! CI) and `--out <path>`; run them in release mode, e.g.
//! `cargo run --release -p wasabi-bench --bin fleet`.
//!
//! Criterion benches (`cargo bench`) cover the timing-sensitive parts:
//! `instrumentation_time`, `runtime_overhead`, `vm_baseline`.
//!
//! The library part of this crate holds what the binaries share: the
//! [`FIGURE_HOOK_GROUPS`] x-axis of Figures 8/9, workload construction
//! ([`subjects`]), and the measurement helpers
//! ([`run_original`], [`run_instrumented`], [`instrumentation_stats`], …).

use std::time::{Duration, Instant};

use wasabi::hooks::{Hook, HookSet, NoAnalysis};
use wasabi::{instrument, AnalysisSession, WasabiHost};
use wasabi_vm::{EmptyHost, Instance, Reference, TranslatedModule};
use wasabi_wasm::encode::encode;
use wasabi_wasm::module::Module;
use wasabi_workloads::synthetic::{synthetic_app, SyntheticConfig};
use wasabi_workloads::{compile, polybench};

/// The per-hook instrumentation groups on the x-axis of Figures 8 and 9.
///
/// `call` covers both `call_pre` and `call_post` (one x-axis entry in the
/// paper); `start` is excluded (it fires at most once and has no figure
/// entry).
pub const FIGURE_HOOK_GROUPS: [(&str, &[Hook]); 21] = [
    ("nop", &[Hook::Nop]),
    ("unreachable", &[Hook::Unreachable]),
    ("memory_size", &[Hook::MemorySize]),
    ("memory_grow", &[Hook::MemoryGrow]),
    ("select", &[Hook::Select]),
    ("drop", &[Hook::Drop]),
    ("load", &[Hook::Load]),
    ("store", &[Hook::Store]),
    ("call", &[Hook::CallPre, Hook::CallPost]),
    ("return", &[Hook::Return]),
    ("const", &[Hook::Const]),
    ("unary", &[Hook::Unary]),
    ("binary", &[Hook::Binary]),
    ("global", &[Hook::Global]),
    ("local", &[Hook::Local]),
    ("begin", &[Hook::Begin]),
    ("end", &[Hook::End]),
    ("if", &[Hook::If]),
    ("br", &[Hook::Br]),
    ("br_if", &[Hook::BrIf]),
    ("br_table", &[Hook::BrTable]),
];

/// A named evaluation subject.
pub struct Subject {
    pub name: String,
    pub module: Module,
    /// `true` for the 30 PolyBench kernels (aggregated in figures).
    pub is_polybench: bool,
}

/// The paper's 32 programs: 30 PolyBench kernels plus the two app-like
/// binaries (scaled to `app_scale` bytes for the smaller one; the paper's
/// full sizes are 9.5 MB and 39.5 MB, ratio preserved).
pub fn subjects(polybench_n: u32, app_scale: usize) -> Vec<Subject> {
    let mut subjects: Vec<Subject> = polybench::all(polybench_n)
        .iter()
        .map(|program| Subject {
            name: program.name.to_string(),
            module: compile(program),
            is_polybench: true,
        })
        .collect();
    subjects.push(Subject {
        name: "pspdfkit-like".to_string(),
        module: synthetic_app(&SyntheticConfig::pspdfkit_like().with_target_bytes(app_scale)),
        is_polybench: false,
    });
    subjects.push(Subject {
        name: "unreal-like".to_string(),
        module: synthetic_app(
            &SyntheticConfig::unreal_like().with_target_bytes(app_scale * 39_510 / 9_615),
        ),
        is_polybench: false,
    });
    subjects
}

/// Encoded binary size in bytes.
pub fn binary_size(module: &Module) -> usize {
    encode(module).len()
}

/// Time one instrumentation run.
pub fn time_instrumentation(module: &Module, hooks: HookSet) -> Duration {
    let start = Instant::now();
    let result = instrument(module, hooks).expect("instruments");
    let elapsed = start.elapsed();
    std::hint::black_box(result);
    elapsed
}

/// Mean and standard deviation of `runs` instrumentation timings.
pub fn instrumentation_stats(module: &Module, hooks: HookSet, runs: usize) -> (Duration, Duration) {
    let times: Vec<f64> = (0..runs)
        .map(|_| time_instrumentation(module, hooks).as_secs_f64())
        .collect();
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let var = times.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / times.len() as f64;
    (
        Duration::from_secs_f64(mean),
        Duration::from_secs_f64(var.sqrt()),
    )
}

/// Outcome of one measured execution.
pub struct RunMeasurement {
    pub wall: Duration,
    /// WebAssembly instructions the VM executed (a deterministic cost
    /// metric that complements wall time).
    pub vm_instrs: u64,
    /// Host calls dispatched through the VM's host-call intrinsic fast
    /// path (`Op::HostCall`/`Op::HostCallConst`).
    pub host_calls_fast: u64,
    /// Host calls dispatched through the generic call machinery.
    pub host_calls_slow: u64,
}

impl RunMeasurement {
    fn from_instance(wall: Duration, instance: &wasabi_vm::Instance) -> Self {
        let (host_calls_fast, host_calls_slow) = instance.host_call_counts();
        RunMeasurement {
            wall,
            vm_instrs: instance.executed_instrs(),
            host_calls_fast,
            host_calls_slow,
        }
    }
}

/// A no-op analysis that **subscribes to all hooks**: every event is built
/// and delivered (to empty handlers). This reproduces the pre-intrinsic
/// runtime cost — [`NoAnalysis`] subscribes to nothing, so since the
/// zero-subscriber skip every hook call under it returns before event
/// construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllHooksNop;

impl wasabi::hooks::Analysis for AllHooksNop {
    fn name(&self) -> &str {
        "all_hooks_nop"
    }

    fn hooks(&self) -> HookSet {
        HookSet::all()
    }
}

/// Run the uninstrumented module's export once and measure it.
pub fn run_original(module: &Module, export: &str) -> RunMeasurement {
    let mut host = EmptyHost;
    let mut instance = Instance::instantiate(module.clone(), &mut host).expect("instantiates");
    let start = Instant::now();
    instance
        .invoke_export(export, &[], &mut host)
        .expect("runs without trap");
    RunMeasurement::from_instance(start.elapsed(), &instance)
}

/// Instrument for `hooks`, run under the no-op analysis, and measure.
/// The measured time excludes instrumentation (like the paper, which
/// instruments offline and measures execution in the browser).
pub fn run_instrumented(module: &Module, hooks: HookSet, export: &str) -> RunMeasurement {
    let session = AnalysisSession::new(module, hooks).expect("instruments");
    let mut analysis = NoAnalysis;
    let mut host = WasabiHost::new(session.info(), &mut analysis);
    let mut instance =
        Instance::instantiate(session.module().clone(), &mut host).expect("instantiates");
    let start = Instant::now();
    instance
        .invoke_export(export, &[], &mut host)
        .expect("runs without trap");
    RunMeasurement::from_instance(start.elapsed(), &instance)
}

/// Best-of-`repeats` original run (minimum wall time suppresses scheduler
/// noise on short-running subjects; the VM instruction count is identical
/// across repeats). The module is validated and translated to the flat IR
/// **once**; each repeat only instantiates.
pub fn run_original_repeated(module: &Module, export: &str, repeats: usize) -> RunMeasurement {
    let translated = TranslatedModule::new(module.clone()).expect("validates");
    (0..repeats.max(1))
        .map(|_| {
            let mut host = EmptyHost;
            let mut instance =
                Instance::instantiate_translated(&translated, &mut host).expect("instantiates");
            let start = Instant::now();
            instance
                .invoke_export(export, &[], &mut host)
                .expect("runs without trap");
            RunMeasurement::from_instance(start.elapsed(), &instance)
        })
        .min_by(|a, b| a.wall.cmp(&b.wall))
        .expect("at least one run")
}

/// Best-of-`repeats` instrumented run (instrumentation done once).
pub fn run_instrumented_repeated(
    module: &Module,
    hooks: HookSet,
    export: &str,
    repeats: usize,
) -> RunMeasurement {
    let session = AnalysisSession::new(module, hooks).expect("instruments");
    (0..repeats.max(1))
        .map(|_| {
            let mut analysis = NoAnalysis;
            let mut host = WasabiHost::new(session.info(), &mut analysis);
            let mut instance = Instance::instantiate_translated(session.translated(), &mut host)
                .expect("instantiates");
            let start = Instant::now();
            instance
                .invoke_export(export, &[], &mut host)
                .expect("runs without trap");
            RunMeasurement::from_instance(start.elapsed(), &instance)
        })
        .min_by(|a, b| a.wall.cmp(&b.wall))
        .expect("at least one run")
}

/// Measure `invocations` consecutive calls of the uninstrumented export
/// (one instantiation; wall time and instruction count are totals). Use
/// for short-running subjects where a single call is below timer
/// resolution.
pub fn run_original_amortized(module: &Module, export: &str, invocations: usize) -> RunMeasurement {
    let mut host = EmptyHost;
    let mut instance = Instance::instantiate(module.clone(), &mut host).expect("instantiates");
    let start = Instant::now();
    for _ in 0..invocations.max(1) {
        instance
            .invoke_export(export, &[], &mut host)
            .expect("runs without trap");
    }
    RunMeasurement::from_instance(start.elapsed(), &instance)
}

/// Measure `invocations` consecutive calls of the uninstrumented export
/// executed by the structured-walk [`Reference`] oracle — the seed
/// interpreter semantics, the "before" side of `BENCH_interp.json`.
pub fn run_reference_amortized(
    module: &Module,
    export: &str,
    invocations: usize,
) -> RunMeasurement {
    let reference = Reference::new(module);
    let mut host = EmptyHost;
    let mut instance = Instance::instantiate(module.clone(), &mut host).expect("instantiates");
    let start = Instant::now();
    for _ in 0..invocations.max(1) {
        reference
            .invoke_export(&mut instance, export, &[], &mut host)
            .expect("runs without trap");
    }
    RunMeasurement::from_instance(start.elapsed(), &instance)
}

/// Amortized flat-IR counterpart of [`run_reference_amortized`]: the
/// module is translated once up front, then invoked on one instance.
pub fn run_flat_amortized(
    translated: &TranslatedModule,
    export: &str,
    invocations: usize,
) -> RunMeasurement {
    let mut host = EmptyHost;
    let mut instance =
        Instance::instantiate_translated(translated, &mut host).expect("instantiates");
    let start = Instant::now();
    for _ in 0..invocations.max(1) {
        instance
            .invoke_export(export, &[], &mut host)
            .expect("runs without trap");
    }
    RunMeasurement::from_instance(start.elapsed(), &instance)
}

/// Amortized counterpart of [`run_instrumented`].
pub fn run_instrumented_amortized(
    module: &Module,
    hooks: HookSet,
    export: &str,
    invocations: usize,
) -> RunMeasurement {
    let session = AnalysisSession::new(module, hooks).expect("instruments");
    let mut analysis = NoAnalysis;
    let mut host = WasabiHost::new(session.info(), &mut analysis);
    let mut instance =
        Instance::instantiate_translated(session.translated(), &mut host).expect("instantiates");
    let start = Instant::now();
    for _ in 0..invocations.max(1) {
        instance
            .invoke_export(export, &[], &mut host)
            .expect("runs without trap");
    }
    RunMeasurement::from_instance(start.elapsed(), &instance)
}

/// Amortized instrumented run over the **direct-emit path**
/// (`AnalysisSession::direct`): hook calls are injected at translate time
/// as synthetic imports, never encoded into a rewritten binary. Under
/// [`NoAnalysis`] every hook plan is a no-op, so the VM's instantiation-time
/// `is_noop` mask drops the calls before argument marshalling — the "after"
/// side of the `direct_vs_rewrite` ratio in `BENCH_overhead.json`.
pub fn run_direct_amortized(
    module: &Module,
    hooks: HookSet,
    export: &str,
    invocations: usize,
) -> RunMeasurement {
    let session = AnalysisSession::direct(module, hooks).expect("instruments");
    let mut analysis = NoAnalysis;
    let mut host = WasabiHost::new(session.info(), &mut analysis);
    let mut instance =
        Instance::instantiate_translated(session.translated(), &mut host).expect("instantiates");
    let start = Instant::now();
    for _ in 0..invocations.max(1) {
        instance
            .invoke_export(export, &[], &mut host)
            .expect("runs without trap");
    }
    RunMeasurement::from_instance(start.elapsed(), &instance)
}

/// Amortized instrumented run over the **pre-intrinsic generic-call
/// path**: the instrumented module is translated *without* host-call
/// intrinsics and runs under [`AllHooksNop`], so every hook call goes
/// through the generic call machinery and builds its event — the "before"
/// side of `BENCH_overhead.json`.
pub fn run_instrumented_generic_amortized(
    module: &Module,
    hooks: HookSet,
    export: &str,
    invocations: usize,
) -> RunMeasurement {
    let (instrumented, info) = instrument(module, hooks).expect("instruments");
    let translated =
        TranslatedModule::new_without_host_intrinsics(instrumented).expect("validates");
    let mut analysis = AllHooksNop;
    let mut host = WasabiHost::new(&info, &mut analysis);
    let mut instance =
        Instance::instantiate_translated(&translated, &mut host).expect("instantiates");
    let start = Instant::now();
    for _ in 0..invocations.max(1) {
        instance
            .invoke_export(export, &[], &mut host)
            .expect("runs without trap");
    }
    RunMeasurement::from_instance(start.elapsed(), &instance)
}

/// Geometric mean.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let (sum, n) = values
        .into_iter()
        .fold((0.0, 0u32), |(sum, n), value| (sum + value.ln(), n + 1));
    if n == 0 {
        return f64::NAN;
    }
    (sum / f64::from(n)).exp()
}

/// Format a byte count like the paper's tables (`9 615 389`).
pub fn format_bytes(bytes: usize) -> String {
    let digits: Vec<char> = bytes.to_string().chars().rev().collect();
    let mut out = String::new();
    for (i, d) in digits.iter().enumerate() {
        if i > 0 && i % 3 == 0 {
            out.push(' ');
        }
        out.push(*d);
    }
    out.chars().rev().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hook_groups_cover_everything_but_start_and_split_call() {
        let mut covered = HookSet::empty();
        for (_, hooks) in FIGURE_HOOK_GROUPS {
            for &hook in hooks {
                covered.insert(hook);
            }
        }
        let mut expected = HookSet::all();
        expected.remove(Hook::Start);
        assert_eq!(covered, expected);
        assert_eq!(FIGURE_HOOK_GROUPS.len(), 21);
    }

    #[test]
    fn subject_corpus_has_32_programs() {
        // Paper §4.1: "We apply Wasabi to 32 programs."
        let subjects = subjects(4, 50_000);
        assert_eq!(subjects.len(), 32);
        assert_eq!(subjects.iter().filter(|s| s.is_polybench).count(), 30);
    }

    #[test]
    fn geomean_of_constants() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!(geomean(std::iter::empty::<f64>()).is_nan());
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(format_bytes(9_615_389), "9 615 389");
        assert_eq!(format_bytes(42), "42");
        assert_eq!(format_bytes(1_000), "1 000");
    }

    #[test]
    fn reference_and_flat_execute_identically() {
        let module = compile(&polybench::by_name("jacobi-1d", 6).unwrap());
        let translated = TranslatedModule::new(module.clone()).unwrap();
        let flat = run_flat_amortized(&translated, "main", 2);
        let reference = run_reference_amortized(&module, "main", 2);
        // Superinstructions count as the instructions they were fused from,
        // so both executors must report the same instruction total.
        assert_eq!(flat.vm_instrs, reference.vm_instrs);
    }

    #[test]
    fn overhead_measurement_is_sane() {
        let module = compile(&polybench::by_name("jacobi-1d", 8).unwrap());
        let base = run_original(&module, "main");
        let all = run_instrumented(&module, HookSet::all(), "main");
        // Full instrumentation must execute strictly more VM instructions.
        assert!(all.vm_instrs > base.vm_instrs);
        // ... and its hook calls must ride the intrinsic fast path.
        assert!(all.host_calls_fast > 0);
        assert_eq!(all.host_calls_slow, 0);
        assert_eq!(base.host_calls_fast + base.host_calls_slow, 0);
    }

    #[test]
    fn direct_path_matches_rewrite_counts_and_masks_every_hook() {
        let module = compile(&polybench::by_name("jacobi-1d", 6).unwrap());
        let rewrite = run_instrumented_amortized(&module, HookSet::all(), "main", 1);
        let direct = run_direct_amortized(&module, HookSet::all(), "main", 1);
        // Same injected hook sites, same executed-instruction accounting.
        assert_eq!(direct.vm_instrs, rewrite.vm_instrs);
        assert_eq!(direct.host_calls_fast, rewrite.host_calls_fast);
        // Under NoAnalysis every plan is a no-op, so direct-emit's synthetic
        // imports are all masked at instantiation: zero slow-path calls.
        assert_eq!(direct.host_calls_slow, 0);
    }

    #[test]
    fn generic_path_matches_intrinsic_counts_but_takes_the_slow_route() {
        let module = compile(&polybench::by_name("jacobi-1d", 6).unwrap());
        let fast = run_instrumented_amortized(&module, HookSet::all(), "main", 1);
        let slow = run_instrumented_generic_amortized(&module, HookSet::all(), "main", 1);
        assert_eq!(fast.vm_instrs, slow.vm_instrs);
        assert_eq!(
            slow.host_calls_fast, 0,
            "generic path must not use intrinsics"
        );
        assert_eq!(
            fast.host_calls_fast + fast.host_calls_slow,
            slow.host_calls_slow,
            "same hook calls, different dispatch route"
        );
    }
}
