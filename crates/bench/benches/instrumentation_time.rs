//! Criterion benchmark for paper Table 5: instrumentation time across
//! binary sizes, including single- vs multi-threaded instrumentation
//! (paper §4.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wasabi::hooks::HookSet;
use wasabi::Instrumenter;
use wasabi_bench::binary_size;
use wasabi_workloads::synthetic::{synthetic_app, SyntheticConfig};
use wasabi_workloads::{compile, polybench};

fn instrumentation_time(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("instrument_full");
    group.sample_size(20);

    for name in ["gemm", "cholesky", "adi"] {
        let module = compile(&polybench::by_name(name, 16).expect("known kernel"));
        group.throughput(Throughput::Bytes(binary_size(&module) as u64));
        group.bench_with_input(BenchmarkId::new("polybench", name), &module, |b, m| {
            b.iter(|| wasabi::instrument(m, HookSet::all()).expect("instruments"));
        });
    }

    for (label, kilobytes) in [("app_100k", 100), ("app_1m", 1000)] {
        let module =
            synthetic_app(&SyntheticConfig::pspdfkit_like().with_target_bytes(kilobytes * 1000));
        group.throughput(Throughput::Bytes(binary_size(&module) as u64));
        group.bench_with_input(BenchmarkId::new("synthetic", label), &module, |b, m| {
            b.iter(|| wasabi::instrument(m, HookSet::all()).expect("instruments"));
        });
    }
    group.finish();

    // §4.4: single-threaded vs parallel on a larger binary.
    let mut group = criterion.benchmark_group("instrument_threads");
    group.sample_size(10);
    let module = synthetic_app(&SyntheticConfig::unreal_like().with_target_bytes(2_000_000));
    let max_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    for threads in [1, max_threads] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    Instrumenter::new(HookSet::all())
                        .threads(threads)
                        .run(&module)
                        .expect("instruments")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, instrumentation_time);
criterion_main!(benches);
