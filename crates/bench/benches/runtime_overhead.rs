//! Criterion benchmark for paper Figure 9: execution time of instrumented
//! vs uninstrumented programs, for a representative subset of hooks
//! (the full sweep across all 21 hook groups is produced by the `fig9`
//! binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wasabi::hooks::{Hook, HookSet, NoAnalysis};
use wasabi::{AnalysisSession, WasabiHost};
use wasabi_vm::{EmptyHost, Instance};
use wasabi_workloads::{compile, polybench};

const KERNEL: &str = "gemm";
const PROBLEM_SIZE: u32 = 8;

fn runtime_overhead(criterion: &mut Criterion) {
    let module = compile(&polybench::by_name(KERNEL, PROBLEM_SIZE).expect("known kernel"));

    let mut group = criterion.benchmark_group(format!("run_{KERNEL}"));
    group.sample_size(20);

    group.bench_function("original", |b| {
        b.iter(|| {
            let mut host = EmptyHost;
            let mut instance =
                Instance::instantiate(module.clone(), &mut host).expect("instantiates");
            instance
                .invoke_export("main", &[], &mut host)
                .expect("runs")
        });
    });

    let hook_sets: [(&str, HookSet); 5] = [
        ("nop_only", HookSet::of(&[Hook::Nop])),
        ("call", HookSet::of(&[Hook::CallPre, Hook::CallPost])),
        ("load_store", HookSet::of(&[Hook::Load, Hook::Store])),
        ("binary", HookSet::of(&[Hook::Binary])),
        ("all", HookSet::all()),
    ];
    for (label, hooks) in hook_sets {
        let session = AnalysisSession::new(&module, hooks).expect("instruments");
        group.bench_with_input(
            BenchmarkId::new("instrumented", label),
            &session,
            |b, session| {
                b.iter(|| {
                    let mut analysis = NoAnalysis;
                    let mut host = WasabiHost::new(session.info(), &mut analysis);
                    let mut instance = Instance::instantiate(session.module().clone(), &mut host)
                        .expect("instantiates");
                    instance
                        .invoke_export("main", &[], &mut host)
                        .expect("runs")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, runtime_overhead);
criterion_main!(benches);
