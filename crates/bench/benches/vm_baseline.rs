//! Baseline benchmarks for the substrates: interpreter throughput on
//! uninstrumented kernels, and codec (decode/encode/validate) throughput.
//! These calibrate the absolute numbers behind Table 5 and Figure 9.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wasabi_vm::{EmptyHost, Instance};
use wasabi_wasm::decode::decode;
use wasabi_wasm::encode::encode;
use wasabi_wasm::validate::validate;
use wasabi_workloads::synthetic::{synthetic_app, SyntheticConfig};
use wasabi_workloads::{compile, polybench};

fn vm_throughput(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("vm_run");
    group.sample_size(20);
    for name in ["gemm", "jacobi-2d", "floyd-warshall"] {
        let module = compile(&polybench::by_name(name, 12).expect("known kernel"));
        group.bench_with_input(BenchmarkId::from_parameter(name), &module, |b, m| {
            b.iter(|| {
                let mut host = EmptyHost;
                let mut instance =
                    Instance::instantiate(m.clone(), &mut host).expect("instantiates");
                instance
                    .invoke_export("main", &[], &mut host)
                    .expect("runs")
            });
        });
    }
    group.finish();
}

fn codec_throughput(criterion: &mut Criterion) {
    let module = synthetic_app(&SyntheticConfig::pspdfkit_like().with_target_bytes(500_000));
    let bytes = encode(&module);

    let mut group = criterion.benchmark_group("codec");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("decode", |b| {
        b.iter(|| decode(&bytes).expect("decodes"));
    });
    group.bench_function("encode", |b| {
        b.iter(|| encode(&module));
    });
    group.bench_function("validate", |b| {
        b.iter(|| validate(&module).expect("valid"));
    });
    group.finish();
}

criterion_group!(benches, vm_throughput, codec_throughput);
criterion_main!(benches);
