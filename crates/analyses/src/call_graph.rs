//! Dynamic call graph analysis (paper Table 4, 18 LoC in JS): "creates a
//! dynamic call graph, including indirect calls and calls between functions
//! that are neither imported nor exported. Call graphs are the basis of
//! various other analyses, e.g., to find dynamically dead code or to
//! reverse-engineer malware."

use std::collections::{BTreeMap, BTreeSet};

use wasabi::event::{AnalysisCtx, CallEvt};
use wasabi::hooks::{Analysis, Hook, HookSet};
use wasabi::report::{JsonValue, Report};
use wasabi::ModuleInfo;

/// A directed call edge `caller -> callee` (original function indices).
pub type Edge = (u32, u32);

/// Builds a dynamic call graph from `call_pre` events.
#[derive(Debug, Default, Clone)]
pub struct CallGraph {
    /// Edge -> number of calls over this edge.
    edges: BTreeMap<Edge, u64>,
    /// Calls through the table (subset of `edges` made indirectly).
    indirect: BTreeSet<Edge>,
}

impl CallGraph {
    /// An empty call graph.
    pub fn new() -> Self {
        CallGraph::default()
    }

    /// All edges with their call counts.
    pub fn edges(&self) -> &BTreeMap<Edge, u64> {
        &self.edges
    }

    /// `true` if `edge` was (also) taken via `call_indirect`.
    pub fn is_indirect(&self, edge: Edge) -> bool {
        self.indirect.contains(&edge)
    }

    /// Functions that appear as callees.
    pub fn called_functions(&self) -> BTreeSet<u32> {
        self.edges.keys().map(|&(_, callee)| callee).collect()
    }

    /// Functions in `info` that were never called and are not exported —
    /// candidates for dynamically dead code (paper's motivating use case).
    pub fn dynamically_dead(&self, info: &ModuleInfo, entry_points: &[u32]) -> Vec<u32> {
        let called = self.called_functions();
        (0..info.functions.len() as u32)
            .filter(|idx| {
                !called.contains(idx)
                    && !entry_points.contains(idx)
                    && info.functions[*idx as usize].import.is_none()
            })
            .collect()
    }

    /// Render the graph in Graphviz dot format, with display names.
    pub fn to_dot(&self, info: &ModuleInfo) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph calls {\n");
        for (&(caller, callee), count) in &self.edges {
            let style = if self.is_indirect((caller, callee)) {
                ", style=dashed"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\" [label=\"{count}\"{style}];",
                info.functions
                    .get(caller as usize)
                    .map_or_else(|| format!("func#{caller}"), |f| f.display_name(caller)),
                info.functions
                    .get(callee as usize)
                    .map_or_else(|| format!("func#{callee}"), |f| f.display_name(callee)),
            );
        }
        out.push_str("}\n");
        out
    }
}

impl Analysis for CallGraph {
    fn name(&self) -> &str {
        "call_graph"
    }

    fn hooks(&self) -> HookSet {
        HookSet::of(&[Hook::CallPre])
    }

    fn report(&self) -> Report {
        Report::new(
            self.name(),
            JsonValue::object([(
                "edges",
                JsonValue::array(self.edges.iter().map(|(&(caller, callee), &count)| {
                    JsonValue::object([
                        ("caller", caller.into()),
                        ("callee", callee.into()),
                        ("count", count.into()),
                        ("indirect", self.is_indirect((caller, callee)).into()),
                    ])
                })),
            )]),
        )
    }

    fn call_pre(&mut self, ctx: &AnalysisCtx, evt: &CallEvt<'_>) {
        let edge = (ctx.loc.func, evt.func);
        *self.edges.entry(edge).or_insert(0) += 1;
        if evt.is_indirect() {
            self.indirect.insert(edge);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi::AnalysisSession;
    use wasabi_wasm::builder::ModuleBuilder;
    use wasabi_wasm::types::ValType;

    fn call_module() -> wasabi_wasm::Module {
        let mut builder = ModuleBuilder::new();
        let leaf = builder.function("", &[], &[ValType::I32], |f| {
            f.i32_const(1);
        });
        let via_table = builder.function("", &[], &[ValType::I32], |f| {
            f.i32_const(2);
        });
        let unused = builder.function("", &[], &[], |_| {});
        let _ = unused;
        builder.table(1);
        builder.elements(0, vec![via_table]);
        builder.function("main", &[], &[ValType::I32], |f| {
            f.call(leaf).drop_();
            f.call(leaf).drop_();
            f.i32_const(0).call_indirect(&[], &[ValType::I32]);
        });
        builder.finish()
    }

    #[test]
    fn records_direct_and_indirect_edges() {
        let module = call_module();
        let mut graph = CallGraph::new();
        let session = AnalysisSession::for_analysis(&module, &graph).unwrap();
        session.run(&mut graph, "main", &[]).unwrap();

        // main = function 3, leaf = 0, via_table = 1.
        assert_eq!(graph.edges()[&(3, 0)], 2);
        assert_eq!(graph.edges()[&(3, 1)], 1);
        assert!(graph.is_indirect((3, 1)));
        assert!(!graph.is_indirect((3, 0)));
    }

    #[test]
    fn finds_dynamically_dead_code() {
        let module = call_module();
        let mut graph = CallGraph::new();
        let session = AnalysisSession::for_analysis(&module, &graph).unwrap();
        session.run(&mut graph, "main", &[]).unwrap();
        // Function 2 (unused) is never called; main (3) is the entry point.
        assert_eq!(graph.dynamically_dead(session.info(), &[3]), vec![2]);
    }

    #[test]
    fn dot_output_contains_edges() {
        let module = call_module();
        let mut graph = CallGraph::new();
        let session = AnalysisSession::for_analysis(&module, &graph).unwrap();
        session.run(&mut graph, "main", &[]).unwrap();
        let dot = graph.to_dot(session.info());
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("\"main\""));
        assert!(
            dot.contains("style=dashed"),
            "indirect edge rendered dashed"
        );
    }

    #[test]
    fn uses_only_call_pre() {
        assert_eq!(CallGraph::new().hooks(), HookSet::of(&[Hook::CallPre]));
    }
}
