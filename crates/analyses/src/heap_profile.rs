//! Heap profiling — an *extension analysis* beyond the paper's Table 4
//! (its conclusion anticipates Wasabi as "a solid basis for various
//! analyses to be implemented in the future").
//!
//! Tracks linear-memory growth and the write working set: peak memory in
//! pages, `memory.grow` events with their locations, and which 64 KiB
//! pages were actually written — useful for right-sizing initial memory
//! and spotting leak-like monotone growth.

use std::collections::{BTreeMap, BTreeSet};

use wasabi::event::{AnalysisCtx, MemGrowEvt, MemSizeEvt, StoreEvt};
use wasabi::hooks::{Analysis, Hook, HookSet};
use wasabi::location::Location;
use wasabi::report::{JsonValue, Report};
use wasabi_wasm::types::PAGE_SIZE;

/// One observed `memory.grow`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrowEvent {
    pub location: Location,
    pub delta_pages: u32,
    /// Size before the grow, or -1 if the grow failed.
    pub previous_pages: i32,
}

/// Profiles memory growth and the written working set.
#[derive(Debug, Default, Clone)]
pub struct HeapProfile {
    grows: Vec<GrowEvent>,
    peak_pages: u32,
    bytes_written: u64,
    written_pages: BTreeSet<u32>,
    writes_per_page: BTreeMap<u32, u64>,
}

impl HeapProfile {
    /// An empty profile.
    pub fn new() -> Self {
        HeapProfile::default()
    }

    /// All observed `memory.grow` events, in order.
    pub fn grows(&self) -> &[GrowEvent] {
        &self.grows
    }

    /// The largest memory size observed (pages).
    pub fn peak_pages(&self) -> u32 {
        self.peak_pages
    }

    /// Total bytes written by store instructions.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Pages that received at least one write.
    pub fn written_pages(&self) -> &BTreeSet<u32> {
        &self.written_pages
    }

    /// Writes per page, for hot-page identification.
    pub fn writes_per_page(&self) -> &BTreeMap<u32, u64> {
        &self.writes_per_page
    }

    /// Fraction of the peak memory that was ever written — a low value
    /// suggests over-allocation.
    pub fn write_utilization(&self) -> f64 {
        if self.peak_pages == 0 {
            return 0.0;
        }
        self.written_pages.len() as f64 / f64::from(self.peak_pages)
    }
}

impl Analysis for HeapProfile {
    fn name(&self) -> &str {
        "heap_profile"
    }

    fn hooks(&self) -> HookSet {
        HookSet::of(&[Hook::MemorySize, Hook::MemoryGrow, Hook::Store])
    }

    fn report(&self) -> Report {
        Report::new(
            self.name(),
            JsonValue::object([
                ("peak_pages", self.peak_pages.into()),
                ("bytes_written", self.bytes_written.into()),
                ("written_pages", self.written_pages.len().into()),
                ("write_utilization", self.write_utilization().into()),
                (
                    "grows",
                    JsonValue::array(self.grows.iter().map(|grow| {
                        JsonValue::object([
                            ("location", grow.location.into()),
                            ("delta_pages", grow.delta_pages.into()),
                            ("previous_pages", grow.previous_pages.into()),
                        ])
                    })),
                ),
            ]),
        )
    }

    fn memory_size(&mut self, _: &AnalysisCtx, evt: &MemSizeEvt) {
        self.peak_pages = self.peak_pages.max(evt.pages);
    }

    fn memory_grow(&mut self, ctx: &AnalysisCtx, evt: &MemGrowEvt) {
        self.grows.push(GrowEvent {
            location: ctx.loc,
            delta_pages: evt.delta,
            previous_pages: evt.previous_pages,
        });
        if evt.previous_pages >= 0 {
            self.peak_pages = self.peak_pages.max(evt.previous_pages as u32 + evt.delta);
        }
    }

    fn store(&mut self, _: &AnalysisCtx, evt: &StoreEvt) {
        let bytes = u64::from(evt.op.access_bytes());
        self.bytes_written += bytes;
        let first_page = (evt.memarg.effective_addr() / u64::from(PAGE_SIZE)) as u32;
        let last_page = ((evt.memarg.effective_addr() + bytes - 1) / u64::from(PAGE_SIZE)) as u32;
        for page in first_page..=last_page {
            self.written_pages.insert(page);
            *self.writes_per_page.entry(page).or_insert(0) += 1;
            self.peak_pages = self.peak_pages.max(page + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi::AnalysisSession;
    use wasabi_wasm::builder::ModuleBuilder;
    use wasabi_wasm::instr::StoreOp;

    fn growing_module() -> wasabi_wasm::Module {
        let mut builder = ModuleBuilder::new();
        builder.memory(1, None);
        builder.function("run", &[], &[], |f| {
            // Write into page 0, grow twice, write into page 2.
            f.i32_const(100).i32_const(7).store(StoreOp::I32Store, 0);
            f.i32_const(1).memory_grow().drop_();
            f.i32_const(1).memory_grow().drop_();
            f.i32_const(2 * 65536)
                .i32_const(9)
                .store(StoreOp::I32Store, 0);
            f.memory_size().drop_();
        });
        builder.finish()
    }

    fn profiled() -> HeapProfile {
        let mut profile = HeapProfile::new();
        let session = AnalysisSession::for_analysis(&growing_module(), &profile).unwrap();
        session.run(&mut profile, "run", &[]).unwrap();
        profile
    }

    #[test]
    fn tracks_grow_events_and_peak() {
        let profile = profiled();
        assert_eq!(profile.grows().len(), 2);
        assert_eq!(profile.grows()[0].previous_pages, 1);
        assert_eq!(profile.grows()[1].previous_pages, 2);
        assert_eq!(profile.peak_pages(), 3);
    }

    #[test]
    fn tracks_written_working_set() {
        let profile = profiled();
        assert_eq!(profile.bytes_written(), 8);
        assert!(profile.written_pages().contains(&0));
        assert!(profile.written_pages().contains(&2));
        assert!(!profile.written_pages().contains(&1));
        // 2 of 3 peak pages written.
        assert!((profile.write_utilization() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn straddling_store_touches_both_pages() {
        let mut builder = ModuleBuilder::new();
        builder.memory(2, None);
        builder.function("run", &[], &[], |f| {
            f.i32_const(65532)
                .i64_const(-1)
                .store(wasabi_wasm::StoreOp::I64Store, 0);
        });
        let mut profile = HeapProfile::new();
        let session = AnalysisSession::for_analysis(&builder.finish(), &profile).unwrap();
        session.run(&mut profile, "run", &[]).unwrap();
        assert!(profile.written_pages().contains(&0));
        assert!(profile.written_pages().contains(&1));
    }

    #[test]
    fn uses_three_hooks() {
        assert_eq!(
            HeapProfile::new().hooks(),
            HookSet::of(&[Hook::MemorySize, Hook::MemoryGrow, Hook::Store])
        );
    }
}
