//! Instruction mix analysis (paper Table 4, 42 LoC in JS): counts how often
//! each kind of instruction is executed, "which can serve as a basis for
//! performance and security analyses".

use std::collections::BTreeMap;

use wasabi::event::{
    AnalysisCtx, BinaryEvt, BlockEvt, BranchEvt, BranchTableEvt, CallEvt, GlobalEvt, IfEvt,
    LoadEvt, LocalEvt, MemGrowEvt, MemSizeEvt, ReturnEvt, SelectEvt, StoreEvt, UnaryEvt, ValEvt,
};
use wasabi::hooks::{Analysis, BlockKind};
use wasabi::report::{JsonValue, Report};
use wasabi_wasm::instr::Val;

/// Counts executed instructions by mnemonic. Uses all hooks.
#[derive(Debug, Default, Clone)]
pub struct InstructionMix {
    counts: BTreeMap<&'static str, u64>,
}

impl InstructionMix {
    /// An empty profile.
    pub fn new() -> Self {
        InstructionMix::default()
    }

    fn bump(&mut self, name: &'static str) {
        *self.counts.entry(name).or_insert(0) += 1;
    }

    /// Executed count per instruction mnemonic, alphabetically ordered.
    pub fn counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.counts
    }

    /// Total number of instructions observed.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// The `n` most frequent instructions.
    pub fn top(&self, n: usize) -> Vec<(&'static str, u64)> {
        let mut entries: Vec<(&'static str, u64)> =
            self.counts.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        entries.truncate(n);
        entries
    }
}

impl Analysis for InstructionMix {
    // Default `hooks()` = all hooks: this analysis observes everything.

    fn name(&self) -> &str {
        "instruction_mix"
    }

    fn report(&self) -> Report {
        Report::new(
            self.name(),
            JsonValue::object([
                ("total", self.total().into()),
                (
                    "counts",
                    JsonValue::object(
                        self.counts
                            .iter()
                            .map(|(&name, &count)| (name, JsonValue::from(count))),
                    ),
                ),
            ]),
        )
    }

    fn nop(&mut self, _: &AnalysisCtx) {
        self.bump("nop");
    }
    fn unreachable(&mut self, _: &AnalysisCtx) {
        self.bump("unreachable");
    }
    fn if_(&mut self, _: &AnalysisCtx, _: &IfEvt) {
        self.bump("if");
    }
    fn br(&mut self, _: &AnalysisCtx, _: &BranchEvt) {
        self.bump("br");
    }
    fn br_if(&mut self, _: &AnalysisCtx, _: &BranchEvt) {
        self.bump("br_if");
    }
    fn br_table(&mut self, _: &AnalysisCtx, _: &BranchTableEvt<'_>) {
        self.bump("br_table");
    }
    fn begin(&mut self, _: &AnalysisCtx, evt: &BlockEvt) {
        match evt.kind {
            BlockKind::Block => self.bump("block"),
            BlockKind::Loop => self.bump("loop"),
            _ => {}
        }
    }
    fn memory_size(&mut self, _: &AnalysisCtx, _: &MemSizeEvt) {
        self.bump("memory.size");
    }
    fn memory_grow(&mut self, _: &AnalysisCtx, _: &MemGrowEvt) {
        self.bump("memory.grow");
    }
    fn const_(&mut self, _: &AnalysisCtx, evt: &ValEvt) {
        self.bump(match evt.value {
            Val::I32(_) => "i32.const",
            Val::I64(_) => "i64.const",
            Val::F32(_) => "f32.const",
            Val::F64(_) => "f64.const",
        });
    }
    fn drop_(&mut self, _: &AnalysisCtx, _: &ValEvt) {
        self.bump("drop");
    }
    fn select(&mut self, _: &AnalysisCtx, _: &SelectEvt) {
        self.bump("select");
    }
    fn unary(&mut self, _: &AnalysisCtx, evt: &UnaryEvt) {
        self.bump(evt.op.name());
    }
    fn binary(&mut self, _: &AnalysisCtx, evt: &BinaryEvt) {
        self.bump(evt.op.name());
    }
    fn load(&mut self, _: &AnalysisCtx, evt: &LoadEvt) {
        self.bump(evt.op.name());
    }
    fn store(&mut self, _: &AnalysisCtx, evt: &StoreEvt) {
        self.bump(evt.op.name());
    }
    fn local(&mut self, _: &AnalysisCtx, evt: &LocalEvt) {
        self.bump(evt.op.name());
    }
    fn global(&mut self, _: &AnalysisCtx, evt: &GlobalEvt) {
        self.bump(evt.op.name());
    }
    fn return_(&mut self, _: &AnalysisCtx, _: &ReturnEvt<'_>) {
        self.bump("return");
    }
    fn call_pre(&mut self, _: &AnalysisCtx, evt: &CallEvt<'_>) {
        self.bump(if evt.is_indirect() {
            "call_indirect"
        } else {
            "call"
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi::AnalysisSession;
    use wasabi_wasm::builder::ModuleBuilder;
    use wasabi_wasm::types::ValType;

    #[test]
    fn counts_executed_instructions() {
        let mut builder = ModuleBuilder::new();
        builder.function("f", &[], &[ValType::I32], |f| {
            f.i32_const(1).i32_const(2).i32_add();
        });
        let mut mix = InstructionMix::new();
        let session = AnalysisSession::for_analysis(&builder.finish(), &mix).unwrap();
        session.run(&mut mix, "f", &[]).unwrap();
        assert_eq!(mix.counts()["i32.const"], 2);
        assert_eq!(mix.counts()["i32.add"], 1);
        assert_eq!(mix.total(), 3);
    }

    #[test]
    fn loop_iterations_multiply_counts() {
        let mut builder = ModuleBuilder::new();
        builder.function("f", &[], &[], |f| {
            let i = f.local(ValType::I32);
            f.block(None).loop_(None);
            f.get_local(i)
                .i32_const(5)
                .binary(wasabi_wasm::BinaryOp::I32GeS)
                .br_if(1);
            f.get_local(i).i32_const(1).i32_add().set_local(i);
            f.br(0).end().end();
        });
        let mut mix = InstructionMix::new();
        let session = AnalysisSession::for_analysis(&builder.finish(), &mix).unwrap();
        session.run(&mut mix, "f", &[]).unwrap();
        assert_eq!(mix.counts()["loop"], 6); // 5 full + 1 exiting iteration
        assert_eq!(mix.counts()["i32.add"], 5);
        assert_eq!(mix.counts()["br"], 5);
        assert_eq!(mix.counts()["br_if"], 6);
    }

    #[test]
    fn top_orders_by_count() {
        let mut mix = InstructionMix::new();
        for _ in 0..3 {
            mix.bump("i32.add");
        }
        mix.bump("i32.mul");
        let top = mix.top(1);
        assert_eq!(top, vec![("i32.add", 3)]);
    }
}
