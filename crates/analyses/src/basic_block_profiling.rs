//! Basic block profiling (paper Table 4, 9 LoC in JS): "A classic dynamic
//! analysis that counts how often each function, block, and loop is
//! executed, which is useful, e.g., for finding 'hot' code."

use std::collections::HashMap;

use wasabi::event::{AnalysisCtx, BlockEvt};
use wasabi::hooks::{Analysis, BlockKind, Hook, HookSet};
use wasabi::location::Location;
use wasabi::report::{JsonValue, Report};

/// Counts entries of every function, block, loop, if, and else body.
#[derive(Debug, Default, Clone)]
pub struct BasicBlockProfiling {
    counts: HashMap<(Location, BlockKind), u64>,
}

impl BasicBlockProfiling {
    /// An empty profile.
    pub fn new() -> Self {
        BasicBlockProfiling::default()
    }

    /// Entry count per block, keyed by the block's begin location.
    pub fn counts(&self) -> &HashMap<(Location, BlockKind), u64> {
        &self.counts
    }

    /// The hottest `n` blocks, by entry count (descending).
    pub fn hottest(&self, n: usize) -> Vec<(Location, BlockKind, u64)> {
        let mut entries: Vec<(Location, BlockKind, u64)> = self
            .counts
            .iter()
            .map(|(&(loc, kind), &count)| (loc, kind, count))
            .collect();
        entries.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        entries.truncate(n);
        entries
    }

    /// How often the function `func` was entered.
    pub fn function_entries(&self, func: u32) -> u64 {
        self.counts
            .get(&(Location::function_entry(func), BlockKind::Function))
            .copied()
            .unwrap_or(0)
    }
}

impl Analysis for BasicBlockProfiling {
    fn name(&self) -> &str {
        "basic_block_profiling"
    }

    fn hooks(&self) -> HookSet {
        HookSet::of(&[Hook::Begin])
    }

    fn report(&self) -> Report {
        let mut blocks: Vec<(&(Location, BlockKind), &u64)> = self.counts.iter().collect();
        blocks.sort_by(|a, b| {
            b.1.cmp(a.1)
                .then(a.0 .0.cmp(&b.0 .0))
                .then(a.0 .1.name().cmp(b.0 .1.name()))
        });
        Report::new(
            self.name(),
            JsonValue::object([
                ("blocks", self.counts.len().into()),
                (
                    "entries",
                    JsonValue::array(blocks.into_iter().map(|(&(loc, kind), &count)| {
                        JsonValue::object([
                            ("location", loc.into()),
                            ("kind", kind.name().into()),
                            ("count", count.into()),
                        ])
                    })),
                ),
            ]),
        )
    }

    fn begin(&mut self, ctx: &AnalysisCtx, evt: &BlockEvt) {
        *self.counts.entry((ctx.loc, evt.kind)).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi::AnalysisSession;
    use wasabi_wasm::builder::ModuleBuilder;
    use wasabi_wasm::instr::Val;
    use wasabi_wasm::types::ValType;

    fn profiled_module() -> wasabi_wasm::Module {
        let mut builder = ModuleBuilder::new();
        let helper = builder.function("", &[], &[], |f| {
            f.nop();
        });
        builder.function("main", &[ValType::I32], &[], |f| {
            let i = f.local(ValType::I32);
            f.block(None).loop_(None);
            f.get_local(i)
                .get_local(0u32)
                .binary(wasabi_wasm::BinaryOp::I32GeS)
                .br_if(1);
            f.call(helper);
            f.get_local(i).i32_const(1).i32_add().set_local(i);
            f.br(0).end().end();
        });
        builder.finish()
    }

    #[test]
    fn counts_function_and_loop_entries() {
        let mut profile = BasicBlockProfiling::new();
        let session = AnalysisSession::for_analysis(&profiled_module(), &profile).unwrap();
        session.run(&mut profile, "main", &[Val::I32(4)]).unwrap();

        assert_eq!(profile.function_entries(1), 1); // main
        assert_eq!(profile.function_entries(0), 4); // helper, called in loop
                                                    // The loop body is entered 5 times (4 iterations + exit check).
        let loops: u64 = profile
            .counts()
            .iter()
            .filter(|((_, kind), _)| *kind == BlockKind::Loop)
            .map(|(_, &c)| c)
            .sum();
        assert_eq!(loops, 5);
    }

    #[test]
    fn hottest_block_is_the_loop() {
        let mut profile = BasicBlockProfiling::new();
        let session = AnalysisSession::for_analysis(&profiled_module(), &profile).unwrap();
        session.run(&mut profile, "main", &[Val::I32(10)]).unwrap();
        let hottest = profile.hottest(1);
        assert_eq!(hottest.len(), 1);
        assert_eq!(hottest[0].1, BlockKind::Loop);
        assert_eq!(hottest[0].2, 11);
    }

    #[test]
    fn uses_only_begin_hook() {
        let profile = BasicBlockProfiling::new();
        assert_eq!(profile.hooks(), HookSet::of(&[Hook::Begin]));
    }
}
