//! Instruction coverage and branch coverage (paper Table 4, 11 and 14 LoC
//! in JS): "record for each instruction and branch, respectively, whether
//! it is executed, which is useful to assess the quality of tests."
//!
//! The branch coverage analysis is the paper's Figure 7, ported to the Rust
//! hook API: it observes `if`, `br_if`, `br_table`, and `select`, recording
//! which directions/entries were taken at each location.

use std::collections::{BTreeMap, BTreeSet};

use wasabi::event::{
    AnalysisCtx, BinaryEvt, BlockEvt, BranchEvt, BranchTableEvt, CallEvt, EndEvt, GlobalEvt, IfEvt,
    LoadEvt, LocalEvt, MemGrowEvt, MemSizeEvt, ReturnEvt, SelectEvt, StoreEvt, UnaryEvt, ValEvt,
};
use wasabi::hooks::{Analysis, Hook, HookSet};
use wasabi::location::Location;
use wasabi::report::{JsonValue, Report};
use wasabi::ModuleInfo;

/// Records which instructions executed at least once. Uses all hooks.
#[derive(Debug, Default, Clone)]
pub struct InstructionCoverage {
    covered: BTreeSet<Location>,
}

impl InstructionCoverage {
    /// Empty coverage.
    pub fn new() -> Self {
        InstructionCoverage::default()
    }

    fn mark(&mut self, loc: Location) {
        if loc.instr >= 0 {
            self.covered.insert(loc);
        }
    }

    /// All covered instruction locations.
    pub fn covered(&self) -> &BTreeSet<Location> {
        &self.covered
    }

    /// Covered instructions in function `func`.
    pub fn covered_in(&self, func: u32) -> usize {
        self.covered.iter().filter(|l| l.func == func).count()
    }

    /// Coverage ratio (covered / total instructions) against the static
    /// module info. Functions never entered count with zero coverage.
    pub fn ratio(&self, info: &ModuleInfo) -> f64 {
        let total: u64 = info
            .functions
            .iter()
            .map(|f| u64::from(f.instr_count))
            .sum();
        if total == 0 {
            return 1.0;
        }
        self.covered.len() as f64 / total as f64
    }
}

impl Analysis for InstructionCoverage {
    // All hooks: every instruction kind must be observable.

    fn name(&self) -> &str {
        "instruction_coverage"
    }

    fn report(&self) -> Report {
        let mut per_function: BTreeMap<u32, u64> = BTreeMap::new();
        for loc in &self.covered {
            *per_function.entry(loc.func).or_insert(0) += 1;
        }
        Report::new(
            self.name(),
            JsonValue::object([
                ("covered_instructions", self.covered.len().into()),
                (
                    "per_function",
                    JsonValue::object(
                        per_function
                            .into_iter()
                            .map(|(func, count)| (func.to_string(), JsonValue::from(count))),
                    ),
                ),
            ]),
        )
    }

    fn nop(&mut self, ctx: &AnalysisCtx) {
        self.mark(ctx.loc);
    }
    fn unreachable(&mut self, ctx: &AnalysisCtx) {
        self.mark(ctx.loc);
    }
    fn if_(&mut self, ctx: &AnalysisCtx, _: &IfEvt) {
        self.mark(ctx.loc);
    }
    fn br(&mut self, ctx: &AnalysisCtx, _: &BranchEvt) {
        self.mark(ctx.loc);
    }
    fn br_if(&mut self, ctx: &AnalysisCtx, _: &BranchEvt) {
        self.mark(ctx.loc);
    }
    fn br_table(&mut self, ctx: &AnalysisCtx, _: &BranchTableEvt<'_>) {
        self.mark(ctx.loc);
    }
    fn begin(&mut self, ctx: &AnalysisCtx, _: &BlockEvt) {
        self.mark(ctx.loc);
    }
    fn end(&mut self, ctx: &AnalysisCtx, _: &EndEvt) {
        self.mark(ctx.loc);
    }
    fn memory_size(&mut self, ctx: &AnalysisCtx, _: &MemSizeEvt) {
        self.mark(ctx.loc);
    }
    fn memory_grow(&mut self, ctx: &AnalysisCtx, _: &MemGrowEvt) {
        self.mark(ctx.loc);
    }
    fn const_(&mut self, ctx: &AnalysisCtx, _: &ValEvt) {
        self.mark(ctx.loc);
    }
    fn drop_(&mut self, ctx: &AnalysisCtx, _: &ValEvt) {
        self.mark(ctx.loc);
    }
    fn select(&mut self, ctx: &AnalysisCtx, _: &SelectEvt) {
        self.mark(ctx.loc);
    }
    fn unary(&mut self, ctx: &AnalysisCtx, _: &UnaryEvt) {
        self.mark(ctx.loc);
    }
    fn binary(&mut self, ctx: &AnalysisCtx, _: &BinaryEvt) {
        self.mark(ctx.loc);
    }
    fn load(&mut self, ctx: &AnalysisCtx, _: &LoadEvt) {
        self.mark(ctx.loc);
    }
    fn store(&mut self, ctx: &AnalysisCtx, _: &StoreEvt) {
        self.mark(ctx.loc);
    }
    fn local(&mut self, ctx: &AnalysisCtx, _: &LocalEvt) {
        self.mark(ctx.loc);
    }
    fn global(&mut self, ctx: &AnalysisCtx, _: &GlobalEvt) {
        self.mark(ctx.loc);
    }
    fn return_(&mut self, ctx: &AnalysisCtx, _: &ReturnEvt<'_>) {
        self.mark(ctx.loc);
    }
    fn call_pre(&mut self, ctx: &AnalysisCtx, _: &CallEvt<'_>) {
        self.mark(ctx.loc);
    }
}

/// A direction/entry taken at a branching instruction.
pub type Branch = u32;

/// Branch coverage (paper Fig. 7): which outcomes of each conditional
/// construct were exercised. Conditions record 0/1; `br_table` records the
/// entry index.
#[derive(Debug, Default, Clone)]
pub struct BranchCoverage {
    branches: BTreeMap<Location, BTreeSet<Branch>>,
}

impl BranchCoverage {
    /// Empty coverage.
    pub fn new() -> Self {
        BranchCoverage::default()
    }

    fn add_branch(&mut self, loc: Location, branch: Branch) {
        self.branches.entry(loc).or_default().insert(branch);
    }

    /// Outcomes seen per branching location.
    pub fn branches(&self) -> &BTreeMap<Location, BTreeSet<Branch>> {
        &self.branches
    }

    /// Locations where only one of the two condition outcomes was seen
    /// (partially covered two-way branches).
    pub fn partially_covered(&self) -> Vec<Location> {
        self.branches
            .iter()
            .filter(|(_, outcomes)| outcomes.len() == 1)
            .map(|(&loc, _)| loc)
            .collect()
    }
}

impl Analysis for BranchCoverage {
    fn name(&self) -> &str {
        "branch_coverage"
    }

    fn hooks(&self) -> HookSet {
        // Exactly the four hooks of the paper's Figure 7.
        HookSet::of(&[Hook::If, Hook::BrIf, Hook::BrTable, Hook::Select])
    }

    fn report(&self) -> Report {
        Report::new(
            self.name(),
            JsonValue::object([
                ("branches", self.branches.len().into()),
                ("partially_covered", self.partially_covered().len().into()),
                (
                    "outcomes",
                    JsonValue::array(self.branches.iter().map(|(&loc, outcomes)| {
                        JsonValue::object([
                            ("location", loc.into()),
                            ("seen", JsonValue::array(outcomes.iter().map(|&o| o.into()))),
                        ])
                    })),
                ),
            ]),
        )
    }

    fn if_(&mut self, ctx: &AnalysisCtx, evt: &IfEvt) {
        self.add_branch(ctx.loc, u32::from(evt.condition));
    }
    fn br_if(&mut self, ctx: &AnalysisCtx, evt: &BranchEvt) {
        self.add_branch(ctx.loc, u32::from(evt.taken()));
    }
    fn br_table(&mut self, ctx: &AnalysisCtx, evt: &BranchTableEvt<'_>) {
        self.add_branch(ctx.loc, evt.index);
    }
    fn select(&mut self, ctx: &AnalysisCtx, evt: &SelectEvt) {
        self.add_branch(ctx.loc, u32::from(evt.condition));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi::AnalysisSession;
    use wasabi_wasm::builder::ModuleBuilder;
    use wasabi_wasm::instr::Val;
    use wasabi_wasm::types::ValType;

    fn branchy_module() -> wasabi_wasm::Module {
        let mut builder = ModuleBuilder::new();
        builder.function("f", &[ValType::I32], &[ValType::I32], |f| {
            f.get_local(0u32).if_(None).nop().end(); // if at 1
            f.block(None).get_local(0u32).br_if(0).end(); // br_if at 7
            f.i32_const(1).i32_const(2).get_local(0u32).select(); // select at 13
        });
        builder.finish()
    }

    #[test]
    fn branch_coverage_records_directions() {
        let module = branchy_module();
        let mut cov = BranchCoverage::new();
        let session = AnalysisSession::for_analysis(&module, &cov).unwrap();
        session.run(&mut cov, "f", &[Val::I32(1)]).unwrap();
        // Three branching locations, each with one outcome so far.
        assert_eq!(cov.branches().len(), 3);
        assert_eq!(cov.partially_covered().len(), 3);

        session.run(&mut cov, "f", &[Val::I32(0)]).unwrap();
        assert!(cov.partially_covered().is_empty());
        assert!(cov.branches().values().all(|o| o.len() == 2));
    }

    #[test]
    fn instruction_coverage_grows_with_inputs() {
        let module = branchy_module();
        let mut cov = InstructionCoverage::new();
        let session = AnalysisSession::for_analysis(&module, &cov).unwrap();
        let info = session.info().clone();
        session.run(&mut cov, "f", &[Val::I32(0)]).unwrap();
        let first = cov.covered().len();
        assert!(cov.ratio(&info) > 0.0 && cov.ratio(&info) < 1.0);
        session.run(&mut cov, "f", &[Val::I32(1)]).unwrap();
        assert!(
            cov.covered().len() > first,
            "second input covers the if body"
        );
    }

    #[test]
    fn branch_coverage_uses_figure7_hooks() {
        assert_eq!(
            BranchCoverage::new().hooks(),
            HookSet::of(&[Hook::If, Hook::BrIf, Hook::BrTable, Hook::Select])
        );
    }
}
