//! Instruction coverage and branch coverage (paper Table 4, 11 and 14 LoC
//! in JS): "record for each instruction and branch, respectively, whether
//! it is executed, which is useful to assess the quality of tests."
//!
//! The branch coverage analysis is the paper's Figure 7, ported to the Rust
//! hook API: it observes `if`, `br_if`, `br_table`, and `select`, recording
//! which directions/entries were taken at each location.

use std::collections::{BTreeMap, BTreeSet};

use wasabi::hooks::{Analysis, BlockKind, Hook, HookSet, MemArg};
use wasabi::location::{BranchTarget, Location};
use wasabi::ModuleInfo;
use wasabi_wasm::instr::{BinaryOp, GlobalOp, LoadOp, LocalOp, StoreOp, UnaryOp, Val};

/// Records which instructions executed at least once. Uses all hooks.
#[derive(Debug, Default, Clone)]
pub struct InstructionCoverage {
    covered: BTreeSet<Location>,
}

impl InstructionCoverage {
    /// Empty coverage.
    pub fn new() -> Self {
        InstructionCoverage::default()
    }

    fn mark(&mut self, loc: Location) {
        if loc.instr >= 0 {
            self.covered.insert(loc);
        }
    }

    /// All covered instruction locations.
    pub fn covered(&self) -> &BTreeSet<Location> {
        &self.covered
    }

    /// Covered instructions in function `func`.
    pub fn covered_in(&self, func: u32) -> usize {
        self.covered.iter().filter(|l| l.func == func).count()
    }

    /// Coverage ratio (covered / total instructions) against the static
    /// module info. Functions never entered count with zero coverage.
    pub fn ratio(&self, info: &ModuleInfo) -> f64 {
        let total: u64 = info
            .functions
            .iter()
            .map(|f| u64::from(f.instr_count))
            .sum();
        if total == 0 {
            return 1.0;
        }
        self.covered.len() as f64 / total as f64
    }
}

impl Analysis for InstructionCoverage {
    // All hooks: every instruction kind must be observable.

    fn nop(&mut self, loc: Location) {
        self.mark(loc);
    }
    fn unreachable(&mut self, loc: Location) {
        self.mark(loc);
    }
    fn if_(&mut self, loc: Location, _: bool) {
        self.mark(loc);
    }
    fn br(&mut self, loc: Location, _: BranchTarget) {
        self.mark(loc);
    }
    fn br_if(&mut self, loc: Location, _: BranchTarget, _: bool) {
        self.mark(loc);
    }
    fn br_table(&mut self, loc: Location, _: &[BranchTarget], _: BranchTarget, _: u32) {
        self.mark(loc);
    }
    fn begin(&mut self, loc: Location, _: BlockKind) {
        self.mark(loc);
    }
    fn end(&mut self, loc: Location, _: BlockKind, _: Location) {
        self.mark(loc);
    }
    fn memory_size(&mut self, loc: Location, _: u32) {
        self.mark(loc);
    }
    fn memory_grow(&mut self, loc: Location, _: u32, _: i32) {
        self.mark(loc);
    }
    fn const_(&mut self, loc: Location, _: Val) {
        self.mark(loc);
    }
    fn drop_(&mut self, loc: Location, _: Val) {
        self.mark(loc);
    }
    fn select(&mut self, loc: Location, _: bool, _: Val, _: Val) {
        self.mark(loc);
    }
    fn unary(&mut self, loc: Location, _: UnaryOp, _: Val, _: Val) {
        self.mark(loc);
    }
    fn binary(&mut self, loc: Location, _: BinaryOp, _: Val, _: Val, _: Val) {
        self.mark(loc);
    }
    fn load(&mut self, loc: Location, _: LoadOp, _: MemArg, _: Val) {
        self.mark(loc);
    }
    fn store(&mut self, loc: Location, _: StoreOp, _: MemArg, _: Val) {
        self.mark(loc);
    }
    fn local(&mut self, loc: Location, _: LocalOp, _: u32, _: Val) {
        self.mark(loc);
    }
    fn global(&mut self, loc: Location, _: GlobalOp, _: u32, _: Val) {
        self.mark(loc);
    }
    fn return_(&mut self, loc: Location, _: &[Val]) {
        self.mark(loc);
    }
    fn call_pre(&mut self, loc: Location, _: u32, _: &[Val], _: Option<u32>) {
        self.mark(loc);
    }
}

/// A direction/entry taken at a branching instruction.
pub type Branch = u32;

/// Branch coverage (paper Fig. 7): which outcomes of each conditional
/// construct were exercised. Conditions record 0/1; `br_table` records the
/// entry index.
#[derive(Debug, Default, Clone)]
pub struct BranchCoverage {
    branches: BTreeMap<Location, BTreeSet<Branch>>,
}

impl BranchCoverage {
    /// Empty coverage.
    pub fn new() -> Self {
        BranchCoverage::default()
    }

    fn add_branch(&mut self, loc: Location, branch: Branch) {
        self.branches.entry(loc).or_default().insert(branch);
    }

    /// Outcomes seen per branching location.
    pub fn branches(&self) -> &BTreeMap<Location, BTreeSet<Branch>> {
        &self.branches
    }

    /// Locations where only one of the two condition outcomes was seen
    /// (partially covered two-way branches).
    pub fn partially_covered(&self) -> Vec<Location> {
        self.branches
            .iter()
            .filter(|(_, outcomes)| outcomes.len() == 1)
            .map(|(&loc, _)| loc)
            .collect()
    }
}

impl Analysis for BranchCoverage {
    fn hooks(&self) -> HookSet {
        // Exactly the four hooks of the paper's Figure 7.
        HookSet::of(&[Hook::If, Hook::BrIf, Hook::BrTable, Hook::Select])
    }

    fn if_(&mut self, loc: Location, condition: bool) {
        self.add_branch(loc, u32::from(condition));
    }
    fn br_if(&mut self, loc: Location, _: BranchTarget, condition: bool) {
        self.add_branch(loc, u32::from(condition));
    }
    fn br_table(&mut self, loc: Location, _: &[BranchTarget], _: BranchTarget, index: u32) {
        self.add_branch(loc, index);
    }
    fn select(&mut self, loc: Location, condition: bool, _: Val, _: Val) {
        self.add_branch(loc, u32::from(condition));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi::AnalysisSession;
    use wasabi_wasm::builder::ModuleBuilder;
    use wasabi_wasm::types::ValType;

    fn branchy_module() -> wasabi_wasm::Module {
        let mut builder = ModuleBuilder::new();
        builder.function("f", &[ValType::I32], &[ValType::I32], |f| {
            f.get_local(0u32).if_(None).nop().end(); // if at 1
            f.block(None).get_local(0u32).br_if(0).end(); // br_if at 7
            f.i32_const(1).i32_const(2).get_local(0u32).select(); // select at 13
        });
        builder.finish()
    }

    #[test]
    fn branch_coverage_records_directions() {
        let module = branchy_module();
        let mut cov = BranchCoverage::new();
        let session = AnalysisSession::for_analysis(&module, &cov).unwrap();
        session.run(&mut cov, "f", &[Val::I32(1)]).unwrap();
        // Three branching locations, each with one outcome so far.
        assert_eq!(cov.branches().len(), 3);
        assert_eq!(cov.partially_covered().len(), 3);

        session.run(&mut cov, "f", &[Val::I32(0)]).unwrap();
        assert!(cov.partially_covered().is_empty());
        assert!(cov.branches().values().all(|o| o.len() == 2));
    }

    #[test]
    fn instruction_coverage_grows_with_inputs() {
        let module = branchy_module();
        let mut cov = InstructionCoverage::new();
        let session = AnalysisSession::for_analysis(&module, &cov).unwrap();
        let info = session.info().clone();
        session.run(&mut cov, "f", &[Val::I32(0)]).unwrap();
        let first = cov.covered().len();
        assert!(cov.ratio(&info) > 0.0 && cov.ratio(&info) < 1.0);
        session.run(&mut cov, "f", &[Val::I32(1)]).unwrap();
        assert!(
            cov.covered().len() > first,
            "second input covers the if body"
        );
    }

    #[test]
    fn branch_coverage_uses_figure7_hooks() {
        assert_eq!(
            BranchCoverage::new().hooks(),
            HookSet::of(&[Hook::If, Hook::BrIf, Hook::BrTable, Hook::Select])
        );
    }
}
