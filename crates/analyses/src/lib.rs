//! # wasabi-analyses — the eight analyses of the Wasabi paper (Table 4)
//!
//! | Analysis | Hooks | Paper LoC (JS) |
//! |---|---|---|
//! | [`InstructionMix`] | all | 42 |
//! | [`BasicBlockProfiling`] | begin | 9 |
//! | [`InstructionCoverage`] | all | 11 |
//! | [`BranchCoverage`] | if, br_if, br_table, select | 14 |
//! | [`CallGraph`] | call_pre | 18 |
//! | [`TaintAnalysis`] | all | 208 |
//! | [`CryptominerDetection`] | binary | 10 |
//! | [`MemoryTracing`] | load, store | 11 |
//!
//! [`HeapProfile`] is a ninth, *extension* analysis beyond Table 4 (the
//! paper's conclusion anticipates further analyses on top of Wasabi).
//!
//! Each analysis implements [`wasabi::Analysis`] and declares its hook set,
//! driving Wasabi's selective instrumentation. The Table 4 reproduction
//! (`wasabi-bench`, bin `table4`) counts the real source lines of these
//! modules via [`source_inventory`].

pub mod basic_block_profiling;
pub mod call_graph;
pub mod coverage;
pub mod cryptominer;
pub mod heap_profile;
pub mod instruction_mix;
pub mod memory_tracing;
pub mod registry;
pub mod taint;

pub use basic_block_profiling::BasicBlockProfiling;
pub use call_graph::CallGraph;
pub use coverage::{BranchCoverage, InstructionCoverage};
pub use cryptominer::CryptominerDetection;
pub use heap_profile::HeapProfile;
pub use instruction_mix::InstructionMix;
pub use memory_tracing::MemoryTracing;
pub use taint::TaintAnalysis;

/// Source inventory for the Table 4 reproduction: analysis name, hook names
/// used, and the analysis' implementation source (embedded at compile time
/// so the benchmark harness can count real lines of code).
pub fn source_inventory() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        (
            "Instruction mix analysis",
            "all",
            include_str!("instruction_mix.rs"),
        ),
        (
            "Basic block profiling",
            "begin",
            include_str!("basic_block_profiling.rs"),
        ),
        ("Instruction coverage", "all", include_str!("coverage.rs")),
        (
            "Branch coverage",
            "if, br_if, br_table, select",
            include_str!("coverage.rs"),
        ),
        (
            "Call graph analysis",
            "call_pre",
            include_str!("call_graph.rs"),
        ),
        ("Dynamic taint analysis", "all", include_str!("taint.rs")),
        (
            "Cryptominer detection",
            "binary",
            include_str!("cryptominer.rs"),
        ),
        (
            "Memory access tracing",
            "load, store",
            include_str!("memory_tracing.rs"),
        ),
    ]
}

/// Count implementation lines of an embedded source: the `impl Analysis`
/// blocks plus supporting logic, excluding tests, comments and blanks. The
/// paper's Table 4 counts the whole JS analysis files the same way.
pub fn count_loc(source: &str) -> usize {
    let without_tests = source.split("#[cfg(test)]").next().unwrap_or(source);
    without_tests
        .lines()
        .map(str::trim)
        .filter(|line| !line.is_empty() && !line.starts_with("//") && !line.starts_with("//!"))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_has_eight_analyses() {
        assert_eq!(source_inventory().len(), 8);
    }

    #[test]
    fn loc_counts_are_plausible() {
        // The Rust implementations should be the same order of magnitude as
        // the paper's JS (Table 4: between 9 and 208 LoC). Rust is more
        // verbose, so allow a generous upper bound, but catch accidental
        // emptiness or unbounded growth.
        for (name, _, source) in source_inventory() {
            let loc = count_loc(source);
            assert!(loc >= 9, "{name}: implausibly small ({loc} LoC)");
            assert!(loc <= 600, "{name}: implausibly large ({loc} LoC)");
        }
    }

    #[test]
    fn count_loc_skips_comments_blanks_and_tests() {
        let source = "// comment\n\nfn a() {}\n#[cfg(test)]\nmod tests { fn b() {} }\n";
        assert_eq!(count_loc(source), 1);
    }
}
