//! Dynamic taint analysis (paper Table 4, 208 LoC in JS): "associates a
//! taint with every value and tracks how taints propagate through
//! instructions, function calls, and memory accesses, to detect illegal
//! flows from sources to sinks."
//!
//! This is the paper's show-case for *memory shadowing* (§2.3): the
//! analysis maintains shadow state — a shadow operand stack per frame,
//! shadow locals, shadow globals, and a shadow memory map — entirely on the
//! host side, so the program's own memory is never touched.

use std::collections::{BTreeSet, HashMap};

use wasabi::event::{
    AnalysisCtx, BinaryEvt, BlockEvt, BranchEvt, BranchTableEvt, CallEvt, CallPostEvt, EndEvt,
    GlobalEvt, IfEvt, LoadEvt, LocalEvt, MemGrowEvt, MemSizeEvt, ReturnEvt, SelectEvt, StoreEvt,
    UnaryEvt, ValEvt,
};
use wasabi::hooks::{Analysis, BlockKind};
use wasabi::location::Location;
use wasabi::report::{JsonValue, Report};
use wasabi_wasm::instr::{GlobalOp, LocalOp};

/// A taint label: clean, or tainted with the location that introduced it.
pub type Taint = Option<Location>;

fn join(a: Taint, b: Taint) -> Taint {
    a.or(b)
}

/// A detected source→sink flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flow {
    /// Location where the taint was introduced.
    pub source: Location,
    /// Location of the sink call.
    pub sink_call: Location,
    /// The sink function (original index).
    pub sink_func: u32,
    /// Which argument carried the taint (0-based).
    pub arg_index: usize,
}

#[derive(Debug, Default)]
struct Frame {
    stack: Vec<Taint>,
    locals: HashMap<u32, Taint>,
    /// Shadow-stack heights at each open block, for truncation on `end`.
    block_heights: Vec<usize>,
    returned: bool,
}

impl Frame {
    fn push(&mut self, taint: Taint) {
        self.stack.push(taint);
    }

    /// Saturating pop: desyncs (which cannot happen for programs with
    /// empty block result types, the case for all workloads in this repo)
    /// degrade to "clean" rather than panicking.
    fn pop(&mut self) -> Taint {
        self.stack.pop().flatten()
    }

    fn pop_n(&mut self, n: usize) -> Vec<Taint> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.pop());
        }
        out.reverse();
        out
    }
}

/// Shadow-state taint tracker with configurable source and sink functions.
///
/// - A call to a *source* function taints its results.
/// - A call to a *sink* function with a tainted argument records a [`Flow`].
/// - [`TaintAnalysis::taint_memory`] and [`TaintAnalysis::taint_global`]
///   introduce taint directly (e.g. to model tainted input buffers).
///
/// Uses all hooks (full instrumentation), like the paper's version.
///
/// Blocks with non-empty result types are not supported (shadow-stack
/// truncation at block ends would lose the carried value's taint); all
/// workloads in this repository use empty block types.
#[derive(Debug, Default)]
pub struct TaintAnalysis {
    sources: BTreeSet<u32>,
    sinks: BTreeSet<u32>,
    frames: Vec<Frame>,
    globals: HashMap<u32, Taint>,
    memory: HashMap<u64, Taint>,
    /// Argument taints of the most recent `call_pre`, consumed by the
    /// callee's `begin(function)` (absent for host/imported callees).
    pending_args: Option<Vec<Taint>>,
    /// Result taints flowing out of the most recently finished function.
    pending_results: Vec<Taint>,
    /// Stack of currently active callees (by `call_pre`/`call_post`).
    call_stack: Vec<u32>,
    flows: Vec<Flow>,
}

impl TaintAnalysis {
    /// A tracker where calls to `sources` taint their results and calls to
    /// `sinks` with tainted arguments are reported.
    pub fn new(sources: &[u32], sinks: &[u32]) -> Self {
        TaintAnalysis {
            sources: sources.iter().copied().collect(),
            sinks: sinks.iter().copied().collect(),
            ..TaintAnalysis::default()
        }
    }

    /// Taint a byte range of linear memory (e.g. an untrusted input
    /// buffer), attributing it to `source`.
    pub fn taint_memory(&mut self, addr: u32, len: u32, source: Location) {
        for offset in 0..u64::from(len) {
            self.memory.insert(u64::from(addr) + offset, Some(source));
        }
    }

    /// Taint a global variable.
    pub fn taint_global(&mut self, index: u32, source: Location) {
        self.globals.insert(index, Some(source));
    }

    /// All source→sink flows detected so far.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// Number of currently tainted shadow-memory bytes.
    pub fn tainted_memory_bytes(&self) -> usize {
        self.memory.values().filter(|t| t.is_some()).count()
    }

    fn frame(&mut self) -> &mut Frame {
        if self.frames.is_empty() {
            // Events can arrive before any begin(function) if the begin
            // hook of the entry function was filtered; stay robust.
            self.frames.push(Frame::default());
        }
        self.frames.last_mut().expect("just ensured")
    }
}

impl Analysis for TaintAnalysis {
    // Default hooks() = all hooks, like the paper's JS taint analysis.

    fn name(&self) -> &str {
        "taint_analysis"
    }

    fn report(&self) -> Report {
        Report::new(
            self.name(),
            JsonValue::object([
                ("tainted_memory_bytes", self.tainted_memory_bytes().into()),
                (
                    "flows",
                    JsonValue::array(self.flows.iter().map(|flow| {
                        JsonValue::object([
                            ("source", flow.source.into()),
                            ("sink_call", flow.sink_call.into()),
                            ("sink_func", flow.sink_func.into()),
                            ("arg_index", flow.arg_index.into()),
                        ])
                    })),
                ),
            ]),
        )
    }

    fn begin(&mut self, _: &AnalysisCtx, evt: &BlockEvt) {
        if evt.kind == BlockKind::Function {
            let mut frame = Frame::default();
            if let Some(args) = self.pending_args.take() {
                for (i, taint) in args.into_iter().enumerate() {
                    frame.locals.insert(i as u32, taint);
                }
            }
            self.frames.push(frame);
        } else {
            let height = self.frame().stack.len();
            self.frame().block_heights.push(height);
        }
    }

    fn end(&mut self, _: &AnalysisCtx, evt: &EndEvt) {
        if evt.kind == BlockKind::Function {
            let frame = self.frames.pop().unwrap_or_default();
            if !frame.returned {
                self.pending_results = frame.stack;
            }
        } else {
            let frame = self.frame();
            if let Some(height) = frame.block_heights.pop() {
                frame.stack.truncate(height);
            }
        }
    }

    fn const_(&mut self, _: &AnalysisCtx, _: &ValEvt) {
        self.frame().push(None);
    }

    fn drop_(&mut self, _: &AnalysisCtx, _: &ValEvt) {
        self.frame().pop();
    }

    fn select(&mut self, _: &AnalysisCtx, evt: &SelectEvt) {
        let condition = evt.condition;
        let frame = self.frame();
        let cond = frame.pop();
        let second = frame.pop();
        let first = frame.pop();
        let selected = if condition { first } else { second };
        frame.push(join(selected, cond));
    }

    fn unary(&mut self, _: &AnalysisCtx, _: &UnaryEvt) {
        let frame = self.frame();
        let input = frame.pop();
        frame.push(input);
    }

    fn binary(&mut self, _: &AnalysisCtx, _: &BinaryEvt) {
        let frame = self.frame();
        let second = frame.pop();
        let first = frame.pop();
        frame.push(join(first, second));
    }

    fn local(&mut self, _: &AnalysisCtx, evt: &LocalEvt) {
        let index = evt.index;
        let frame = self.frame();
        match evt.op {
            LocalOp::Get => {
                let taint = frame.locals.get(&index).copied().flatten();
                frame.push(taint);
            }
            LocalOp::Set => {
                let taint = frame.pop();
                frame.locals.insert(index, taint);
            }
            LocalOp::Tee => {
                let taint = frame.stack.last().copied().flatten();
                frame.locals.insert(index, taint);
            }
        }
    }

    fn global(&mut self, _: &AnalysisCtx, evt: &GlobalEvt) {
        match evt.op {
            GlobalOp::Get => {
                let taint = self.globals.get(&evt.index).copied().flatten();
                self.frame().push(taint);
            }
            GlobalOp::Set => {
                let taint = self.frame().pop();
                self.globals.insert(evt.index, taint);
            }
        }
    }

    fn load(&mut self, _: &AnalysisCtx, evt: &LoadEvt) {
        let addr_taint = self.frame().pop();
        let base = evt.memarg.effective_addr();
        let mut taint = addr_taint;
        for offset in 0..u64::from(evt.op.access_bytes()) {
            taint = join(taint, self.memory.get(&(base + offset)).copied().flatten());
        }
        self.frame().push(taint);
    }

    fn store(&mut self, _: &AnalysisCtx, evt: &StoreEvt) {
        let frame = self.frame();
        let value_taint = frame.pop();
        let _addr_taint = frame.pop();
        let base = evt.memarg.effective_addr();
        for offset in 0..u64::from(evt.op.access_bytes()) {
            self.memory.insert(base + offset, value_taint);
        }
    }

    fn memory_size(&mut self, _: &AnalysisCtx, _: &MemSizeEvt) {
        self.frame().push(None);
    }

    fn memory_grow(&mut self, _: &AnalysisCtx, _: &MemGrowEvt) {
        let frame = self.frame();
        frame.pop();
        frame.push(None);
    }

    fn if_(&mut self, _: &AnalysisCtx, _: &IfEvt) {
        self.frame().pop();
    }

    fn br_if(&mut self, _: &AnalysisCtx, _: &BranchEvt) {
        self.frame().pop();
    }

    fn br_table(&mut self, _: &AnalysisCtx, _: &BranchTableEvt<'_>) {
        self.frame().pop();
    }

    fn return_(&mut self, _: &AnalysisCtx, evt: &ReturnEvt<'_>) {
        let n = evt.results.len();
        let frame = self.frame();
        frame.returned = true;
        let taints = frame.pop_n(n);
        self.pending_results = taints;
    }

    fn call_pre(&mut self, ctx: &AnalysisCtx, evt: &CallEvt<'_>) {
        if evt.is_indirect() {
            // The runtime table index operand.
            self.frame().pop();
        }
        let arg_taints = {
            let n = evt.args.len();
            self.frame().pop_n(n)
        };

        if self.sinks.contains(&evt.func) {
            for (arg_index, taint) in arg_taints.iter().enumerate() {
                if let Some(source) = taint {
                    self.flows.push(Flow {
                        source: *source,
                        sink_call: ctx.loc,
                        sink_func: evt.func,
                        arg_index,
                    });
                }
            }
        }

        self.pending_args = Some(arg_taints);
        self.call_stack.push(evt.func);
    }

    fn call_post(&mut self, ctx: &AnalysisCtx, evt: &CallPostEvt<'_>) {
        let callee = self.call_stack.pop();
        // If the callee was a host function, its begin(function) never
        // consumed the pending arguments.
        self.pending_args = None;

        let taints: Vec<Taint> = if callee.is_some_and(|f| self.sources.contains(&f)) {
            vec![Some(ctx.loc); evt.results.len()]
        } else {
            let mut taints = std::mem::take(&mut self.pending_results);
            taints.resize(evt.results.len(), None);
            taints
        };
        self.pending_results = Vec::new();
        for taint in taints {
            self.frame().push(taint);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi::AnalysisSession;
    use wasabi_vm::host::HostFunctions;
    use wasabi_wasm::builder::ModuleBuilder;
    use wasabi_wasm::instr::{LoadOp, StoreOp, Val};
    use wasabi_wasm::types::ValType;

    /// source() -> i32 and sink(i32) are imports 0 and 1.
    fn flow_module(launder: bool) -> wasabi_wasm::Module {
        let mut builder = ModuleBuilder::new();
        builder.memory(1, None);
        let source = builder.import_function("env", "source", &[], &[ValType::I32]);
        let sink = builder.import_function("env", "sink", &[ValType::I32], &[]);
        builder.function("main", &[], &[], |f| {
            f.call(source);
            if launder {
                // Taint propagates through arithmetic, a local, and memory.
                let l = f.local(ValType::I32);
                f.i32_const(3).i32_add();
                f.set_local(l);
                f.i32_const(64).get_local(l).store(StoreOp::I32Store, 0);
                f.i32_const(64).load(LoadOp::I32Load, 0);
            }
            f.call(sink);
        });
        builder.finish()
    }

    fn host() -> HostFunctions {
        let mut host = HostFunctions::new();
        host.register("env", "source", |_, _| Ok(vec![Val::I32(1234)]));
        host.register("env", "sink", |_, _| Ok(vec![]));
        host
    }

    #[test]
    fn detects_direct_flow() {
        let module = flow_module(false);
        let mut taint = TaintAnalysis::new(&[0], &[1]);
        let session = AnalysisSession::for_analysis(&module, &taint).unwrap();
        session
            .run_with_host(&mut taint, &mut host(), "main", &[])
            .unwrap();
        assert_eq!(taint.flows().len(), 1);
        assert_eq!(taint.flows()[0].sink_func, 1);
        assert_eq!(taint.flows()[0].arg_index, 0);
    }

    #[test]
    fn detects_flow_through_arithmetic_locals_and_memory() {
        let module = flow_module(true);
        let mut taint = TaintAnalysis::new(&[0], &[1]);
        let session = AnalysisSession::for_analysis(&module, &taint).unwrap();
        session
            .run_with_host(&mut taint, &mut host(), "main", &[])
            .unwrap();
        assert_eq!(taint.flows().len(), 1, "taint survives laundering");
        assert!(taint.tainted_memory_bytes() >= 4);
    }

    #[test]
    fn no_flow_without_source() {
        let module = flow_module(true);
        // Nothing marked as a source: nothing can flow.
        let mut taint = TaintAnalysis::new(&[], &[1]);
        let session = AnalysisSession::for_analysis(&module, &taint).unwrap();
        session
            .run_with_host(&mut taint, &mut host(), "main", &[])
            .unwrap();
        assert!(taint.flows().is_empty());
    }

    #[test]
    fn taint_propagates_through_wasm_function_returns() {
        let mut builder = ModuleBuilder::new();
        let source = builder.import_function("env", "source", &[], &[ValType::I32]);
        let sink = builder.import_function("env", "sink", &[ValType::I32], &[]);
        // wrapper() { return source() * 2 }
        let wrapper = builder.function("", &[], &[ValType::I32], |f| {
            f.call(source).i32_const(2).i32_mul();
        });
        builder.function("main", &[], &[], |f| {
            f.call(wrapper).call(sink);
        });
        let module = builder.finish();

        let mut taint = TaintAnalysis::new(&[0], &[1]);
        let session = AnalysisSession::for_analysis(&module, &taint).unwrap();
        session
            .run_with_host(&mut taint, &mut host(), "main", &[])
            .unwrap();
        assert_eq!(taint.flows().len(), 1, "taint crosses function boundaries");
    }

    #[test]
    fn tainted_memory_range_flows_to_sink() {
        let mut builder = ModuleBuilder::new();
        builder.memory(1, None);
        let sink = builder.import_function("env", "sink", &[ValType::I32], &[]);
        builder.function("main", &[], &[], |f| {
            f.i32_const(100).load(LoadOp::I32Load, 0).call(sink);
        });
        let module = builder.finish();

        let mut taint = TaintAnalysis::new(&[], &[0]);
        let input_marker = Location::new(u32::MAX, -1);
        taint.taint_memory(100, 4, input_marker);
        let session = AnalysisSession::for_analysis(&module, &taint).unwrap();
        session
            .run_with_host(&mut taint, &mut host(), "main", &[])
            .unwrap();
        assert_eq!(taint.flows().len(), 1);
        assert_eq!(taint.flows()[0].source, input_marker);
    }

    #[test]
    fn clean_values_do_not_leak_taint() {
        let mut builder = ModuleBuilder::new();
        builder.memory(1, None);
        let source = builder.import_function("env", "source", &[], &[ValType::I32]);
        let sink = builder.import_function("env", "sink", &[ValType::I32], &[]);
        builder.function("main", &[], &[], |f| {
            f.call(source).drop_(); // tainted value dropped
            f.i32_const(7).call(sink); // clean constant to sink
        });
        let module = builder.finish();

        let mut taint = TaintAnalysis::new(&[0], &[1]);
        let session = AnalysisSession::for_analysis(&module, &taint).unwrap();
        session
            .run_with_host(&mut taint, &mut host(), "main", &[])
            .unwrap();
        assert!(taint.flows().is_empty());
    }
}
