//! Memory access tracing (paper Table 4, 11 LoC in JS): "tracks all memory
//! accesses and stores them for a later off-line analysis, e.g., to detect
//! cache-unfriendly access patterns."

use wasabi::event::{AnalysisCtx, LoadEvt, StoreEvt};
use wasabi::hooks::{Analysis, Hook, HookSet};
use wasabi::location::Location;
use wasabi::report::{JsonValue, Report};

/// Direction of a traced access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    Load,
    Store,
}

/// One traced memory access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Access {
    pub kind: AccessKind,
    /// Mnemonic of the instruction (e.g. `i32.load8_u`).
    pub op: &'static str,
    /// Effective address (`addr + offset`).
    pub addr: u64,
    /// Access width in bytes.
    pub bytes: u32,
    pub location: Location,
}

/// Records every load and store for offline analysis.
#[derive(Debug, Default, Clone)]
pub struct MemoryTracing {
    trace: Vec<Access>,
}

impl MemoryTracing {
    /// An empty trace.
    pub fn new() -> Self {
        MemoryTracing::default()
    }

    /// The recorded accesses, in execution order.
    pub fn trace(&self) -> &[Access] {
        &self.trace
    }

    /// Total bytes read and written.
    pub fn bytes_transferred(&self) -> (u64, u64) {
        let mut read = 0;
        let mut written = 0;
        for access in &self.trace {
            match access.kind {
                AccessKind::Load => read += u64::from(access.bytes),
                AccessKind::Store => written += u64::from(access.bytes),
            }
        }
        (read, written)
    }

    /// Offline analysis: fraction of accesses whose address is within
    /// `window` bytes of the previous access (a simple locality measure for
    /// spotting cache-unfriendly patterns, the paper's use case).
    pub fn locality(&self, window: u64) -> f64 {
        if self.trace.len() < 2 {
            return 1.0;
        }
        let near = self
            .trace
            .windows(2)
            .filter(|w| w[0].addr.abs_diff(w[1].addr) <= window)
            .count();
        near as f64 / (self.trace.len() - 1) as f64
    }

    /// Offline analysis: the dominant stride between consecutive accesses
    /// issued by the same instruction, per location. Returns
    /// `(location, stride, repetitions)` entries for strides that repeat.
    pub fn strides(&self) -> Vec<(Location, i64, usize)> {
        use std::collections::HashMap;
        let mut last_addr: HashMap<Location, u64> = HashMap::new();
        let mut stride_counts: HashMap<(Location, i64), usize> = HashMap::new();
        for access in &self.trace {
            if let Some(prev) = last_addr.insert(access.location, access.addr) {
                let stride = access.addr as i64 - prev as i64;
                *stride_counts.entry((access.location, stride)).or_insert(0) += 1;
            }
        }
        let mut out: Vec<(Location, i64, usize)> = stride_counts
            .into_iter()
            .filter(|(_, count)| *count > 1)
            .map(|((loc, stride), count)| (loc, stride, count))
            .collect();
        out.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        out
    }
}

impl Analysis for MemoryTracing {
    fn name(&self) -> &str {
        "memory_tracing"
    }

    fn hooks(&self) -> HookSet {
        HookSet::of(&[Hook::Load, Hook::Store])
    }

    fn report(&self) -> Report {
        let (read, written) = self.bytes_transferred();
        Report::new(
            self.name(),
            JsonValue::object([
                ("accesses", self.trace.len().into()),
                ("bytes_read", read.into()),
                ("bytes_written", written.into()),
                ("cache_line_locality", self.locality(64).into()),
                (
                    "dominant_strides",
                    JsonValue::array(self.strides().into_iter().take(8).map(
                        |(loc, stride, reps)| {
                            JsonValue::object([
                                ("location", loc.into()),
                                ("stride", stride.into()),
                                ("repetitions", reps.into()),
                            ])
                        },
                    )),
                ),
            ]),
        )
    }

    fn load(&mut self, ctx: &AnalysisCtx, evt: &LoadEvt) {
        self.trace.push(Access {
            kind: AccessKind::Load,
            op: evt.op.name(),
            addr: evt.memarg.effective_addr(),
            bytes: evt.op.access_bytes(),
            location: ctx.loc,
        });
    }

    fn store(&mut self, ctx: &AnalysisCtx, evt: &StoreEvt) {
        self.trace.push(Access {
            kind: AccessKind::Store,
            op: evt.op.name(),
            addr: evt.memarg.effective_addr(),
            bytes: evt.op.access_bytes(),
            location: ctx.loc,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi::AnalysisSession;
    use wasabi_wasm::builder::ModuleBuilder;
    use wasabi_wasm::instr::BinaryOp;
    use wasabi_wasm::types::ValType;

    /// Writes `n` f64 elements with the given element stride, then reads
    /// them back.
    fn strided_module(n: i32, stride_bytes: i32) -> wasabi_wasm::Module {
        let mut builder = ModuleBuilder::new();
        builder.memory(2, None);
        builder.function("run", &[], &[ValType::F64], |f| {
            let i = f.local(ValType::I32);
            let acc = f.local(ValType::F64);
            f.block(None).loop_(None);
            f.get_local(i)
                .i32_const(n)
                .binary(BinaryOp::I32GeS)
                .br_if(1);
            // mem[i * stride] = i
            f.get_local(i).i32_const(stride_bytes).i32_mul();
            f.get_local(i).unary(wasabi_wasm::UnaryOp::F64ConvertSI32);
            f.store(wasabi_wasm::StoreOp::F64Store, 0);
            // acc += mem[i * stride]
            f.get_local(acc);
            f.get_local(i).i32_const(stride_bytes).i32_mul();
            f.load(wasabi_wasm::LoadOp::F64Load, 0);
            f.f64_add().set_local(acc);
            f.get_local(i).i32_const(1).i32_add().set_local(i);
            f.br(0).end().end();
            f.get_local(acc);
        });
        builder.finish()
    }

    fn traced(module: &wasabi_wasm::Module) -> MemoryTracing {
        let mut tracing = MemoryTracing::new();
        let session = AnalysisSession::for_analysis(module, &tracing).unwrap();
        session.run(&mut tracing, "run", &[]).unwrap();
        tracing
    }

    #[test]
    fn records_all_accesses() {
        let tracing = traced(&strided_module(10, 8));
        assert_eq!(tracing.trace().len(), 20); // 10 stores + 10 loads
        assert_eq!(tracing.bytes_transferred(), (80, 80));
        assert_eq!(tracing.trace()[0].kind, AccessKind::Store);
        assert_eq!(tracing.trace()[1].kind, AccessKind::Load);
        assert_eq!(tracing.trace()[0].op, "f64.store");
    }

    #[test]
    fn sequential_access_has_high_locality() {
        let sequential = traced(&strided_module(50, 8));
        let scattered = traced(&strided_module(50, 1024));
        assert!(sequential.locality(64) > scattered.locality(64));
    }

    #[test]
    fn detects_constant_strides() {
        let tracing = traced(&strided_module(20, 8));
        let strides = tracing.strides();
        assert!(!strides.is_empty());
        // Both the store and the load instruction advance by 8 bytes.
        assert!(strides.iter().all(|&(_, stride, _)| stride == 8));
    }

    #[test]
    fn uses_load_store_hooks_only() {
        assert_eq!(
            MemoryTracing::new().hooks(),
            HookSet::of(&[Hook::Load, Hook::Store])
        );
    }
}
