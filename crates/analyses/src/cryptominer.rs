//! Cryptominer detection (paper Fig. 1, 10 LoC in JS): "Unauthorized use of
//! computing resources is detected by monitoring the WebAssembly program
//! and gathering an instruction signature that is unique for typical mining
//! algorithms" — the profiling part of SEISMIC \[47\], reimplemented on the
//! Wasabi API.

use std::collections::BTreeMap;

use wasabi::event::{AnalysisCtx, BinaryEvt};
use wasabi::hooks::{Analysis, Hook, HookSet};
use wasabi::report::{JsonValue, Report};
use wasabi_wasm::instr::BinaryOp;

/// The five instructions profiled by the paper's Figure 1.
pub const SIGNATURE_OPS: [BinaryOp; 5] = [
    BinaryOp::I32Add,
    BinaryOp::I32And,
    BinaryOp::I32Shl,
    BinaryOp::I32ShrU,
    BinaryOp::I32Xor,
];

/// Gathers the executed-instruction signature of Figure 1 and classifies
/// hash-like workloads.
#[derive(Debug, Default, Clone)]
pub struct CryptominerDetection {
    signature: BTreeMap<&'static str, u64>,
    total_binary: u64,
}

impl CryptominerDetection {
    /// An empty signature.
    pub fn new() -> Self {
        CryptominerDetection::default()
    }

    /// Counts per signature instruction (the paper's `signature` object).
    pub fn signature(&self) -> &BTreeMap<&'static str, u64> {
        &self.signature
    }

    /// Total executed binary instructions (denominator for the ratio).
    pub fn total_binary_instructions(&self) -> u64 {
        self.total_binary
    }

    /// Fraction of executed binary instructions that belong to the
    /// signature set.
    pub fn signature_ratio(&self) -> f64 {
        if self.total_binary == 0 {
            return 0.0;
        }
        let hits: u64 = self.signature.values().sum();
        hits as f64 / self.total_binary as f64
    }

    /// Heuristic verdict: hash-like kernels execute predominantly integer
    /// bit-mixing (SEISMIC's observation). Requires both a minimum amount
    /// of work and a dominant signature share, with all five signature
    /// instructions present (hash rounds use the full mix).
    pub fn is_likely_miner(&self) -> bool {
        let hits: u64 = self.signature.values().sum();
        hits >= 10_000 && self.signature_ratio() > 0.8 && self.signature.len() == 5
    }
}

impl Analysis for CryptominerDetection {
    fn name(&self) -> &str {
        "cryptominer_detection"
    }

    fn hooks(&self) -> HookSet {
        // Figure 1 implements only the `binary` hook.
        HookSet::of(&[Hook::Binary])
    }

    fn report(&self) -> Report {
        Report::new(
            self.name(),
            JsonValue::object([
                (
                    "signature",
                    JsonValue::object(
                        self.signature
                            .iter()
                            .map(|(&op, &count)| (op, JsonValue::from(count))),
                    ),
                ),
                ("total_binary", self.total_binary.into()),
                ("signature_ratio", self.signature_ratio().into()),
                ("likely_miner", self.is_likely_miner().into()),
            ]),
        )
    }

    fn binary(&mut self, _: &AnalysisCtx, evt: &BinaryEvt) {
        self.total_binary += 1;
        if SIGNATURE_OPS.contains(&evt.op) {
            *self.signature.entry(evt.op.name()).or_insert(0) += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi::AnalysisSession;
    use wasabi_wasm::builder::ModuleBuilder;
    use wasabi_wasm::types::ValType;

    /// A hash-round-like kernel: xor/shift/add/and mixing in a hot loop.
    fn miner_like(rounds: i32) -> wasabi_wasm::Module {
        let mut builder = ModuleBuilder::new();
        builder.function("mine", &[], &[ValType::I32], |f| {
            let h = f.local(ValType::I32);
            let i = f.local(ValType::I32);
            f.i32_const(0x6a09_e667u32 as i32).set_local(h);
            f.block(None).loop_(None);
            f.get_local(i)
                .i32_const(rounds)
                .binary(BinaryOp::I32GeS)
                .br_if(1);
            f.get_local(h).i32_const(13).binary(BinaryOp::I32Shl);
            f.get_local(h).i32_const(7).binary(BinaryOp::I32ShrU);
            f.binary(BinaryOp::I32Xor);
            f.get_local(h).binary(BinaryOp::I32Add);
            f.i32_const(0x7fff_ffff).binary(BinaryOp::I32And);
            f.set_local(h);
            f.get_local(i).i32_const(1).i32_add().set_local(i);
            f.br(0).end().end();
            f.get_local(h);
        });
        builder.finish()
    }

    /// A float-heavy numeric kernel (PolyBench-like): not a miner.
    fn numeric_kernel(rounds: i32) -> wasabi_wasm::Module {
        let mut builder = ModuleBuilder::new();
        builder.function("compute", &[], &[ValType::F64], |f| {
            let acc = f.local(ValType::F64);
            let i = f.local(ValType::I32);
            f.block(None).loop_(None);
            f.get_local(i)
                .i32_const(rounds)
                .binary(BinaryOp::I32GeS)
                .br_if(1);
            f.get_local(acc)
                .f64_const(1.0001)
                .f64_mul()
                .f64_const(0.5)
                .f64_add();
            f.set_local(acc);
            f.get_local(i).i32_const(1).i32_add().set_local(i);
            f.br(0).end().end();
            f.get_local(acc);
        });
        builder.finish()
    }

    fn profile(module: &wasabi_wasm::Module, export: &str) -> CryptominerDetection {
        let mut detector = CryptominerDetection::new();
        let session = AnalysisSession::for_analysis(module, &detector).unwrap();
        session.run(&mut detector, export, &[]).unwrap();
        detector
    }

    #[test]
    fn flags_hash_like_kernel() {
        let detector = profile(&miner_like(5000), "mine");
        assert!(detector.is_likely_miner(), "{:?}", detector.signature());
        assert_eq!(detector.signature().len(), 5);
        assert!(detector.signature_ratio() > 0.8);
    }

    #[test]
    fn does_not_flag_numeric_kernel() {
        let detector = profile(&numeric_kernel(5000), "compute");
        assert!(!detector.is_likely_miner());
        assert!(detector.signature_ratio() < 0.8);
    }

    #[test]
    fn does_not_flag_short_executions() {
        // Even a perfect signature must meet the work threshold.
        let detector = profile(&miner_like(10), "mine");
        assert!(!detector.is_likely_miner());
    }

    #[test]
    fn uses_only_binary_hook() {
        assert_eq!(
            CryptominerDetection::new().hooks(),
            HookSet::of(&[Hook::Binary])
        );
    }
}
