//! Name-based analysis registry, used by the `wasabi` CLI's `--analysis`
//! flag and the bench bins to construct analyses dynamically.

use wasabi::Analysis;

use crate::{
    BasicBlockProfiling, BranchCoverage, CallGraph, CryptominerDetection, HeapProfile,
    InstructionCoverage, InstructionMix, MemoryTracing, TaintAnalysis,
};

/// All registered analysis names, in Table-4 order plus the extension
/// analysis. These are the values accepted by the CLI's `--analysis` flag
/// and returned by [`wasabi::Analysis::name`].
pub const NAMES: [&str; 9] = [
    "instruction_mix",
    "basic_block_profiling",
    "instruction_coverage",
    "branch_coverage",
    "call_graph",
    "taint_analysis",
    "cryptominer_detection",
    "memory_tracing",
    "heap_profile",
];

/// The eight analyses of paper Table 4 (excludes the `heap_profile`
/// extension), in table order.
pub const TABLE4_NAMES: [&str; 8] = [
    "instruction_mix",
    "basic_block_profiling",
    "instruction_coverage",
    "branch_coverage",
    "call_graph",
    "taint_analysis",
    "cryptominer_detection",
    "memory_tracing",
];

/// Construct a fresh analysis by name (see [`NAMES`]). The taint analysis
/// is constructed without configured sources/sinks; it still exercises its
/// full shadow-state machinery.
pub fn by_name(name: &str) -> Option<Box<dyn Analysis>> {
    Some(match name {
        "instruction_mix" => Box::new(InstructionMix::new()),
        "basic_block_profiling" => Box::new(BasicBlockProfiling::new()),
        "instruction_coverage" => Box::new(InstructionCoverage::new()),
        "branch_coverage" => Box::new(BranchCoverage::new()),
        "call_graph" => Box::new(CallGraph::new()),
        "taint_analysis" => Box::new(TaintAnalysis::new(&[], &[])),
        "cryptominer_detection" => Box::new(CryptominerDetection::new()),
        "memory_tracing" => Box::new(MemoryTracing::new()),
        "heap_profile" => Box::new(HeapProfile::new()),
        _ => return None,
    })
}

/// A [`wasabi::fleet::FleetBuilder`] pre-wired to construct analyses from
/// this registry: fleet jobs name analyses (see [`NAMES`]) and every
/// worker builds **fresh instances** via [`by_name`] inside its own
/// thread.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use wasabi::fleet::Job;
/// use wasabi_analyses::registry;
/// use wasabi_wasm::builder::ModuleBuilder;
/// use wasabi_wasm::ValType;
///
/// let mut builder = ModuleBuilder::new();
/// builder.function("main", &[], &[ValType::I32], |f| {
///     f.i32_const(6).i32_const(7).i32_mul();
/// });
/// let module = Arc::new(builder.finish());
///
/// let mut fleet = registry::fleet().workers(2).build();
/// for _ in 0..3 {
///     fleet.submit(
///         Job::new("m.wasm", Arc::clone(&module), "main", vec![])
///             .analyses(["instruction_mix", "call_graph"]),
///     );
/// }
/// let batch = fleet.run();
/// assert!(batch.all_ok());
/// assert_eq!(batch.cache_misses, 1, "translate once, run three times");
/// assert_eq!(batch.jobs[2].reports.len(), 2);
/// ```
pub fn fleet() -> wasabi::fleet::FleetBuilder {
    wasabi::Fleet::builder().factory(by_name)
}

/// Fresh instances of the eight Table-4 analyses, in table order.
pub fn table4() -> Vec<Box<dyn Analysis>> {
    TABLE4_NAMES
        .iter()
        .map(|name| by_name(name).expect("registered"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_name_constructs_and_matches() {
        for name in NAMES {
            let analysis = by_name(name).unwrap_or_else(|| panic!("{name} not registered"));
            assert_eq!(analysis.name(), name, "registry key must match name()");
        }
        assert!(by_name("frobnicate").is_none());
    }

    #[test]
    fn table4_has_the_papers_eight_analyses() {
        let analyses = table4();
        assert_eq!(analyses.len(), 8);
        // Spot-check selective hook sets survive the registry.
        let miner = by_name("cryptominer_detection").unwrap();
        assert_eq!(miner.hooks().len(), 1);
    }
}
