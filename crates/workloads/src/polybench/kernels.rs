//! PolyBench linear-algebra/kernels: 2mm, 3mm, atax, bicg, doitgen, mvt.

use crate::dsl::*;

fn frac(e: IExpr, modulus: i32) -> FExpr {
    int(irem(e, modulus)) / fc(f64::from(modulus))
}

fn matmul_into(dst: &'static str, a: &'static str, b: &'static str, n: i32, scale: f64) -> Stmt {
    for_(
        "i",
        c(0),
        c(n),
        vec![for_(
            "j",
            c(0),
            c(n),
            vec![
                store(dst, [v("i"), v("j")], fc(0.0)),
                for_(
                    "k",
                    c(0),
                    c(n),
                    vec![store(
                        dst,
                        [v("i"), v("j")],
                        ld(dst, [v("i"), v("j")])
                            + fc(scale) * ld(a, [v("i"), v("k")]) * ld(b, [v("k"), v("j")]),
                    )],
                ),
            ],
        )],
    )
}

/// Two matrix multiplications: `D = alpha*A*B*C + beta*D`.
pub fn two_mm(n: u32) -> Program {
    let n = n as i32;
    let mat = |name| Program::array(name, &[n as u32, n as u32]);
    Program {
        name: "2mm",
        arrays: vec![mat("tmp"), mat("A"), mat("B"), mat("C"), mat("D")],
        init: vec![for_(
            "i",
            c(0),
            c(n),
            vec![for_(
                "j",
                c(0),
                c(n),
                vec![
                    store("A", [v("i"), v("j")], frac(v("i") * v("j") + c(1), n)),
                    store("B", [v("i"), v("j")], frac(v("i") * (v("j") + c(1)), n)),
                    store(
                        "C",
                        [v("i"), v("j")],
                        frac(v("i") * (v("j") + c(3)) + c(1), n),
                    ),
                    store("D", [v("i"), v("j")], frac(v("i") * (v("j") + c(2)), n)),
                ],
            )],
        )],
        kernel: vec![
            matmul_into("tmp", "A", "B", n, 1.5),
            for_(
                "i",
                c(0),
                c(n),
                vec![for_(
                    "j",
                    c(0),
                    c(n),
                    vec![
                        store("D", [v("i"), v("j")], ld("D", [v("i"), v("j")]) * fc(1.2)),
                        for_(
                            "k",
                            c(0),
                            c(n),
                            vec![store(
                                "D",
                                [v("i"), v("j")],
                                ld("D", [v("i"), v("j")])
                                    + ld("tmp", [v("i"), v("k")]) * ld("C", [v("k"), v("j")]),
                            )],
                        ),
                    ],
                )],
            ),
        ],
    }
}

/// Three matrix multiplications: `G = (A*B) * (C*D)`.
pub fn three_mm(n: u32) -> Program {
    let n = n as i32;
    let mat = |name| Program::array(name, &[n as u32, n as u32]);
    Program {
        name: "3mm",
        arrays: vec![
            mat("A"),
            mat("B"),
            mat("C"),
            mat("D"),
            mat("E"),
            mat("F"),
            mat("G"),
        ],
        init: vec![for_(
            "i",
            c(0),
            c(n),
            vec![for_(
                "j",
                c(0),
                c(n),
                vec![
                    store("A", [v("i"), v("j")], frac(v("i") * v("j") + c(1), n)),
                    store(
                        "B",
                        [v("i"), v("j")],
                        frac(v("i") * (v("j") + c(1)) + c(2), n),
                    ),
                    store("C", [v("i"), v("j")], frac(v("i") * (v("j") + c(3)), n)),
                    store(
                        "D",
                        [v("i"), v("j")],
                        frac(v("i") * (v("j") + c(2)) + c(2), n),
                    ),
                ],
            )],
        )],
        kernel: vec![
            matmul_into("E", "A", "B", n, 1.0),
            matmul_into("F", "C", "D", n, 1.0),
            matmul_into("G", "E", "F", n, 1.0),
        ],
    }
}

/// Matrix-transpose-vector multiply: `y = A' * (A*x)`.
pub fn atax(n: u32) -> Program {
    let n = n as i32;
    Program {
        name: "atax",
        arrays: vec![
            Program::array("A", &[n as u32, n as u32]),
            Program::array("x", &[n as u32]),
            Program::array("y", &[n as u32]),
            Program::array("tmp", &[n as u32]),
        ],
        init: vec![
            for_(
                "i",
                c(0),
                c(n),
                vec![
                    store("x", [v("i")], fc(1.0) + int(v("i")) / fc(f64::from(n))),
                    for_(
                        "j",
                        c(0),
                        c(n),
                        vec![store(
                            "A",
                            [v("i"), v("j")],
                            frac(v("i") + v("j"), n) / fc(5.0),
                        )],
                    ),
                ],
            ),
            for_("i", c(0), c(n), vec![store("y", [v("i")], fc(0.0))]),
        ],
        kernel: vec![for_(
            "i",
            c(0),
            c(n),
            vec![
                store("tmp", [v("i")], fc(0.0)),
                for_(
                    "j",
                    c(0),
                    c(n),
                    vec![store(
                        "tmp",
                        [v("i")],
                        ld("tmp", [v("i")]) + ld("A", [v("i"), v("j")]) * ld("x", [v("j")]),
                    )],
                ),
                for_(
                    "j",
                    c(0),
                    c(n),
                    vec![store(
                        "y",
                        [v("j")],
                        ld("y", [v("j")]) + ld("A", [v("i"), v("j")]) * ld("tmp", [v("i")]),
                    )],
                ),
            ],
        )],
    }
}

/// BiCG sub-kernel: `s = A'*r; q = A*p`.
pub fn bicg(n: u32) -> Program {
    let n = n as i32;
    Program {
        name: "bicg",
        arrays: vec![
            Program::array("A", &[n as u32, n as u32]),
            Program::array("s", &[n as u32]),
            Program::array("q", &[n as u32]),
            Program::array("p", &[n as u32]),
            Program::array("r", &[n as u32]),
        ],
        init: vec![for_(
            "i",
            c(0),
            c(n),
            vec![
                store("p", [v("i")], frac(v("i"), n)),
                store("r", [v("i")], frac(v("i") + c(1), n) / fc(2.0)),
                for_(
                    "j",
                    c(0),
                    c(n),
                    vec![store(
                        "A",
                        [v("i"), v("j")],
                        frac(v("i") * (v("j") + c(1)), n),
                    )],
                ),
            ],
        )],
        kernel: vec![
            for_("i", c(0), c(n), vec![store("s", [v("i")], fc(0.0))]),
            for_(
                "i",
                c(0),
                c(n),
                vec![
                    store("q", [v("i")], fc(0.0)),
                    for_(
                        "j",
                        c(0),
                        c(n),
                        vec![
                            store(
                                "s",
                                [v("j")],
                                ld("s", [v("j")]) + ld("r", [v("i")]) * ld("A", [v("i"), v("j")]),
                            ),
                            store(
                                "q",
                                [v("i")],
                                ld("q", [v("i")]) + ld("A", [v("i"), v("j")]) * ld("p", [v("j")]),
                            ),
                        ],
                    ),
                ],
            ),
        ],
    }
}

/// Multi-resolution analysis kernel: `A[r][q][p] = sum_s A[r][q][s]*C4[s][p]`.
pub fn doitgen(n: u32) -> Program {
    let n = n as i32;
    Program {
        name: "doitgen",
        arrays: vec![
            Program::array("A", &[n as u32, n as u32, n as u32]),
            Program::array("C4", &[n as u32, n as u32]),
            Program::array("sum", &[n as u32]),
        ],
        init: vec![
            for_(
                "r",
                c(0),
                c(n),
                vec![for_(
                    "q",
                    c(0),
                    c(n),
                    vec![for_(
                        "p",
                        c(0),
                        c(n),
                        vec![store(
                            "A",
                            [v("r"), v("q"), v("p")],
                            frac(v("r") * v("q") + v("p"), n),
                        )],
                    )],
                )],
            ),
            for_(
                "s",
                c(0),
                c(n),
                vec![for_(
                    "p",
                    c(0),
                    c(n),
                    vec![store(
                        "C4",
                        [v("s"), v("p")],
                        frac(v("s") * v("p") + c(1), n),
                    )],
                )],
            ),
        ],
        kernel: vec![for_(
            "r",
            c(0),
            c(n),
            vec![for_(
                "q",
                c(0),
                c(n),
                vec![
                    for_(
                        "p",
                        c(0),
                        c(n),
                        vec![
                            store("sum", [v("p")], fc(0.0)),
                            for_(
                                "s",
                                c(0),
                                c(n),
                                vec![store(
                                    "sum",
                                    [v("p")],
                                    ld("sum", [v("p")])
                                        + ld("A", [v("r"), v("q"), v("s")])
                                            * ld("C4", [v("s"), v("p")]),
                                )],
                            ),
                        ],
                    ),
                    for_(
                        "p",
                        c(0),
                        c(n),
                        vec![store("A", [v("r"), v("q"), v("p")], ld("sum", [v("p")]))],
                    ),
                ],
            )],
        )],
    }
}

/// Matrix-vector product and transpose: `x1 += A*y1; x2 += A'*y2`.
pub fn mvt(n: u32) -> Program {
    let n = n as i32;
    Program {
        name: "mvt",
        arrays: vec![
            Program::array("A", &[n as u32, n as u32]),
            Program::array("x1", &[n as u32]),
            Program::array("x2", &[n as u32]),
            Program::array("y1", &[n as u32]),
            Program::array("y2", &[n as u32]),
        ],
        init: vec![for_(
            "i",
            c(0),
            c(n),
            vec![
                store("x1", [v("i")], frac(v("i"), n)),
                store("x2", [v("i")], frac(v("i") + c(1), n)),
                store("y1", [v("i")], frac(v("i") + c(3), n)),
                store("y2", [v("i")], frac(v("i") + c(4), n)),
                for_(
                    "j",
                    c(0),
                    c(n),
                    vec![store("A", [v("i"), v("j")], frac(v("i") * v("j"), n))],
                ),
            ],
        )],
        kernel: vec![
            for_(
                "i",
                c(0),
                c(n),
                vec![for_(
                    "j",
                    c(0),
                    c(n),
                    vec![store(
                        "x1",
                        [v("i")],
                        ld("x1", [v("i")]) + ld("A", [v("i"), v("j")]) * ld("y1", [v("j")]),
                    )],
                )],
            ),
            for_(
                "i",
                c(0),
                c(n),
                vec![for_(
                    "j",
                    c(0),
                    c(n),
                    vec![store(
                        "x2",
                        [v("i")],
                        ld("x2", [v("i")]) + ld("A", [v("j"), v("i")]) * ld("y2", [v("j")]),
                    )],
                )],
            ),
        ],
    }
}
