//! PolyBench datamining kernels: correlation, covariance.

use crate::dsl::*;

fn frac(e: IExpr, modulus: i32) -> FExpr {
    int(irem(e, modulus)) / fc(f64::from(modulus))
}

/// Correlation matrix computation.
pub fn correlation(n: u32) -> Program {
    let n = n as i32;
    let float_n = f64::from(n);
    Program {
        name: "correlation",
        arrays: vec![
            Program::array("data", &[n as u32, n as u32]),
            Program::array("corr", &[n as u32, n as u32]),
            Program::array("mean", &[n as u32]),
            Program::array("stddev", &[n as u32]),
        ],
        init: vec![for_(
            "i",
            c(0),
            c(n),
            vec![for_(
                "j",
                c(0),
                c(n),
                vec![store(
                    "data",
                    [v("i"), v("j")],
                    frac(v("i") * v("j") + c(1), n) + int(v("i")),
                )],
            )],
        )],
        kernel: vec![
            // Means of each column.
            for_(
                "j",
                c(0),
                c(n),
                vec![
                    store("mean", [v("j")], fc(0.0)),
                    for_(
                        "i",
                        c(0),
                        c(n),
                        vec![store(
                            "mean",
                            [v("j")],
                            ld("mean", [v("j")]) + ld("data", [v("i"), v("j")]),
                        )],
                    ),
                    store("mean", [v("j")], ld("mean", [v("j")]) / fc(float_n)),
                ],
            ),
            // Standard deviations, with the near-zero guard of the C code:
            // stddev[j] = stddev[j] <= eps ? 1.0 : stddev[j].
            for_(
                "j",
                c(0),
                c(n),
                vec![
                    store("stddev", [v("j")], fc(0.0)),
                    for_(
                        "i",
                        c(0),
                        c(n),
                        vec![store(
                            "stddev",
                            [v("j")],
                            ld("stddev", [v("j")])
                                + (ld("data", [v("i"), v("j")]) - ld("mean", [v("j")]))
                                    * (ld("data", [v("i"), v("j")]) - ld("mean", [v("j")])),
                        )],
                    ),
                    store(
                        "stddev",
                        [v("j")],
                        sqrt(ld("stddev", [v("j")]) / fc(float_n)),
                    ),
                    if_(
                        Cond::FLe(ld("stddev", [v("j")]), fc(0.1)),
                        vec![store("stddev", [v("j")], fc(1.0))],
                        vec![],
                    ),
                ],
            ),
            // Center and reduce the column vectors.
            for_(
                "i",
                c(0),
                c(n),
                vec![for_(
                    "j",
                    c(0),
                    c(n),
                    vec![
                        store(
                            "data",
                            [v("i"), v("j")],
                            ld("data", [v("i"), v("j")]) - ld("mean", [v("j")]),
                        ),
                        store(
                            "data",
                            [v("i"), v("j")],
                            ld("data", [v("i"), v("j")])
                                / (sqrt(fc(float_n)) * ld("stddev", [v("j")])),
                        ),
                    ],
                )],
            ),
            // Correlation matrix (upper triangle + mirrored).
            for_(
                "i",
                c(0),
                c(n - 1),
                vec![
                    store("corr", [v("i"), v("i")], fc(1.0)),
                    for_(
                        "j",
                        v("i") + c(1),
                        c(n),
                        vec![
                            store("corr", [v("i"), v("j")], fc(0.0)),
                            for_(
                                "k",
                                c(0),
                                c(n),
                                vec![store(
                                    "corr",
                                    [v("i"), v("j")],
                                    ld("corr", [v("i"), v("j")])
                                        + ld("data", [v("k"), v("i")])
                                            * ld("data", [v("k"), v("j")]),
                                )],
                            ),
                            store("corr", [v("j"), v("i")], ld("corr", [v("i"), v("j")])),
                        ],
                    ),
                ],
            ),
            store("corr", [c(n - 1), c(n - 1)], fc(1.0)),
        ],
    }
}

/// Covariance matrix computation.
pub fn covariance(n: u32) -> Program {
    let n = n as i32;
    let float_n = f64::from(n);
    Program {
        name: "covariance",
        arrays: vec![
            Program::array("data", &[n as u32, n as u32]),
            Program::array("cov", &[n as u32, n as u32]),
            Program::array("mean", &[n as u32]),
        ],
        init: vec![for_(
            "i",
            c(0),
            c(n),
            vec![for_(
                "j",
                c(0),
                c(n),
                vec![store("data", [v("i"), v("j")], frac(v("i") * v("j"), n))],
            )],
        )],
        kernel: vec![
            for_(
                "j",
                c(0),
                c(n),
                vec![
                    store("mean", [v("j")], fc(0.0)),
                    for_(
                        "i",
                        c(0),
                        c(n),
                        vec![store(
                            "mean",
                            [v("j")],
                            ld("mean", [v("j")]) + ld("data", [v("i"), v("j")]),
                        )],
                    ),
                    store("mean", [v("j")], ld("mean", [v("j")]) / fc(float_n)),
                ],
            ),
            for_(
                "i",
                c(0),
                c(n),
                vec![for_(
                    "j",
                    c(0),
                    c(n),
                    vec![store(
                        "data",
                        [v("i"), v("j")],
                        ld("data", [v("i"), v("j")]) - ld("mean", [v("j")]),
                    )],
                )],
            ),
            for_(
                "i",
                c(0),
                c(n),
                vec![for_(
                    "j",
                    v("i"),
                    c(n),
                    vec![
                        store("cov", [v("i"), v("j")], fc(0.0)),
                        for_(
                            "k",
                            c(0),
                            c(n),
                            vec![store(
                                "cov",
                                [v("i"), v("j")],
                                ld("cov", [v("i"), v("j")])
                                    + ld("data", [v("k"), v("i")]) * ld("data", [v("k"), v("j")]),
                            )],
                        ),
                        store(
                            "cov",
                            [v("i"), v("j")],
                            ld("cov", [v("i"), v("j")]) / fc(float_n - 1.0),
                        ),
                        store("cov", [v("j"), v("i")], ld("cov", [v("i"), v("j")])),
                    ],
                )],
            ),
        ],
    }
}
