//! PolyBench stencil kernels: adi, fdtd-2d, heat-3d, jacobi-1d, jacobi-2d,
//! seidel-2d.

use crate::dsl::*;

fn tsteps(n: u32) -> i32 {
    (n / 4).max(2) as i32
}

/// Alternating-direction implicit solver.
pub fn adi(n: u32) -> Program {
    let t = tsteps(n);
    let n = n as i32;
    let nf = f64::from(n);
    let tf = f64::from(t);
    let dx = 1.0 / nf;
    let dy = 1.0 / nf;
    let dt = 1.0 / tf;
    let b1 = 2.0;
    let b2 = 1.0;
    let mul1 = b1 * dt / (dx * dx);
    let mul2 = b2 * dt / (dy * dy);
    let a = -mul1 / 2.0;
    let b = 1.0 + mul1;
    let cc = a;
    let d = -mul2 / 2.0;
    let e = 1.0 + mul2;
    let f = d;

    Program {
        name: "adi",
        arrays: vec![
            Program::array("u", &[n as u32, n as u32]),
            Program::array("vv", &[n as u32, n as u32]),
            Program::array("p", &[n as u32, n as u32]),
            Program::array("q", &[n as u32, n as u32]),
        ],
        init: vec![for_(
            "i",
            c(0),
            c(n),
            vec![for_(
                "j",
                c(0),
                c(n),
                vec![store(
                    "u",
                    [v("i"), v("j")],
                    int(v("i") + c(n) - v("j")) / fc(nf),
                )],
            )],
        )],
        kernel: vec![for_(
            "t",
            c(1),
            c(t + 1),
            vec![
                // Column sweep.
                for_(
                    "i",
                    c(1),
                    c(n - 1),
                    vec![
                        store("vv", [c(0), v("i")], fc(1.0)),
                        store("p", [v("i"), c(0)], fc(0.0)),
                        store("q", [v("i"), c(0)], fc(1.0)),
                        for_(
                            "j",
                            c(1),
                            c(n - 1),
                            vec![
                                store(
                                    "p",
                                    [v("i"), v("j")],
                                    fc(0.0)
                                        - fc(cc)
                                            / (fc(a) * ld("p", [v("i"), v("j") - c(1)]) + fc(b)),
                                ),
                                store(
                                    "q",
                                    [v("i"), v("j")],
                                    ((fc(0.0) - fc(d)) * ld("u", [v("j"), v("i") - c(1)])
                                        + (fc(1.0) + fc(2.0) * fc(d)) * ld("u", [v("j"), v("i")])
                                        - fc(f) * ld("u", [v("j"), v("i") + c(1)])
                                        - fc(a) * ld("q", [v("i"), v("j") - c(1)]))
                                        / (fc(a) * ld("p", [v("i"), v("j") - c(1)]) + fc(b)),
                                ),
                            ],
                        ),
                        store("vv", [c(n - 1), v("i")], fc(1.0)),
                        for_rev(
                            "j",
                            c(1),
                            c(n - 1),
                            vec![store(
                                "vv",
                                [v("j"), v("i")],
                                ld("p", [v("i"), v("j")]) * ld("vv", [v("j") + c(1), v("i")])
                                    + ld("q", [v("i"), v("j")]),
                            )],
                        ),
                    ],
                ),
                // Row sweep.
                for_(
                    "i",
                    c(1),
                    c(n - 1),
                    vec![
                        store("u", [v("i"), c(0)], fc(1.0)),
                        store("p", [v("i"), c(0)], fc(0.0)),
                        store("q", [v("i"), c(0)], fc(1.0)),
                        for_(
                            "j",
                            c(1),
                            c(n - 1),
                            vec![
                                store(
                                    "p",
                                    [v("i"), v("j")],
                                    fc(0.0)
                                        - fc(f)
                                            / (fc(d) * ld("p", [v("i"), v("j") - c(1)]) + fc(e)),
                                ),
                                store(
                                    "q",
                                    [v("i"), v("j")],
                                    ((fc(0.0) - fc(a)) * ld("vv", [v("i") - c(1), v("j")])
                                        + (fc(1.0) + fc(2.0) * fc(a)) * ld("vv", [v("i"), v("j")])
                                        - fc(cc) * ld("vv", [v("i") + c(1), v("j")])
                                        - fc(d) * ld("q", [v("i"), v("j") - c(1)]))
                                        / (fc(d) * ld("p", [v("i"), v("j") - c(1)]) + fc(e)),
                                ),
                            ],
                        ),
                        store("u", [v("i"), c(n - 1)], fc(1.0)),
                        for_rev(
                            "j",
                            c(1),
                            c(n - 1),
                            vec![store(
                                "u",
                                [v("i"), v("j")],
                                ld("p", [v("i"), v("j")]) * ld("u", [v("i"), v("j") + c(1)])
                                    + ld("q", [v("i"), v("j")]),
                            )],
                        ),
                    ],
                ),
            ],
        )],
    }
}

/// 2-D finite-difference time-domain kernel.
pub fn fdtd_2d(n: u32) -> Program {
    let t = tsteps(n);
    let n = n as i32;
    Program {
        name: "fdtd-2d",
        arrays: vec![
            Program::array("ex", &[n as u32, n as u32]),
            Program::array("ey", &[n as u32, n as u32]),
            Program::array("hz", &[n as u32, n as u32]),
            Program::array("fict", &[t as u32]),
        ],
        init: vec![
            for_("i", c(0), c(t), vec![store("fict", [v("i")], int(v("i")))]),
            for_(
                "i",
                c(0),
                c(n),
                vec![for_(
                    "j",
                    c(0),
                    c(n),
                    vec![
                        store(
                            "ex",
                            [v("i"), v("j")],
                            int(v("i")) * (int(v("j")) + fc(1.0)) / fc(f64::from(n)),
                        ),
                        store(
                            "ey",
                            [v("i"), v("j")],
                            int(v("i")) * (int(v("j")) + fc(2.0)) / fc(f64::from(n)),
                        ),
                        store(
                            "hz",
                            [v("i"), v("j")],
                            int(v("i")) * (int(v("j")) + fc(3.0)) / fc(f64::from(n)),
                        ),
                    ],
                )],
            ),
        ],
        kernel: vec![for_(
            "t",
            c(0),
            c(t),
            vec![
                for_(
                    "j",
                    c(0),
                    c(n),
                    vec![store("ey", [c(0), v("j")], ld("fict", [v("t")]))],
                ),
                for_(
                    "i",
                    c(1),
                    c(n),
                    vec![for_(
                        "j",
                        c(0),
                        c(n),
                        vec![store(
                            "ey",
                            [v("i"), v("j")],
                            ld("ey", [v("i"), v("j")])
                                - fc(0.5)
                                    * (ld("hz", [v("i"), v("j")])
                                        - ld("hz", [v("i") - c(1), v("j")])),
                        )],
                    )],
                ),
                for_(
                    "i",
                    c(0),
                    c(n),
                    vec![for_(
                        "j",
                        c(1),
                        c(n),
                        vec![store(
                            "ex",
                            [v("i"), v("j")],
                            ld("ex", [v("i"), v("j")])
                                - fc(0.5)
                                    * (ld("hz", [v("i"), v("j")])
                                        - ld("hz", [v("i"), v("j") - c(1)])),
                        )],
                    )],
                ),
                for_(
                    "i",
                    c(0),
                    c(n - 1),
                    vec![for_(
                        "j",
                        c(0),
                        c(n - 1),
                        vec![store(
                            "hz",
                            [v("i"), v("j")],
                            ld("hz", [v("i"), v("j")])
                                - fc(0.7)
                                    * (ld("ex", [v("i"), v("j") + c(1)])
                                        - ld("ex", [v("i"), v("j")])
                                        + ld("ey", [v("i") + c(1), v("j")])
                                        - ld("ey", [v("i"), v("j")])),
                        )],
                    )],
                ),
            ],
        )],
    }
}

/// 3-D heat equation stencil.
pub fn heat_3d(n: u32) -> Program {
    let t = tsteps(n);
    let n = n as i32;
    let stencil = |dst: &'static str, src: &'static str| -> Stmt {
        for_(
            "i",
            c(1),
            c(n - 1),
            vec![for_(
                "j",
                c(1),
                c(n - 1),
                vec![for_(
                    "k",
                    c(1),
                    c(n - 1),
                    vec![store(
                        dst,
                        [v("i"), v("j"), v("k")],
                        fc(0.125)
                            * (ld(src, [v("i") + c(1), v("j"), v("k")])
                                - fc(2.0) * ld(src, [v("i"), v("j"), v("k")])
                                + ld(src, [v("i") - c(1), v("j"), v("k")]))
                            + fc(0.125)
                                * (ld(src, [v("i"), v("j") + c(1), v("k")])
                                    - fc(2.0) * ld(src, [v("i"), v("j"), v("k")])
                                    + ld(src, [v("i"), v("j") - c(1), v("k")]))
                            + fc(0.125)
                                * (ld(src, [v("i"), v("j"), v("k") + c(1)])
                                    - fc(2.0) * ld(src, [v("i"), v("j"), v("k")])
                                    + ld(src, [v("i"), v("j"), v("k") - c(1)]))
                            + ld(src, [v("i"), v("j"), v("k")]),
                    )],
                )],
            )],
        )
    };
    Program {
        name: "heat-3d",
        arrays: vec![
            Program::array("A", &[n as u32, n as u32, n as u32]),
            Program::array("B", &[n as u32, n as u32, n as u32]),
        ],
        init: vec![for_(
            "i",
            c(0),
            c(n),
            vec![for_(
                "j",
                c(0),
                c(n),
                vec![for_(
                    "k",
                    c(0),
                    c(n),
                    vec![
                        store(
                            "A",
                            [v("i"), v("j"), v("k")],
                            int(v("i") + v("j") + (c(n) - v("k"))) * fc(10.0) / fc(f64::from(n)),
                        ),
                        store(
                            "B",
                            [v("i"), v("j"), v("k")],
                            int(v("i") + v("j") + (c(n) - v("k"))) * fc(10.0) / fc(f64::from(n)),
                        ),
                    ],
                )],
            )],
        )],
        kernel: vec![for_(
            "t",
            c(1),
            c(t + 1),
            vec![stencil("B", "A"), stencil("A", "B")],
        )],
    }
}

/// 1-D Jacobi stencil.
pub fn jacobi_1d(n: u32) -> Program {
    let t = tsteps(n);
    let n = n as i32;
    Program {
        name: "jacobi-1d",
        arrays: vec![
            Program::array("A", &[n as u32]),
            Program::array("B", &[n as u32]),
        ],
        init: vec![for_(
            "i",
            c(0),
            c(n),
            vec![
                store("A", [v("i")], (int(v("i")) + fc(2.0)) / fc(f64::from(n))),
                store("B", [v("i")], (int(v("i")) + fc(3.0)) / fc(f64::from(n))),
            ],
        )],
        kernel: vec![for_(
            "t",
            c(0),
            c(t),
            vec![
                for_(
                    "i",
                    c(1),
                    c(n - 1),
                    vec![store(
                        "B",
                        [v("i")],
                        fc(0.33333)
                            * (ld("A", [v("i") - c(1)])
                                + ld("A", [v("i")])
                                + ld("A", [v("i") + c(1)])),
                    )],
                ),
                for_(
                    "i",
                    c(1),
                    c(n - 1),
                    vec![store(
                        "A",
                        [v("i")],
                        fc(0.33333)
                            * (ld("B", [v("i") - c(1)])
                                + ld("B", [v("i")])
                                + ld("B", [v("i") + c(1)])),
                    )],
                ),
            ],
        )],
    }
}

/// 2-D Jacobi stencil.
pub fn jacobi_2d(n: u32) -> Program {
    let t = tsteps(n);
    let n = n as i32;
    let sweep = |dst: &'static str, src: &'static str| -> Stmt {
        for_(
            "i",
            c(1),
            c(n - 1),
            vec![for_(
                "j",
                c(1),
                c(n - 1),
                vec![store(
                    dst,
                    [v("i"), v("j")],
                    fc(0.2)
                        * (ld(src, [v("i"), v("j")])
                            + ld(src, [v("i"), v("j") - c(1)])
                            + ld(src, [v("i"), v("j") + c(1)])
                            + ld(src, [v("i") + c(1), v("j")])
                            + ld(src, [v("i") - c(1), v("j")])),
                )],
            )],
        )
    };
    Program {
        name: "jacobi-2d",
        arrays: vec![
            Program::array("A", &[n as u32, n as u32]),
            Program::array("B", &[n as u32, n as u32]),
        ],
        init: vec![for_(
            "i",
            c(0),
            c(n),
            vec![for_(
                "j",
                c(0),
                c(n),
                vec![
                    store(
                        "A",
                        [v("i"), v("j")],
                        int(v("i")) * (int(v("j")) + fc(2.0)) / fc(f64::from(n)),
                    ),
                    store(
                        "B",
                        [v("i"), v("j")],
                        int(v("i")) * (int(v("j")) + fc(3.0)) / fc(f64::from(n)),
                    ),
                ],
            )],
        )],
        kernel: vec![for_(
            "t",
            c(0),
            c(t),
            vec![sweep("B", "A"), sweep("A", "B")],
        )],
    }
}

/// 2-D Gauss-Seidel stencil (in place).
pub fn seidel_2d(n: u32) -> Program {
    let t = tsteps(n);
    let n = n as i32;
    Program {
        name: "seidel-2d",
        arrays: vec![Program::array("A", &[n as u32, n as u32])],
        init: vec![for_(
            "i",
            c(0),
            c(n),
            vec![for_(
                "j",
                c(0),
                c(n),
                vec![store(
                    "A",
                    [v("i"), v("j")],
                    (int(v("i")) * (int(v("j")) + fc(2.0)) + fc(2.0)) / fc(f64::from(n)),
                )],
            )],
        )],
        kernel: vec![for_(
            "t",
            c(0),
            c(t),
            vec![for_(
                "i",
                c(1),
                c(n - 1),
                vec![for_(
                    "j",
                    c(1),
                    c(n - 1),
                    vec![store(
                        "A",
                        [v("i"), v("j")],
                        (ld("A", [v("i") - c(1), v("j") - c(1)])
                            + ld("A", [v("i") - c(1), v("j")])
                            + ld("A", [v("i") - c(1), v("j") + c(1)])
                            + ld("A", [v("i"), v("j") - c(1)])
                            + ld("A", [v("i"), v("j")])
                            + ld("A", [v("i"), v("j") + c(1)])
                            + ld("A", [v("i") + c(1), v("j") - c(1)])
                            + ld("A", [v("i") + c(1), v("j")])
                            + ld("A", [v("i") + c(1), v("j") + c(1)]))
                            / fc(9.0),
                    )],
                )],
            )],
        )],
    }
}
