//! PolyBench linear-algebra/blas kernels: gemm, gemver, gesummv, symm,
//! syr2k, syrk, trmm.

use crate::dsl::*;

fn frac(e: IExpr, modulus: i32) -> FExpr {
    int(irem(e, modulus)) / fc(f64::from(modulus))
}

/// General matrix multiply: `C = alpha*A*B + beta*C`.
pub fn gemm(n: u32) -> Program {
    let n = n as i32;
    Program {
        name: "gemm",
        arrays: vec![
            Program::array("A", &[n as u32, n as u32]),
            Program::array("B", &[n as u32, n as u32]),
            Program::array("C", &[n as u32, n as u32]),
        ],
        init: vec![for_(
            "i",
            c(0),
            c(n),
            vec![for_(
                "j",
                c(0),
                c(n),
                vec![
                    store("A", [v("i"), v("j")], frac(v("i") * v("j") + c(1), n)),
                    store("B", [v("i"), v("j")], frac(v("i") * v("j") + c(2), n)),
                    store("C", [v("i"), v("j")], frac(v("i") + v("j"), n)),
                ],
            )],
        )],
        kernel: vec![for_(
            "i",
            c(0),
            c(n),
            vec![
                for_(
                    "j",
                    c(0),
                    c(n),
                    vec![store(
                        "C",
                        [v("i"), v("j")],
                        ld("C", [v("i"), v("j")]) * fc(1.2),
                    )],
                ),
                for_(
                    "k",
                    c(0),
                    c(n),
                    vec![for_(
                        "j",
                        c(0),
                        c(n),
                        vec![store(
                            "C",
                            [v("i"), v("j")],
                            ld("C", [v("i"), v("j")])
                                + fc(1.5) * ld("A", [v("i"), v("k")]) * ld("B", [v("k"), v("j")]),
                        )],
                    )],
                ),
            ],
        )],
    }
}

/// Vector multiplication and matrix addition:
/// `A += u1*v1' + u2*v2'; x = beta*A'*y + z; w = alpha*A*x`.
pub fn gemver(n: u32) -> Program {
    let n = n as i32;
    let vec1 = |name| Program::array(name, &[n as u32]);
    Program {
        name: "gemver",
        arrays: vec![
            Program::array("A", &[n as u32, n as u32]),
            vec1("u1"),
            vec1("v1"),
            vec1("u2"),
            vec1("v2"),
            vec1("w"),
            vec1("x"),
            vec1("y"),
            vec1("z"),
        ],
        init: vec![for_(
            "i",
            c(0),
            c(n),
            vec![
                store("u1", [v("i")], int(v("i"))),
                store("u2", [v("i")], frac(v("i") + c(1), n) / fc(2.0)),
                store("v1", [v("i")], frac(v("i") + c(1), n) / fc(4.0)),
                store("v2", [v("i")], frac(v("i") + c(1), n) / fc(6.0)),
                store("y", [v("i")], frac(v("i") + c(1), n) / fc(8.0)),
                store("z", [v("i")], frac(v("i") + c(1), n) / fc(9.0)),
                store("x", [v("i")], fc(0.0)),
                store("w", [v("i")], fc(0.0)),
                for_(
                    "j",
                    c(0),
                    c(n),
                    vec![store("A", [v("i"), v("j")], frac(v("i") * v("j"), n))],
                ),
            ],
        )],
        kernel: vec![
            for_(
                "i",
                c(0),
                c(n),
                vec![for_(
                    "j",
                    c(0),
                    c(n),
                    vec![store(
                        "A",
                        [v("i"), v("j")],
                        ld("A", [v("i"), v("j")])
                            + ld("u1", [v("i")]) * ld("v1", [v("j")])
                            + ld("u2", [v("i")]) * ld("v2", [v("j")]),
                    )],
                )],
            ),
            for_(
                "i",
                c(0),
                c(n),
                vec![for_(
                    "j",
                    c(0),
                    c(n),
                    vec![store(
                        "x",
                        [v("i")],
                        ld("x", [v("i")]) + fc(1.2) * ld("A", [v("j"), v("i")]) * ld("y", [v("j")]),
                    )],
                )],
            ),
            for_(
                "i",
                c(0),
                c(n),
                vec![store("x", [v("i")], ld("x", [v("i")]) + ld("z", [v("i")]))],
            ),
            for_(
                "i",
                c(0),
                c(n),
                vec![for_(
                    "j",
                    c(0),
                    c(n),
                    vec![store(
                        "w",
                        [v("i")],
                        ld("w", [v("i")]) + fc(1.5) * ld("A", [v("i"), v("j")]) * ld("x", [v("j")]),
                    )],
                )],
            ),
        ],
    }
}

/// Scalar, vector and matrix multiplication: `y = alpha*A*x + beta*B*x`.
pub fn gesummv(n: u32) -> Program {
    let n = n as i32;
    Program {
        name: "gesummv",
        arrays: vec![
            Program::array("A", &[n as u32, n as u32]),
            Program::array("B", &[n as u32, n as u32]),
            Program::array("tmp", &[n as u32]),
            Program::array("x", &[n as u32]),
            Program::array("y", &[n as u32]),
        ],
        init: vec![for_(
            "i",
            c(0),
            c(n),
            vec![
                store("x", [v("i")], frac(v("i"), n)),
                for_(
                    "j",
                    c(0),
                    c(n),
                    vec![
                        store("A", [v("i"), v("j")], frac(v("i") * v("j") + c(1), n)),
                        store("B", [v("i"), v("j")], frac(v("i") * v("j") + c(2), n)),
                    ],
                ),
            ],
        )],
        kernel: vec![for_(
            "i",
            c(0),
            c(n),
            vec![
                store("tmp", [v("i")], fc(0.0)),
                store("y", [v("i")], fc(0.0)),
                for_(
                    "j",
                    c(0),
                    c(n),
                    vec![
                        store(
                            "tmp",
                            [v("i")],
                            ld("A", [v("i"), v("j")]) * ld("x", [v("j")]) + ld("tmp", [v("i")]),
                        ),
                        store(
                            "y",
                            [v("i")],
                            ld("B", [v("i"), v("j")]) * ld("x", [v("j")]) + ld("y", [v("i")]),
                        ),
                    ],
                ),
                store(
                    "y",
                    [v("i")],
                    fc(1.5) * ld("tmp", [v("i")]) + fc(1.2) * ld("y", [v("i")]),
                ),
            ],
        )],
    }
}

/// Symmetric matrix multiply: `C = alpha*A*B + beta*C`, A symmetric.
pub fn symm(n: u32) -> Program {
    let n = n as i32;
    Program {
        name: "symm",
        arrays: vec![
            Program::array("A", &[n as u32, n as u32]),
            Program::array("B", &[n as u32, n as u32]),
            Program::array("C", &[n as u32, n as u32]),
        ],
        init: vec![for_(
            "i",
            c(0),
            c(n),
            vec![for_(
                "j",
                c(0),
                c(n),
                vec![
                    store("A", [v("i"), v("j")], frac(v("i") + v("j"), n)),
                    store("B", [v("i"), v("j")], frac(v("j") + c(1), n)),
                    store("C", [v("i"), v("j")], frac(v("i") * v("j") + c(3), n)),
                ],
            )],
        )],
        kernel: vec![for_(
            "i",
            c(0),
            c(n),
            vec![for_(
                "j",
                c(0),
                c(n),
                vec![
                    set("temp2", fc(0.0)),
                    for_(
                        "k",
                        c(0),
                        v("i"),
                        vec![
                            store(
                                "C",
                                [v("k"), v("j")],
                                ld("C", [v("k"), v("j")])
                                    + fc(1.5)
                                        * ld("B", [v("i"), v("j")])
                                        * ld("A", [v("i"), v("k")]),
                            ),
                            set(
                                "temp2",
                                sc("temp2") + ld("B", [v("k"), v("j")]) * ld("A", [v("i"), v("k")]),
                            ),
                        ],
                    ),
                    store(
                        "C",
                        [v("i"), v("j")],
                        fc(1.2) * ld("C", [v("i"), v("j")])
                            + fc(1.5) * ld("B", [v("i"), v("j")]) * ld("A", [v("i"), v("i")])
                            + fc(1.5) * sc("temp2"),
                    ),
                ],
            )],
        )],
    }
}

/// Symmetric rank-2k update: `C = alpha*A*B' + alpha*B*A' + beta*C`.
pub fn syr2k(n: u32) -> Program {
    let n = n as i32;
    Program {
        name: "syr2k",
        arrays: vec![
            Program::array("A", &[n as u32, n as u32]),
            Program::array("B", &[n as u32, n as u32]),
            Program::array("C", &[n as u32, n as u32]),
        ],
        init: vec![for_(
            "i",
            c(0),
            c(n),
            vec![for_(
                "j",
                c(0),
                c(n),
                vec![
                    store("A", [v("i"), v("j")], frac(v("i") * v("j") + c(1), n)),
                    store("B", [v("i"), v("j")], frac(v("i") * v("j") + c(2), n)),
                    store("C", [v("i"), v("j")], frac(v("i") + v("j"), n)),
                ],
            )],
        )],
        kernel: vec![for_(
            "i",
            c(0),
            c(n),
            vec![
                for_(
                    "j",
                    c(0),
                    v("i") + c(1),
                    vec![store(
                        "C",
                        [v("i"), v("j")],
                        ld("C", [v("i"), v("j")]) * fc(1.2),
                    )],
                ),
                for_(
                    "k",
                    c(0),
                    c(n),
                    vec![for_(
                        "j",
                        c(0),
                        v("i") + c(1),
                        vec![store(
                            "C",
                            [v("i"), v("j")],
                            ld("C", [v("i"), v("j")])
                                + ld("A", [v("j"), v("k")]) * fc(1.5) * ld("B", [v("i"), v("k")])
                                + ld("B", [v("j"), v("k")]) * fc(1.5) * ld("A", [v("i"), v("k")]),
                        )],
                    )],
                ),
            ],
        )],
    }
}

/// Symmetric rank-k update: `C = alpha*A*A' + beta*C`.
pub fn syrk(n: u32) -> Program {
    let n = n as i32;
    Program {
        name: "syrk",
        arrays: vec![
            Program::array("A", &[n as u32, n as u32]),
            Program::array("C", &[n as u32, n as u32]),
        ],
        init: vec![for_(
            "i",
            c(0),
            c(n),
            vec![for_(
                "j",
                c(0),
                c(n),
                vec![
                    store("A", [v("i"), v("j")], frac(v("i") * v("j") + c(1), n)),
                    store("C", [v("i"), v("j")], frac(v("i") + v("j"), n)),
                ],
            )],
        )],
        kernel: vec![for_(
            "i",
            c(0),
            c(n),
            vec![
                for_(
                    "j",
                    c(0),
                    v("i") + c(1),
                    vec![store(
                        "C",
                        [v("i"), v("j")],
                        ld("C", [v("i"), v("j")]) * fc(1.2),
                    )],
                ),
                for_(
                    "k",
                    c(0),
                    c(n),
                    vec![for_(
                        "j",
                        c(0),
                        v("i") + c(1),
                        vec![store(
                            "C",
                            [v("i"), v("j")],
                            ld("C", [v("i"), v("j")])
                                + fc(1.5) * ld("A", [v("i"), v("k")]) * ld("A", [v("j"), v("k")]),
                        )],
                    )],
                ),
            ],
        )],
    }
}

/// Triangular matrix multiply: `B = alpha*A'*B`, A lower-unitriangular.
pub fn trmm(n: u32) -> Program {
    let n = n as i32;
    Program {
        name: "trmm",
        arrays: vec![
            Program::array("A", &[n as u32, n as u32]),
            Program::array("B", &[n as u32, n as u32]),
        ],
        init: vec![for_(
            "i",
            c(0),
            c(n),
            vec![for_(
                "j",
                c(0),
                c(n),
                vec![
                    store("A", [v("i"), v("j")], frac(v("i") + v("j"), n)),
                    store("B", [v("i"), v("j")], frac(c(n) + v("i") - v("j"), n)),
                ],
            )],
        )],
        kernel: vec![for_(
            "i",
            c(0),
            c(n),
            vec![for_(
                "j",
                c(0),
                c(n),
                vec![
                    for_(
                        "k",
                        v("i") + c(1),
                        c(n),
                        vec![store(
                            "B",
                            [v("i"), v("j")],
                            ld("B", [v("i"), v("j")])
                                + ld("A", [v("k"), v("i")]) * ld("B", [v("k"), v("j")]),
                        )],
                    ),
                    store("B", [v("i"), v("j")], fc(1.5) * ld("B", [v("i"), v("j")])),
                ],
            )],
        )],
    }
}
