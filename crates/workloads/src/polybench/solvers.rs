//! PolyBench linear-algebra/solvers: cholesky, durbin, gramschmidt, lu,
//! ludcmp, trisolv.

use crate::dsl::*;

fn frac(e: IExpr, modulus: i32) -> FExpr {
    int(irem(e, modulus)) / fc(f64::from(modulus))
}

/// The SPD initialization PolyBench uses for cholesky/lu/ludcmp: start from
/// a diagonally dominant lower-triangular pattern and form `A = B * B'`.
fn spd_init(n: i32) -> Vec<Stmt> {
    vec![
        // A = unit lower-triangular-ish pattern with dominant diagonal.
        for_(
            "i",
            c(0),
            c(n),
            vec![
                for_(
                    "j",
                    c(0),
                    v("i") + c(1),
                    vec![store(
                        "A",
                        [v("i"), v("j")],
                        fc(0.0) - frac(v("j"), n) + fc(1.0),
                    )],
                ),
                for_(
                    "j",
                    v("i") + c(1),
                    c(n),
                    vec![store("A", [v("i"), v("j")], fc(0.0))],
                ),
                store("A", [v("i"), v("i")], fc(1.0)),
            ],
        ),
        // B = A * A' (into scratch), then A = B.
        for_(
            "r",
            c(0),
            c(n),
            vec![for_(
                "s",
                c(0),
                c(n),
                vec![
                    store("B", [v("r"), v("s")], fc(0.0)),
                    for_(
                        "t",
                        c(0),
                        c(n),
                        vec![store(
                            "B",
                            [v("r"), v("s")],
                            ld("B", [v("r"), v("s")])
                                + ld("A", [v("r"), v("t")]) * ld("A", [v("s"), v("t")]),
                        )],
                    ),
                ],
            )],
        ),
        for_(
            "r",
            c(0),
            c(n),
            vec![for_(
                "s",
                c(0),
                c(n),
                vec![store("A", [v("r"), v("s")], ld("B", [v("r"), v("s")]))],
            )],
        ),
    ]
}

/// Cholesky decomposition (in-place, lower triangle).
pub fn cholesky(n: u32) -> Program {
    let n = n as i32;
    Program {
        name: "cholesky",
        arrays: vec![
            Program::array("A", &[n as u32, n as u32]),
            Program::array("B", &[n as u32, n as u32]),
        ],
        init: spd_init(n),
        kernel: vec![for_(
            "i",
            c(0),
            c(n),
            vec![
                for_(
                    "j",
                    c(0),
                    v("i"),
                    vec![
                        for_(
                            "k",
                            c(0),
                            v("j"),
                            vec![store(
                                "A",
                                [v("i"), v("j")],
                                ld("A", [v("i"), v("j")])
                                    - ld("A", [v("i"), v("k")]) * ld("A", [v("j"), v("k")]),
                            )],
                        ),
                        store(
                            "A",
                            [v("i"), v("j")],
                            ld("A", [v("i"), v("j")]) / ld("A", [v("j"), v("j")]),
                        ),
                    ],
                ),
                for_(
                    "k",
                    c(0),
                    v("i"),
                    vec![store(
                        "A",
                        [v("i"), v("i")],
                        ld("A", [v("i"), v("i")])
                            - ld("A", [v("i"), v("k")]) * ld("A", [v("i"), v("k")]),
                    )],
                ),
                store("A", [v("i"), v("i")], sqrt(ld("A", [v("i"), v("i")]))),
            ],
        )],
    }
}

/// Toeplitz system solver (Durbin's algorithm).
pub fn durbin(n: u32) -> Program {
    let n = n as i32;
    Program {
        name: "durbin",
        arrays: vec![
            Program::array("r", &[n as u32]),
            Program::array("y", &[n as u32]),
            Program::array("z", &[n as u32]),
        ],
        // An AR(1) autocorrelation sequence r[i] = 0.5^(i+1): a valid
        // positive-definite Toeplitz system, so Levinson-Durbin recursion
        // stays numerically stable (|reflection coefficients| < 1).
        init: (0..n)
            .map(|i| store("r", [c(i)], fc(0.5f64.powi(i + 1))))
            .collect(),
        kernel: vec![
            store("y", [c(0)], fc(0.0) - ld("r", [c(0)])),
            set("beta", fc(1.0)),
            set("alpha", fc(0.0) - ld("r", [c(0)])),
            for_(
                "k",
                c(1),
                c(n),
                vec![
                    set("beta", (fc(1.0) - sc("alpha") * sc("alpha")) * sc("beta")),
                    set("sum", fc(0.0)),
                    for_(
                        "i",
                        c(0),
                        v("k"),
                        vec![set(
                            "sum",
                            sc("sum") + ld("r", [v("k") - v("i") - c(1)]) * ld("y", [v("i")]),
                        )],
                    ),
                    set(
                        "alpha",
                        (fc(0.0) - (ld("r", [v("k")]) + sc("sum"))) / sc("beta"),
                    ),
                    for_(
                        "i",
                        c(0),
                        v("k"),
                        vec![store(
                            "z",
                            [v("i")],
                            ld("y", [v("i")]) + sc("alpha") * ld("y", [v("k") - v("i") - c(1)]),
                        )],
                    ),
                    for_(
                        "i",
                        c(0),
                        v("k"),
                        vec![store("y", [v("i")], ld("z", [v("i")]))],
                    ),
                    store("y", [v("k")], sc("alpha")),
                ],
            ),
        ],
    }
}

/// QR decomposition by modified Gram-Schmidt.
pub fn gramschmidt(n: u32) -> Program {
    let n = n as i32;
    Program {
        name: "gramschmidt",
        arrays: vec![
            Program::array("A", &[n as u32, n as u32]),
            Program::array("R", &[n as u32, n as u32]),
            Program::array("Q", &[n as u32, n as u32]),
        ],
        init: vec![for_(
            "i",
            c(0),
            c(n),
            vec![for_(
                "j",
                c(0),
                c(n),
                vec![store(
                    "A",
                    [v("i"), v("j")],
                    frac(v("i") * v("j") + c(1), n) * fc(10.0) + fc(1.0),
                )],
            )],
        )],
        kernel: vec![for_(
            "k",
            c(0),
            c(n),
            vec![
                set("nrm", fc(0.0)),
                for_(
                    "i",
                    c(0),
                    c(n),
                    vec![set(
                        "nrm",
                        sc("nrm") + ld("A", [v("i"), v("k")]) * ld("A", [v("i"), v("k")]),
                    )],
                ),
                store("R", [v("k"), v("k")], sqrt(sc("nrm"))),
                for_(
                    "i",
                    c(0),
                    c(n),
                    vec![store(
                        "Q",
                        [v("i"), v("k")],
                        ld("A", [v("i"), v("k")]) / ld("R", [v("k"), v("k")]),
                    )],
                ),
                for_(
                    "j",
                    v("k") + c(1),
                    c(n),
                    vec![
                        store("R", [v("k"), v("j")], fc(0.0)),
                        for_(
                            "i",
                            c(0),
                            c(n),
                            vec![store(
                                "R",
                                [v("k"), v("j")],
                                ld("R", [v("k"), v("j")])
                                    + ld("Q", [v("i"), v("k")]) * ld("A", [v("i"), v("j")]),
                            )],
                        ),
                        for_(
                            "i",
                            c(0),
                            c(n),
                            vec![store(
                                "A",
                                [v("i"), v("j")],
                                ld("A", [v("i"), v("j")])
                                    - ld("Q", [v("i"), v("k")]) * ld("R", [v("k"), v("j")]),
                            )],
                        ),
                    ],
                ),
            ],
        )],
    }
}

/// LU decomposition without pivoting (in place).
pub fn lu(n: u32) -> Program {
    let n = n as i32;
    Program {
        name: "lu",
        arrays: vec![
            Program::array("A", &[n as u32, n as u32]),
            Program::array("B", &[n as u32, n as u32]),
        ],
        init: spd_init(n),
        kernel: vec![for_(
            "i",
            c(0),
            c(n),
            vec![
                for_(
                    "j",
                    c(0),
                    v("i"),
                    vec![
                        for_(
                            "k",
                            c(0),
                            v("j"),
                            vec![store(
                                "A",
                                [v("i"), v("j")],
                                ld("A", [v("i"), v("j")])
                                    - ld("A", [v("i"), v("k")]) * ld("A", [v("k"), v("j")]),
                            )],
                        ),
                        store(
                            "A",
                            [v("i"), v("j")],
                            ld("A", [v("i"), v("j")]) / ld("A", [v("j"), v("j")]),
                        ),
                    ],
                ),
                for_(
                    "j",
                    v("i"),
                    c(n),
                    vec![for_(
                        "k",
                        c(0),
                        v("i"),
                        vec![store(
                            "A",
                            [v("i"), v("j")],
                            ld("A", [v("i"), v("j")])
                                - ld("A", [v("i"), v("k")]) * ld("A", [v("k"), v("j")]),
                        )],
                    )],
                ),
            ],
        )],
    }
}

/// LU decomposition followed by forward and backward substitution.
pub fn ludcmp(n: u32) -> Program {
    let n = n as i32;
    let mut init = spd_init(n);
    init.push(for_(
        "i",
        c(0),
        c(n),
        vec![store(
            "b",
            [v("i")],
            int(v("i") + c(1)) / fc(f64::from(n)) / fc(2.0) + fc(4.0),
        )],
    ));
    Program {
        name: "ludcmp",
        arrays: vec![
            Program::array("A", &[n as u32, n as u32]),
            Program::array("B", &[n as u32, n as u32]),
            Program::array("b", &[n as u32]),
            Program::array("x", &[n as u32]),
            Program::array("y", &[n as u32]),
        ],
        init,
        kernel: vec![
            // LU factorization with explicit running sums (the C code's w).
            for_(
                "i",
                c(0),
                c(n),
                vec![
                    for_(
                        "j",
                        c(0),
                        v("i"),
                        vec![
                            set("w", ld("A", [v("i"), v("j")])),
                            for_(
                                "k",
                                c(0),
                                v("j"),
                                vec![set(
                                    "w",
                                    sc("w") - ld("A", [v("i"), v("k")]) * ld("A", [v("k"), v("j")]),
                                )],
                            ),
                            store("A", [v("i"), v("j")], sc("w") / ld("A", [v("j"), v("j")])),
                        ],
                    ),
                    for_(
                        "j",
                        v("i"),
                        c(n),
                        vec![
                            set("w", ld("A", [v("i"), v("j")])),
                            for_(
                                "k",
                                c(0),
                                v("i"),
                                vec![set(
                                    "w",
                                    sc("w") - ld("A", [v("i"), v("k")]) * ld("A", [v("k"), v("j")]),
                                )],
                            ),
                            store("A", [v("i"), v("j")], sc("w")),
                        ],
                    ),
                ],
            ),
            // Forward substitution: L y = b.
            for_(
                "i",
                c(0),
                c(n),
                vec![
                    set("w", ld("b", [v("i")])),
                    for_(
                        "j",
                        c(0),
                        v("i"),
                        vec![set(
                            "w",
                            sc("w") - ld("A", [v("i"), v("j")]) * ld("y", [v("j")]),
                        )],
                    ),
                    store("y", [v("i")], sc("w")),
                ],
            ),
            // Backward substitution: U x = y.
            for_rev(
                "i",
                c(0),
                c(n),
                vec![
                    set("w", ld("y", [v("i")])),
                    for_(
                        "j",
                        v("i") + c(1),
                        c(n),
                        vec![set(
                            "w",
                            sc("w") - ld("A", [v("i"), v("j")]) * ld("x", [v("j")]),
                        )],
                    ),
                    store("x", [v("i")], sc("w") / ld("A", [v("i"), v("i")])),
                ],
            ),
        ],
    }
}

/// Triangular solver: `L x = b`.
pub fn trisolv(n: u32) -> Program {
    let n = n as i32;
    Program {
        name: "trisolv",
        arrays: vec![
            Program::array("L", &[n as u32, n as u32]),
            Program::array("x", &[n as u32]),
            Program::array("b", &[n as u32]),
        ],
        init: vec![for_(
            "i",
            c(0),
            c(n),
            vec![
                store("b", [v("i")], int(v("i"))),
                for_(
                    "j",
                    c(0),
                    v("i") + c(1),
                    vec![store(
                        "L",
                        [v("i"), v("j")],
                        int(v("i") + c(n) - v("j") + c(1)) * fc(2.0) / fc(f64::from(n)),
                    )],
                ),
            ],
        )],
        kernel: vec![for_(
            "i",
            c(0),
            c(n),
            vec![
                store("x", [v("i")], ld("b", [v("i")])),
                for_(
                    "j",
                    c(0),
                    v("i"),
                    vec![store(
                        "x",
                        [v("i")],
                        ld("x", [v("i")]) - ld("L", [v("i"), v("j")]) * ld("x", [v("j")]),
                    )],
                ),
                store("x", [v("i")], ld("x", [v("i")]) / ld("L", [v("i"), v("i")])),
            ],
        )],
    }
}
