//! The 30 PolyBench/C 4.2 kernels, expressed in the loop-nest DSL
//! (DESIGN.md §3: the stand-in for "PolyBench compiled with emscripten",
//! 5,163 lines of C in the paper's evaluation, §4.1).
//!
//! Kernels take a base problem size `n`; stencil kernels derive their time
//! steps from it. Use [`all`] to obtain all thirty, or [`by_name`] for one.
//!
//! Port notes (see DESIGN.md for the substitution rationale):
//! - all arrays are `f64` (PolyBench uses `int` for floyd-warshall and
//!   nussinov; the loop/dataflow structure is unchanged),
//! - deriche's exponential coefficients are compile-time constants,
//!   computed from `alpha` exactly like the C code does before its loops.

pub mod blas;
pub mod datamining;
pub mod kernels;
pub mod medley;
pub mod solvers;
pub mod stencils;

use crate::dsl::Program;

/// Names of all 30 kernels, grouped as in the PolyBench distribution.
pub const NAMES: [&str; 30] = [
    // datamining
    "correlation",
    "covariance",
    // linear-algebra/blas
    "gemm",
    "gemver",
    "gesummv",
    "symm",
    "syr2k",
    "syrk",
    "trmm",
    // linear-algebra/kernels
    "2mm",
    "3mm",
    "atax",
    "bicg",
    "doitgen",
    "mvt",
    // linear-algebra/solvers
    "cholesky",
    "durbin",
    "gramschmidt",
    "lu",
    "ludcmp",
    "trisolv",
    // medley
    "deriche",
    "floyd-warshall",
    "nussinov",
    // stencils
    "adi",
    "fdtd-2d",
    "heat-3d",
    "jacobi-1d",
    "jacobi-2d",
    "seidel-2d",
];

/// Build the kernel `name` with base problem size `n`.
///
/// Returns `None` for unknown names.
pub fn by_name(name: &str, n: u32) -> Option<Program> {
    Some(match name {
        "correlation" => datamining::correlation(n),
        "covariance" => datamining::covariance(n),
        "gemm" => blas::gemm(n),
        "gemver" => blas::gemver(n),
        "gesummv" => blas::gesummv(n),
        "symm" => blas::symm(n),
        "syr2k" => blas::syr2k(n),
        "syrk" => blas::syrk(n),
        "trmm" => blas::trmm(n),
        "2mm" => kernels::two_mm(n),
        "3mm" => kernels::three_mm(n),
        "atax" => kernels::atax(n),
        "bicg" => kernels::bicg(n),
        "doitgen" => kernels::doitgen(n),
        "mvt" => kernels::mvt(n),
        "cholesky" => solvers::cholesky(n),
        "durbin" => solvers::durbin(n),
        "gramschmidt" => solvers::gramschmidt(n),
        "lu" => solvers::lu(n),
        "ludcmp" => solvers::ludcmp(n),
        "trisolv" => solvers::trisolv(n),
        "deriche" => medley::deriche(n),
        "floyd-warshall" => medley::floyd_warshall(n),
        "nussinov" => medley::nussinov(n),
        "adi" => stencils::adi(n),
        "fdtd-2d" => stencils::fdtd_2d(n),
        "heat-3d" => stencils::heat_3d(n),
        "jacobi-1d" => stencils::jacobi_1d(n),
        "jacobi-2d" => stencils::jacobi_2d(n),
        "seidel-2d" => stencils::seidel_2d(n),
        _ => return None,
    })
}

/// All 30 kernels with base problem size `n`.
pub fn all(n: u32) -> Vec<Program> {
    NAMES
        .iter()
        .map(|name| by_name(name, n).expect("all NAMES are known"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use wasabi_vm::{EmptyHost, Instance};
    use wasabi_wasm::validate::validate;

    #[test]
    fn there_are_30_kernels() {
        // Paper §4.1: "30 of them are from the PolyBench/C benchmark suite".
        assert_eq!(NAMES.len(), 30);
        assert_eq!(all(4).len(), 30);
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("not-a-kernel", 4).is_none());
    }

    #[test]
    fn all_kernels_compile_and_validate() {
        for program in all(6) {
            let module = compile(&program);
            validate(&module).unwrap_or_else(|e| panic!("{} does not validate: {e}", program.name));
        }
    }

    #[test]
    fn all_kernels_execute_and_produce_finite_checksums() {
        for program in all(6) {
            let module = compile(&program);
            let mut host = EmptyHost;
            let mut instance = Instance::instantiate(module, &mut host)
                .unwrap_or_else(|e| panic!("{}: {e}", program.name));
            instance.set_fuel(Some(200_000_000));
            let results = instance
                .invoke_export("main", &[], &mut host)
                .unwrap_or_else(|e| panic!("{} trapped: {e}", program.name));
            let checksum = results[0].as_f64().expect("f64 checksum");
            assert!(
                checksum.is_finite(),
                "{}: checksum {checksum} is not finite",
                program.name
            );
        }
    }

    #[test]
    fn checksums_are_deterministic() {
        for name in ["gemm", "cholesky", "nussinov", "adi"] {
            let run = |n: u32| {
                let module = compile(&by_name(name, n).unwrap());
                let mut host = EmptyHost;
                let mut instance = Instance::instantiate(module, &mut host).unwrap();
                instance.invoke_export("main", &[], &mut host).unwrap()[0]
                    .as_f64()
                    .unwrap()
            };
            assert_eq!(run(6), run(6), "{name} not deterministic");
            assert_ne!(run(6), run(8), "{name} insensitive to problem size");
        }
    }

    #[test]
    fn kernels_differ_from_each_other() {
        // Guard against copy-paste mistakes: different kernels must produce
        // different instruction streams.
        use std::collections::HashSet;
        let encoded: HashSet<Vec<u8>> = all(5)
            .iter()
            .map(|p| wasabi_wasm::encode::encode(&compile(p)))
            .collect();
        assert_eq!(encoded.len(), 30);
    }
}
