//! PolyBench medley kernels: deriche, floyd-warshall, nussinov.

use crate::dsl::*;

fn frac(e: IExpr, modulus: i32) -> FExpr {
    int(irem(e, modulus)) / fc(f64::from(modulus))
}

/// Deriche recursive edge-detection filter. The exponential filter
/// coefficients are compile-time constants (computed here from `alpha`,
/// like the C code computes them once before the loops).
pub fn deriche(n: u32) -> Program {
    let w = n as i32;
    let h = n as i32;
    let alpha: f64 = 0.25;
    let k =
        (1.0 - (-alpha).exp()).powi(2) / (1.0 + 2.0 * alpha * (-alpha).exp() - (2.0 * alpha).exp());
    let a1 = k;
    let a5 = k;
    let a2 = k * (-alpha).exp() * (alpha - 1.0);
    let a6 = a2;
    let a3 = k * (-alpha).exp() * (alpha + 1.0);
    let a7 = a3;
    let a4 = -k * (-2.0 * alpha).exp();
    let a8 = a4;
    let b1 = 2.0f64.powf(-alpha);
    let b2 = -(-2.0 * alpha).exp();
    let c1 = 1.0;
    let c2 = 1.0;

    Program {
        name: "deriche",
        arrays: vec![
            Program::array("imgIn", &[w as u32, h as u32]),
            Program::array("imgOut", &[w as u32, h as u32]),
            Program::array("y1", &[w as u32, h as u32]),
            Program::array("y2", &[w as u32, h as u32]),
        ],
        init: vec![for_(
            "i",
            c(0),
            c(w),
            vec![for_(
                "j",
                c(0),
                c(h),
                vec![store(
                    "imgIn",
                    [v("i"), v("j")],
                    frac(v("i") * c(313) + v("j") * c(991), 65536) / fc(65535.0) * fc(255.0),
                )],
            )],
        )],
        kernel: vec![
            // Horizontal forward pass.
            for_(
                "i",
                c(0),
                c(w),
                vec![
                    set("ym1", fc(0.0)),
                    set("ym2", fc(0.0)),
                    set("xm1", fc(0.0)),
                    for_(
                        "j",
                        c(0),
                        c(h),
                        vec![
                            store(
                                "y1",
                                [v("i"), v("j")],
                                fc(a1) * ld("imgIn", [v("i"), v("j")])
                                    + fc(a2) * sc("xm1")
                                    + fc(b1) * sc("ym1")
                                    + fc(b2) * sc("ym2"),
                            ),
                            set("xm1", ld("imgIn", [v("i"), v("j")])),
                            set("ym2", sc("ym1")),
                            set("ym1", ld("y1", [v("i"), v("j")])),
                        ],
                    ),
                ],
            ),
            // Horizontal backward pass.
            for_(
                "i",
                c(0),
                c(w),
                vec![
                    set("yp1", fc(0.0)),
                    set("yp2", fc(0.0)),
                    set("xp1", fc(0.0)),
                    set("xp2", fc(0.0)),
                    for_rev(
                        "j",
                        c(0),
                        c(h),
                        vec![
                            store(
                                "y2",
                                [v("i"), v("j")],
                                fc(a3) * sc("xp1")
                                    + fc(a4) * sc("xp2")
                                    + fc(b1) * sc("yp1")
                                    + fc(b2) * sc("yp2"),
                            ),
                            set("xp2", sc("xp1")),
                            set("xp1", ld("imgIn", [v("i"), v("j")])),
                            set("yp2", sc("yp1")),
                            set("yp1", ld("y2", [v("i"), v("j")])),
                        ],
                    ),
                ],
            ),
            for_(
                "i",
                c(0),
                c(w),
                vec![for_(
                    "j",
                    c(0),
                    c(h),
                    vec![store(
                        "imgOut",
                        [v("i"), v("j")],
                        fc(c1) * (ld("y1", [v("i"), v("j")]) + ld("y2", [v("i"), v("j")])),
                    )],
                )],
            ),
            // Vertical forward pass.
            for_(
                "j",
                c(0),
                c(h),
                vec![
                    set("tm1", fc(0.0)),
                    set("ym1", fc(0.0)),
                    set("ym2", fc(0.0)),
                    for_(
                        "i",
                        c(0),
                        c(w),
                        vec![
                            store(
                                "y1",
                                [v("i"), v("j")],
                                fc(a5) * ld("imgOut", [v("i"), v("j")])
                                    + fc(a6) * sc("tm1")
                                    + fc(b1) * sc("ym1")
                                    + fc(b2) * sc("ym2"),
                            ),
                            set("tm1", ld("imgOut", [v("i"), v("j")])),
                            set("ym2", sc("ym1")),
                            set("ym1", ld("y1", [v("i"), v("j")])),
                        ],
                    ),
                ],
            ),
            // Vertical backward pass.
            for_(
                "j",
                c(0),
                c(h),
                vec![
                    set("tp1", fc(0.0)),
                    set("tp2", fc(0.0)),
                    set("yp1", fc(0.0)),
                    set("yp2", fc(0.0)),
                    for_rev(
                        "i",
                        c(0),
                        c(w),
                        vec![
                            store(
                                "y2",
                                [v("i"), v("j")],
                                fc(a7) * sc("tp1")
                                    + fc(a8) * sc("tp2")
                                    + fc(b1) * sc("yp1")
                                    + fc(b2) * sc("yp2"),
                            ),
                            set("tp2", sc("tp1")),
                            set("tp1", ld("imgOut", [v("i"), v("j")])),
                            set("yp2", sc("yp1")),
                            set("yp1", ld("y2", [v("i"), v("j")])),
                        ],
                    ),
                ],
            ),
            for_(
                "i",
                c(0),
                c(w),
                vec![for_(
                    "j",
                    c(0),
                    c(h),
                    vec![store(
                        "imgOut",
                        [v("i"), v("j")],
                        fc(c2) * (ld("y1", [v("i"), v("j")]) + ld("y2", [v("i"), v("j")])),
                    )],
                )],
            ),
        ],
    }
}

/// All-pairs shortest paths (Floyd-Warshall). PolyBench uses `int` path
/// weights; this port uses `f64` like all DSL arrays (DESIGN.md §3), with
/// `min` instead of the conditional — the same dataflow.
pub fn floyd_warshall(n: u32) -> Program {
    let n = n as i32;
    Program {
        name: "floyd-warshall",
        arrays: vec![Program::array("path", &[n as u32, n as u32])],
        init: vec![for_(
            "i",
            c(0),
            c(n),
            vec![for_(
                "j",
                c(0),
                c(n),
                vec![
                    store(
                        "path",
                        [v("i"), v("j")],
                        int(irem(v("i") * v("j"), 7) + c(1)),
                    ),
                    if_(
                        Cond::Ne(irem(v("i") + v("j"), 13), c(0)),
                        vec![],
                        vec![store("path", [v("i"), v("j")], fc(999.0))],
                    ),
                ],
            )],
        )],
        kernel: vec![for_(
            "k",
            c(0),
            c(n),
            vec![for_(
                "i",
                c(0),
                c(n),
                vec![for_(
                    "j",
                    c(0),
                    c(n),
                    vec![store(
                        "path",
                        [v("i"), v("j")],
                        min(
                            ld("path", [v("i"), v("j")]),
                            ld("path", [v("i"), v("k")]) + ld("path", [v("k"), v("j")]),
                        ),
                    )],
                )],
            )],
        )],
    }
}

/// RNA secondary-structure prediction (Nussinov). The base sequence and
/// dynamic-programming table use `f64` values 0–3 resp. scores.
pub fn nussinov(n: u32) -> Program {
    let n = n as i32;
    // match(b1, b2) = (b1 + b2 == 3) ? 1 : 0, expressed with a float
    // equality condition on the sum.
    let match_expr = |i: IExpr, j: IExpr| -> Stmt {
        if_(
            Cond::FEq(ld("seq", [i.clone()]) + ld("seq", [j.clone()]), fc(3.0)),
            vec![store(
                "table",
                [v("i"), v("j")],
                max(
                    ld("table", [v("i"), v("j")]),
                    ld("table", [v("i") + c(1), v("j") - c(1)]) + fc(1.0),
                ),
            )],
            vec![store(
                "table",
                [v("i"), v("j")],
                max(
                    ld("table", [v("i"), v("j")]),
                    ld("table", [v("i") + c(1), v("j") - c(1)]),
                ),
            )],
        )
    };
    Program {
        name: "nussinov",
        arrays: vec![
            Program::array("seq", &[n as u32]),
            Program::array("table", &[n as u32, n as u32]),
        ],
        init: vec![
            for_(
                "i",
                c(0),
                c(n),
                vec![store("seq", [v("i")], int(irem(v("i") + c(1), 4)))],
            ),
            for_(
                "i",
                c(0),
                c(n),
                vec![for_(
                    "j",
                    c(0),
                    c(n),
                    vec![store("table", [v("i"), v("j")], fc(0.0))],
                )],
            ),
        ],
        kernel: vec![for_rev(
            "i",
            c(0),
            c(n),
            vec![for_(
                "j",
                v("i") + c(1),
                c(n),
                vec![
                    if_(
                        Cond::Ge(v("j") - c(1), c(0)),
                        vec![store(
                            "table",
                            [v("i"), v("j")],
                            max(
                                ld("table", [v("i"), v("j")]),
                                ld("table", [v("i"), v("j") - c(1)]),
                            ),
                        )],
                        vec![],
                    ),
                    if_(
                        Cond::Lt(v("i") + c(1), c(n)),
                        vec![store(
                            "table",
                            [v("i"), v("j")],
                            max(
                                ld("table", [v("i"), v("j")]),
                                ld("table", [v("i") + c(1), v("j")]),
                            ),
                        )],
                        vec![],
                    ),
                    if_(
                        Cond::Ge(v("j") - c(1), c(0)),
                        vec![if_(
                            Cond::Lt(v("i") + c(1), c(n)),
                            vec![if_(
                                Cond::Lt(v("i"), v("j") - c(1)),
                                vec![match_expr(v("i"), v("j"))],
                                vec![store(
                                    "table",
                                    [v("i"), v("j")],
                                    max(
                                        ld("table", [v("i"), v("j")]),
                                        ld("table", [v("i") + c(1), v("j") - c(1)]),
                                    ),
                                )],
                            )],
                            vec![],
                        )],
                        vec![],
                    ),
                    for_(
                        "k",
                        v("i") + c(1),
                        v("j"),
                        vec![store(
                            "table",
                            [v("i"), v("j")],
                            max(
                                ld("table", [v("i"), v("j")]),
                                ld("table", [v("i"), v("k")])
                                    + ld("table", [v("k") + c(1), v("j")]),
                            ),
                        )],
                    ),
                ],
            )],
        )],
    }
}
