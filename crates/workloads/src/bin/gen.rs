//! Generate workload `.wasm` files on disk, for use with the `wasabi` CLI
//! or external tools.
//!
//! ```text
//! gen <kernel|app> <name|seed> <size> <output.wasm>
//! ```
//!
//! Examples:
//!
//! ```sh
//! cargo run -p wasabi-workloads --bin gen -- kernel gemm 16 gemm.wasm
//! cargo run -p wasabi-workloads --bin gen -- app 42 500000 app.wasm
//! ```

use std::process::ExitCode;

use wasabi_workloads::synthetic::{spin, synthetic_app, SyntheticConfig};
use wasabi_workloads::{compile, polybench};

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `spin` takes no parameters: `gen spin <output.wasm>`.
    if let ["spin", output] = args
        .iter()
        .map(String::as_str)
        .collect::<Vec<_>>()
        .as_slice()
    {
        let bytes = wasabi_wasm::encode::encode(&spin());
        std::fs::write(output, &bytes).map_err(|e| format!("cannot write {output}: {e}"))?;
        println!("wrote {output}: {} bytes", bytes.len());
        return Ok(());
    }
    let [kind, ident, size, output] = args.as_slice() else {
        return Err(format!(
            "usage: gen <kernel|app> <name|seed> <size> <output.wasm>\n\
             \x20      gen spin <output.wasm>\n\
             kernels: {}",
            polybench::NAMES.join(", ")
        ));
    };

    let module = match kind.as_str() {
        "kernel" => {
            let n: u32 = size.parse().map_err(|_| format!("bad size {size:?}"))?;
            let program =
                polybench::by_name(ident, n).ok_or_else(|| format!("unknown kernel {ident:?}"))?;
            compile(&program)
        }
        "app" => {
            let seed: u64 = ident.parse().map_err(|_| format!("bad seed {ident:?}"))?;
            let bytes: usize = size.parse().map_err(|_| format!("bad size {size:?}"))?;
            let config = SyntheticConfig {
                seed,
                ..SyntheticConfig::pspdfkit_like().with_target_bytes(bytes)
            };
            synthetic_app(&config)
        }
        other => return Err(format!("unknown workload kind {other:?}")),
    };

    let bytes = wasabi_wasm::encode::encode(&module);
    std::fs::write(output, &bytes).map_err(|e| format!("cannot write {output}: {e}"))?;
    println!("wrote {output}: {} bytes", bytes.len());
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
