//! # wasabi-workloads — evaluation inputs for the Wasabi reproduction
//!
//! Stand-ins for the paper's evaluation subjects (DESIGN.md §3):
//!
//! - [`polybench`]: all 30 PolyBench/C kernels, written in the loop-nest
//!   [`dsl`] and compiled to Wasm by [`mod@compile`] (replacing
//!   "PolyBench compiled with emscripten"),
//! - [`synthetic`]: deterministic generators for large, diverse,
//!   application-like binaries (replacing the closed-source PSPDFKit and
//!   Unreal Engine 4 binaries), plus the miner-like kernel for the
//!   cryptominer-detection example.

pub mod compile;
pub mod dsl;
pub mod polybench;
pub mod synthetic;

pub use compile::compile;
pub use dsl::Program;
