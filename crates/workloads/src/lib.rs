//! # wasabi-workloads — evaluation inputs for the Wasabi reproduction
//!
//! Stand-ins for the paper's evaluation subjects (DESIGN.md §3):
//!
//! - [`polybench`]: all 30 PolyBench/C kernels, written in the loop-nest
//!   [`dsl`] and compiled to Wasm by [`mod@compile`] (replacing
//!   "PolyBench compiled with emscripten"),
//! - [`synthetic`]: deterministic generators for large, diverse,
//!   application-like binaries (replacing the closed-source PSPDFKit and
//!   Unreal Engine 4 binaries), plus the miner-like kernel for the
//!   cryptominer-detection example.
//!
//! Everything is **deterministic**: a kernel name + problem size `n`, or
//! a [`synthetic::SyntheticConfig`] seed, always produces the same
//! module. That property is what the differential suites
//! (`tests/instrumented_differential.rs`, `tests/fleet_equivalence.rs`)
//! and the committed `BENCH_*.json` baselines lean on — two runs of the
//! same workload are comparable bit-for-bit.
//!
//! Typical use (every bench binary and most integration tests):
//!
//! ```
//! use wasabi_workloads::{compile, polybench};
//!
//! let program = polybench::by_name("gemm", 6).expect("known kernel");
//! let module = compile(&program);
//! assert!(module.functions.iter().any(|f| f.export.iter().any(|e| e == "main")));
//! ```
//!
//! The `gen` binary writes any workload to disk as `.wasm` (inputs for
//! the `wasabi` CLI's instrument, analysis, and `--batch` modes).

pub mod compile;
pub mod dsl;
pub mod polybench;
pub mod synthetic;

pub use compile::compile;
pub use dsl::Program;
