//! Compiles [`crate::dsl`] programs to WebAssembly modules.
//!
//! Layout and structure mirror what emscripten produces for PolyBench:
//! `f64` arrays in linear memory (row-major, 8 bytes per element, laid out
//! consecutively from address 0), an `init` function, the `kernel`
//! function with the loop nests, and a `checksum` function standing in for
//! PolyBench's `print_array` (the paper uses printed intermediate results
//! to check faithfulness, §4.3; we use the checksum the same way).
//!
//! Exports: `init`, `kernel`, `checksum`, and `main` (init + kernel +
//! checksum, returning the checksum).

use std::collections::HashMap;

use wasabi_wasm::builder::{FunctionBuilder, ModuleBuilder};
use wasabi_wasm::instr::{BinaryOp, Idx, LocalSpace, UnaryOp};
use wasabi_wasm::module::Module;
use wasabi_wasm::types::{ValType, PAGE_SIZE};
use wasabi_wasm::{LoadOp, StoreOp};

use crate::dsl::{ArrayDecl, Cond, FExpr, IExpr, Program, Stmt};

/// Compile a DSL program into a self-contained Wasm module.
///
/// # Panics
///
/// Panics if the program references an undeclared array or uses an index
/// arity that does not match the array's declared dimensions — these are
/// bugs in the kernel definition, caught by the kernel test suite.
pub fn compile(program: &Program) -> Module {
    let layout = Layout::new(&program.arrays);

    let mut builder = ModuleBuilder::new();
    let total_bytes = u64::from(layout.total_elements) * 8;
    let pages = total_bytes.div_ceil(u64::from(PAGE_SIZE)).max(1) as u32;
    builder.memory(pages, Some("memory"));

    let init = builder.function("init", &[], &[], |f| {
        FunctionCompiler::new(&layout, f).stmts(&program.init);
    });
    let kernel = builder.function("kernel", &[], &[], |f| {
        FunctionCompiler::new(&layout, f).stmts(&program.kernel);
    });
    let checksum = builder.function("checksum", &[], &[ValType::F64], |f| {
        emit_checksum(&layout, f);
    });
    builder.function("main", &[], &[ValType::F64], |f| {
        f.call(init).call(kernel).call(checksum);
    });

    builder.finish()
}

/// Row-major array layout in linear memory.
#[derive(Debug)]
struct Layout {
    /// name -> (base byte offset, dims).
    arrays: HashMap<&'static str, (u32, Vec<u32>)>,
    total_elements: u32,
}

impl Layout {
    fn new(arrays: &[ArrayDecl]) -> Self {
        let mut map = HashMap::new();
        let mut offset = 0u32;
        for array in arrays {
            map.insert(array.name, (offset, array.dims.clone()));
            offset += array.len() * 8;
        }
        Layout {
            arrays: map,
            total_elements: offset / 8,
        }
    }

    fn lookup(&self, name: &str) -> (u32, &[u32]) {
        let (base, dims) = self
            .arrays
            .get(name)
            .unwrap_or_else(|| panic!("kernel references undeclared array {name:?}"));
        (*base, dims)
    }
}

struct FunctionCompiler<'a, 'b> {
    layout: &'a Layout,
    f: &'a mut FunctionBuilder,
    int_vars: HashMap<&'static str, Idx<LocalSpace>>,
    float_vars: HashMap<&'static str, Idx<LocalSpace>>,
    _marker: std::marker::PhantomData<&'b ()>,
}

impl<'a> FunctionCompiler<'a, '_> {
    fn new(layout: &'a Layout, f: &'a mut FunctionBuilder) -> Self {
        FunctionCompiler {
            layout,
            f,
            int_vars: HashMap::new(),
            float_vars: HashMap::new(),
            _marker: std::marker::PhantomData,
        }
    }

    fn int_var(&mut self, name: &'static str) -> Idx<LocalSpace> {
        if let Some(&idx) = self.int_vars.get(name) {
            return idx;
        }
        let idx = self.f.local(ValType::I32);
        self.int_vars.insert(name, idx);
        idx
    }

    fn float_var(&mut self, name: &'static str) -> Idx<LocalSpace> {
        if let Some(&idx) = self.float_vars.get(name) {
            return idx;
        }
        let idx = self.f.local(ValType::F64);
        self.float_vars.insert(name, idx);
        idx
    }

    fn stmts(&mut self, stmts: &[Stmt]) {
        for stmt in stmts {
            self.stmt(stmt);
        }
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::For { var, lo, hi, body } => {
                let i = self.int_var(var);
                self.iexpr(lo);
                self.f.set_local(i);
                self.f.block(None).loop_(None);
                self.f.get_local(i);
                self.iexpr(hi);
                self.f.binary(BinaryOp::I32GeS).br_if(1);
                self.stmts(body);
                self.f.get_local(i).i32_const(1).i32_add().set_local(i);
                self.f.br(0).end().end();
            }
            Stmt::ForRev { var, lo, hi, body } => {
                let i = self.int_var(var);
                self.iexpr(hi);
                self.f.i32_const(1).i32_sub().set_local(i);
                self.f.block(None).loop_(None);
                self.f.get_local(i);
                self.iexpr(lo);
                self.f.binary(BinaryOp::I32LtS).br_if(1);
                self.stmts(body);
                self.f.get_local(i).i32_const(1).i32_sub().set_local(i);
                self.f.br(0).end().end();
            }
            Stmt::Store {
                array,
                index,
                value,
            } => {
                let offset = self.address(array, index);
                self.fexpr(value);
                self.f.store(StoreOp::F64Store, offset);
            }
            Stmt::Set { name, value } => {
                // Evaluate before (possibly) allocating the target local so
                // reads of the same scalar resolve consistently.
                self.fexpr(value);
                let idx = self.float_var(name);
                self.f.set_local(idx);
            }
            Stmt::If { cond, then, else_ } => {
                self.cond(cond);
                self.f.if_(None);
                self.stmts(then);
                if !else_.is_empty() {
                    self.f.else_();
                    self.stmts(else_);
                }
                self.f.end();
            }
        }
    }

    /// Push the dynamic element address (in bytes) and return the constant
    /// byte offset (the array base) to fold into the memarg.
    fn address(&mut self, array: &'static str, index: &[IExpr]) -> u32 {
        let (base, dims) = self.layout.lookup(array);
        assert_eq!(
            index.len(),
            dims.len(),
            "array {array:?} indexed with wrong arity"
        );
        let dims = dims.to_vec();
        // Linear index: ((i0 * d1 + i1) * d2 + i2) ...
        self.iexpr(&index[0]);
        for (k, idx) in index.iter().enumerate().skip(1) {
            self.f.i32_const(dims[k] as i32);
            self.f.i32_mul();
            self.iexpr(idx);
            self.f.i32_add();
        }
        self.f.i32_const(8).i32_mul();
        base
    }

    fn iexpr(&mut self, expr: &IExpr) {
        match expr {
            IExpr::Const(value) => {
                self.f.i32_const(*value);
            }
            IExpr::Var(name) => {
                let idx = self.int_var(name);
                self.f.get_local(idx);
            }
            IExpr::Add(a, b) => {
                self.iexpr(a);
                self.iexpr(b);
                self.f.i32_add();
            }
            IExpr::Sub(a, b) => {
                self.iexpr(a);
                self.iexpr(b);
                self.f.i32_sub();
            }
            IExpr::Mul(a, b) => {
                self.iexpr(a);
                self.iexpr(b);
                self.f.i32_mul();
            }
            IExpr::DivC(a, divisor) => {
                assert!(*divisor > 0, "DivC requires a positive constant");
                self.iexpr(a);
                self.f.i32_const(*divisor);
                self.f.binary(BinaryOp::I32DivS);
            }
            IExpr::RemC(a, divisor) => {
                assert!(*divisor > 0, "RemC requires a positive constant");
                self.iexpr(a);
                self.f.i32_const(*divisor);
                self.f.binary(BinaryOp::I32RemS);
            }
        }
    }

    fn fexpr(&mut self, expr: &FExpr) {
        match expr {
            FExpr::Const(value) => {
                self.f.f64_const(*value);
            }
            FExpr::Scalar(name) => {
                let idx = self.float_var(name);
                self.f.get_local(idx);
            }
            FExpr::Load(array, index) => {
                let offset = self.address(array, index);
                self.f.load(LoadOp::F64Load, offset);
            }
            FExpr::Add(a, b) => {
                self.fexpr(a);
                self.fexpr(b);
                self.f.f64_add();
            }
            FExpr::Sub(a, b) => {
                self.fexpr(a);
                self.fexpr(b);
                self.f.f64_sub();
            }
            FExpr::Mul(a, b) => {
                self.fexpr(a);
                self.fexpr(b);
                self.f.f64_mul();
            }
            FExpr::Div(a, b) => {
                self.fexpr(a);
                self.fexpr(b);
                self.f.f64_div();
            }
            FExpr::Sqrt(a) => {
                self.fexpr(a);
                self.f.unary(UnaryOp::F64Sqrt);
            }
            FExpr::Abs(a) => {
                self.fexpr(a);
                self.f.unary(UnaryOp::F64Abs);
            }
            FExpr::Min(a, b) => {
                self.fexpr(a);
                self.fexpr(b);
                self.f.binary(BinaryOp::F64Min);
            }
            FExpr::Max(a, b) => {
                self.fexpr(a);
                self.fexpr(b);
                self.f.binary(BinaryOp::F64Max);
            }
            FExpr::FromInt(e) => {
                self.iexpr(e);
                self.f.unary(UnaryOp::F64ConvertSI32);
            }
        }
    }

    fn cond(&mut self, cond: &Cond) {
        let (a, b, op) = match cond {
            Cond::Lt(a, b) => (a, b, BinaryOp::I32LtS),
            Cond::Le(a, b) => (a, b, BinaryOp::I32LeS),
            Cond::Gt(a, b) => (a, b, BinaryOp::I32GtS),
            Cond::Ge(a, b) => (a, b, BinaryOp::I32GeS),
            Cond::Eq(a, b) => (a, b, BinaryOp::I32Eq),
            Cond::Ne(a, b) => (a, b, BinaryOp::I32Ne),
            Cond::FLt(a, b) | Cond::FLe(a, b) | Cond::FEq(a, b) => {
                self.fexpr(a);
                self.fexpr(b);
                self.f.binary(match cond {
                    Cond::FLt(..) => BinaryOp::F64Lt,
                    Cond::FLe(..) => BinaryOp::F64Le,
                    _ => BinaryOp::F64Eq,
                });
                return;
            }
        };
        self.iexpr(a);
        self.iexpr(b);
        self.f.binary(op);
    }
}

/// Sum of all array elements, the stand-in for PolyBench's `print_array`.
fn emit_checksum(layout: &Layout, f: &mut FunctionBuilder) {
    let acc = f.local(ValType::F64);
    let i = f.local(ValType::I32);
    let total = layout.total_elements as i32;
    f.i32_const(0).set_local(i);
    f.block(None).loop_(None);
    f.get_local(i)
        .i32_const(total)
        .binary(BinaryOp::I32GeS)
        .br_if(1);
    f.get_local(acc);
    f.get_local(i).i32_const(8).i32_mul();
    f.load(LoadOp::F64Load, 0);
    f.f64_add().set_local(acc);
    f.get_local(i).i32_const(1).i32_add().set_local(i);
    f.br(0).end().end();
    f.get_local(acc);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use wasabi_vm::{EmptyHost, Instance};
    use wasabi_wasm::validate::validate;

    fn run_main(module: Module) -> f64 {
        let mut host = EmptyHost;
        let mut instance = Instance::instantiate(module, &mut host).expect("instantiates");
        let results = instance
            .invoke_export("main", &[], &mut host)
            .expect("runs");
        results[0].as_f64().expect("f64 checksum")
    }

    /// `A[i] = i+1` for i in 0..4 → checksum 1+2+3+4 = 10.
    #[test]
    fn simple_init_sums() {
        let program = Program {
            name: "simple",
            arrays: vec![Program::array("A", &[4])],
            init: vec![for_(
                "i",
                c(0),
                c(4),
                vec![store("A", [v("i")], int(v("i") + c(1)))],
            )],
            kernel: vec![],
        };
        let module = compile(&program);
        validate(&module).expect("compiled module is valid");
        assert_eq!(run_main(module), 10.0);
    }

    /// Matrix sum C = A + B over 3x3 with A=1, B=2 everywhere → 27.
    #[test]
    fn two_dimensional_arrays() {
        let program = Program {
            name: "matsum",
            arrays: vec![
                Program::array("A", &[3, 3]),
                Program::array("B", &[3, 3]),
                Program::array("C", &[3, 3]),
            ],
            init: vec![for_(
                "i",
                c(0),
                c(3),
                vec![for_(
                    "j",
                    c(0),
                    c(3),
                    vec![
                        store("A", [v("i"), v("j")], fc(1.0)),
                        store("B", [v("i"), v("j")], fc(2.0)),
                    ],
                )],
            )],
            kernel: vec![for_(
                "i",
                c(0),
                c(3),
                vec![for_(
                    "j",
                    c(0),
                    c(3),
                    vec![store(
                        "C",
                        [v("i"), v("j")],
                        ld("A", [v("i"), v("j")]) + ld("B", [v("i"), v("j")]),
                    )],
                )],
            )],
        };
        let module = compile(&program);
        validate(&module).expect("valid");
        // A contributes 9, B contributes 18, C contributes 27.
        assert_eq!(run_main(module), 9.0 + 18.0 + 27.0);
    }

    #[test]
    fn reverse_loops_and_conditionals() {
        // A[i] = (i >= 2) ? 5 : 1, filled by a downward loop.
        let program = Program {
            name: "rev",
            arrays: vec![Program::array("A", &[4])],
            init: vec![],
            kernel: vec![for_rev(
                "i",
                c(0),
                c(4),
                vec![if_(
                    Cond::Ge(v("i"), c(2)),
                    vec![store("A", [v("i")], fc(5.0))],
                    vec![store("A", [v("i")], fc(1.0))],
                )],
            )],
        };
        assert_eq!(run_main(compile(&program)), 5.0 + 5.0 + 1.0 + 1.0);
    }

    #[test]
    fn scalars_accumulate() {
        // s = 0; for i in 0..5 { s = s + i }; A[0] = s
        let program = Program {
            name: "scalars",
            arrays: vec![Program::array("A", &[1])],
            init: vec![],
            kernel: vec![
                set("s", fc(0.0)),
                for_("i", c(0), c(5), vec![set("s", sc("s") + int(v("i")))]),
                store("A", [c(0)], sc("s")),
            ],
        };
        assert_eq!(run_main(compile(&program)), 10.0);
    }

    #[test]
    fn min_max_sqrt() {
        let program = Program {
            name: "mms",
            arrays: vec![Program::array("A", &[3])],
            init: vec![],
            kernel: vec![
                store("A", [c(0)], min(fc(3.0), fc(7.0))),
                store("A", [c(1)], max(fc(3.0), fc(7.0))),
                store("A", [c(2)], sqrt(fc(16.0))),
            ],
        };
        assert_eq!(run_main(compile(&program)), 3.0 + 7.0 + 4.0);
    }

    #[test]
    fn invalid_array_reference_panics() {
        let program = Program {
            name: "bad",
            arrays: vec![],
            init: vec![],
            kernel: vec![store("missing", [c(0)], fc(1.0))],
        };
        let result = std::panic::catch_unwind(|| compile(&program));
        assert!(result.is_err());
    }

    #[test]
    fn triangular_loop_bounds() {
        // Lower-triangular fill: for i in 0..4, j in 0..=i.
        let program = Program {
            name: "tri",
            arrays: vec![Program::array("L", &[4, 4])],
            init: vec![],
            kernel: vec![for_(
                "i",
                c(0),
                c(4),
                vec![for_(
                    "j",
                    c(0),
                    v("i") + c(1),
                    vec![store("L", [v("i"), v("j")], fc(1.0))],
                )],
            )],
        };
        assert_eq!(run_main(compile(&program)), 10.0); // 1+2+3+4 entries
    }
}
