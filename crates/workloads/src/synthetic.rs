//! Deterministic generators for application-like WebAssembly binaries.
//!
//! The paper's two real-world subjects — PSPDFKit (9.5 MB) and the Unreal
//! Engine 4 Zen Garden demo (39.5 MB) — are closed-source. These generators
//! produce binaries with the *properties the paper's evaluation relies on*
//! (DESIGN.md §3): multi-megabyte size, thousands of functions, a diverse
//! instruction mix with more calls and branches than PolyBench, indirect
//! calls through a table, data segments, and a function with 22 i32
//! parameters (the §4.5 argument against eager monomorphization).
//!
//! Generation is seeded and fully deterministic.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wasabi_wasm::builder::{FunctionBuilder, ModuleBuilder};
use wasabi_wasm::instr::{BinaryOp, FunctionSpace, Idx, UnaryOp};
use wasabi_wasm::module::Module;
use wasabi_wasm::types::ValType;
use wasabi_wasm::{LoadOp, StoreOp};

/// Configuration for [`synthetic_app`].
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// RNG seed; equal seeds give byte-identical modules.
    pub seed: u64,
    /// Number of generated functions.
    pub function_count: usize,
    /// Average number of statements per function body.
    pub body_statements: usize,
}

impl SyntheticConfig {
    /// A small app for tests (a few dozen KB).
    pub fn small() -> Self {
        SyntheticConfig {
            seed: 0x5EED,
            function_count: 64,
            body_statements: 12,
        }
    }

    /// Sized like the paper's PSPDFKit subject (~9.5 MB binary).
    pub fn pspdfkit_like() -> Self {
        SyntheticConfig {
            seed: 0x9D_F1,
            function_count: 21_000,
            body_statements: 24,
        }
    }

    /// Sized like the paper's Unreal Engine 4 subject (~39.5 MB binary).
    pub fn unreal_like() -> Self {
        SyntheticConfig {
            seed: 0x04E4,
            function_count: 88_000,
            body_statements: 24,
        }
    }

    /// Scale the function count so the encoded binary is roughly
    /// `target_bytes` (same statement mix).
    pub fn with_target_bytes(mut self, target_bytes: usize) -> Self {
        // Empirical: ~450 encoded bytes per generated function with the
        // default statement count.
        let per_function = 19 * self.body_statements + 10;
        self.function_count = (target_bytes / per_function).max(4);
        self
    }
}

/// Generate an application-like module per `config`.
///
/// The module exports `main() -> i32`, which deterministically exercises a
/// sample of the generated functions (the call graph is a DAG, so execution
/// always terminates; all division and memory accesses are guarded).
pub fn synthetic_app(config: &SyntheticConfig) -> Module {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut builder = ModuleBuilder::new();
    builder.memory(16, Some("memory"));

    // String-table-like data segments (apps carry lots of static data).
    let mut blob = Vec::new();
    for i in 0..256u32 {
        blob.extend_from_slice(format!("sym_{i:04x}\0").as_bytes());
    }
    builder.data(4096, blob);

    let globals = [
        builder.global(wasabi_wasm::Val::I32(0)),
        builder.global(wasabi_wasm::Val::I64(1)),
        builder.global(wasabi_wasm::Val::F64(1.5)),
    ];

    let mut functions: Vec<(Idx<FunctionSpace>, Vec<ValType>, Vec<ValType>)> = Vec::new();

    // The §4.5 motivating case: one function taking 22 i32 arguments.
    let many_args = builder.function("", &[ValType::I32; 22], &[ValType::I32], |f| {
        f.get_local(0u32);
        for i in 1..22u32 {
            f.get_local(i).i32_add();
        }
    });
    functions.push((many_args, vec![ValType::I32; 22], vec![ValType::I32]));

    for index in 0..config.function_count {
        let param_count = rng.gen_range(0..6);
        let params: Vec<ValType> = (0..param_count)
            .map(|_| *pick(&mut rng, &ValType::ALL))
            .collect();
        let results = if rng.gen_bool(0.7) {
            vec![ValType::I32]
        } else {
            vec![]
        };
        let callees: Vec<(Idx<FunctionSpace>, Vec<ValType>, Vec<ValType>)> = functions.clone();
        let params_for_body = params.clone();
        let results_for_body = results.clone();
        let statements = config.body_statements.max(1);
        let seed = rng.r#gen::<u64>();
        let export = if index % 97 == 0 {
            format!("entry_{index}")
        } else {
            String::new()
        };
        let idx = builder.function(&export, &params, &results, move |f| {
            let mut body_rng = SmallRng::seed_from_u64(seed);
            emit_body(
                f,
                &mut body_rng,
                &params_for_body,
                &results_for_body,
                &callees,
                statements,
            );
        });
        functions.push((idx, params, results));
    }

    // Table with a sample of i32-returning nullary functions for indirect
    // calls from main.
    let table_targets: Vec<Idx<FunctionSpace>> = functions
        .iter()
        .filter(|(_, params, results)| params.is_empty() && results == &[ValType::I32])
        .map(|(idx, _, _)| *idx)
        .take(16)
        .collect();
    if !table_targets.is_empty() {
        builder.table(table_targets.len() as u32);
        builder.elements(0, table_targets.clone());
    }

    let main_targets: Vec<(Idx<FunctionSpace>, Vec<ValType>)> = functions
        .iter()
        .filter(|(_, _, results)| results == &[ValType::I32])
        .map(|(idx, params, _)| (*idx, params.clone()))
        .take(12)
        .collect();
    let indirect_count = table_targets.len() as i32;
    builder.function("main", &[], &[ValType::I32], move |f| {
        let acc = f.local(ValType::I32);
        for (idx, params) in &main_targets {
            for &p in params {
                push_zero(f, p);
            }
            f.call(*idx);
            f.get_local(acc).i32_add().set_local(acc);
        }
        for slot in 0..indirect_count {
            f.i32_const(slot);
            f.call_indirect(&[], &[ValType::I32]);
            f.get_local(acc).i32_add().set_local(acc);
        }
        // Touch the globals so they appear in executions too.
        f.get_global(globals[0])
            .get_local(acc)
            .i32_add()
            .set_global(globals[0]);
        f.get_local(acc);
    });

    builder.finish()
}

fn pick<'a, T>(rng: &mut SmallRng, items: &'a [T]) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

fn push_zero(f: &mut FunctionBuilder, ty: ValType) {
    match ty {
        ValType::I32 => f.i32_const(0),
        ValType::I64 => f.i64_const(0),
        ValType::F32 => f.f32_const(0.0),
        ValType::F64 => f.f64_const(0.0),
    };
}

/// Emit a function body as a sequence of stack-neutral statements with an
/// app-like mix: calls, branches, memory traffic, and diverse numeric ops.
fn emit_body(
    f: &mut FunctionBuilder,
    rng: &mut SmallRng,
    params: &[ValType],
    results: &[ValType],
    callees: &[(Idx<FunctionSpace>, Vec<ValType>, Vec<ValType>)],
    statements: usize,
) {
    let scratch_i32 = f.local(ValType::I32);
    let scratch_i64 = f.local(ValType::I64);
    let scratch_f64 = f.local(ValType::F64);

    for _ in 0..statements {
        match rng.gen_range(0..100) {
            // Integer arithmetic chain (apps: index math, flags).
            0..=17 => {
                let op = *pick(
                    rng,
                    &[
                        BinaryOp::I32Add,
                        BinaryOp::I32Sub,
                        BinaryOp::I32Mul,
                        BinaryOp::I32And,
                        BinaryOp::I32Or,
                        BinaryOp::I32Xor,
                        BinaryOp::I32Shl,
                        BinaryOp::I32ShrU,
                        BinaryOp::I32LtS,
                        BinaryOp::I32Eq,
                    ],
                );
                f.get_local(scratch_i32)
                    .i32_const(rng.gen_range(-1000..1000))
                    .binary(op)
                    .set_local(scratch_i32);
            }
            // i64 mixing (hash-like code paths).
            18..=25 => {
                let op = *pick(
                    rng,
                    &[
                        BinaryOp::I64Add,
                        BinaryOp::I64Mul,
                        BinaryOp::I64Xor,
                        BinaryOp::I64Rotl,
                    ],
                );
                f.get_local(scratch_i64)
                    .i64_const(rng.r#gen::<i64>() | 1)
                    .binary(op)
                    .set_local(scratch_i64);
            }
            // Float math (layout, rendering).
            26..=35 => {
                let op = *pick(
                    rng,
                    &[
                        BinaryOp::F64Add,
                        BinaryOp::F64Mul,
                        BinaryOp::F64Sub,
                        BinaryOp::F64Max,
                    ],
                );
                f.get_local(scratch_f64)
                    .f64_const(rng.gen_range(-8.0..8.0))
                    .binary(op)
                    .set_local(scratch_f64);
                if rng.gen_bool(0.3) {
                    f.get_local(scratch_f64)
                        .unary(UnaryOp::F64Abs)
                        .unary(UnaryOp::F64Sqrt)
                        .set_local(scratch_f64);
                }
            }
            // Memory traffic at guarded addresses.
            36..=50 => {
                let addr = rng.gen_range(0..8192i32) & !7;
                if rng.gen_bool(0.5) {
                    f.i32_const(addr)
                        .get_local(scratch_i32)
                        .store(StoreOp::I32Store, 0);
                } else {
                    f.i32_const(addr)
                        .load(LoadOp::I32Load, 0)
                        .get_local(scratch_i32)
                        .i32_add()
                        .set_local(scratch_i32);
                }
            }
            // Direct call into the existing DAG.
            51..=66 if !callees.is_empty() => {
                let (idx, params, results) = pick(rng, callees).clone();
                for &p in &params {
                    push_zero(f, p);
                }
                f.call(idx);
                for _ in &results {
                    f.drop_();
                }
            }
            // Conditional on a parameter or scratch value.
            67..=78 => {
                if params.first() == Some(&ValType::I32) {
                    f.get_local(0u32);
                } else {
                    f.get_local(scratch_i32);
                }
                f.i32_const(rng.gen_range(0..4)).binary(BinaryOp::I32GtS);
                f.if_(None);
                f.get_local(scratch_i32)
                    .i32_const(1)
                    .i32_add()
                    .set_local(scratch_i32);
                f.else_();
                f.get_local(scratch_i32)
                    .i32_const(1)
                    .i32_sub()
                    .set_local(scratch_i32);
                f.end();
            }
            // br_table dispatch (switch statements).
            79..=85 => {
                let arms = rng.gen_range(2..5u32);
                for _ in 0..=arms {
                    f.block(None);
                }
                f.get_local(scratch_i32)
                    .i32_const(7)
                    .binary(BinaryOp::I32And);
                f.br_table((0..arms).collect(), arms);
                f.end();
                for arm in 0..arms {
                    f.get_local(scratch_i32)
                        .i32_const(arm as i32)
                        .i32_add()
                        .set_local(scratch_i32);
                    f.end();
                }
            }
            // Bounded loop.
            86..=92 => {
                let iterations = rng.gen_range(1..5);
                let counter = f.local(ValType::I32);
                f.i32_const(0).set_local(counter);
                f.block(None).loop_(None);
                f.get_local(counter)
                    .i32_const(iterations)
                    .binary(BinaryOp::I32GeS)
                    .br_if(1);
                f.get_local(scratch_i32)
                    .i32_const(3)
                    .i32_mul()
                    .i32_const(1)
                    .i32_add()
                    .set_local(scratch_i32);
                f.get_local(counter)
                    .i32_const(1)
                    .i32_add()
                    .set_local(counter);
                f.br(0).end().end();
            }
            // select / drop / globals.
            _ => {
                f.get_local(scratch_i32)
                    .i32_const(5)
                    .get_local(scratch_i32)
                    .select();
                f.set_local(scratch_i32);
                if rng.gen_bool(0.3) {
                    f.get_global(0u32).drop_();
                }
            }
        }
    }

    for &r in results {
        match r {
            ValType::I32 => f.get_local(scratch_i32),
            ValType::I64 => f.get_local(scratch_i64),
            ValType::F64 => f.get_local(scratch_f64),
            ValType::F32 => f.f32_const(0.0),
        };
    }
}

/// A hash-round-like mining kernel (xor/shift/add/and in a hot loop),
/// the subject of the cryptominer-detection example (paper Fig. 1).
pub fn miner(rounds: i32) -> Module {
    let mut builder = ModuleBuilder::new();
    builder.function("mine", &[], &[ValType::I32], |f| {
        let h = f.local(ValType::I32);
        let i = f.local(ValType::I32);
        f.i32_const(0x6a09_e667u32 as i32).set_local(h);
        f.block(None).loop_(None);
        f.get_local(i)
            .i32_const(rounds)
            .binary(BinaryOp::I32GeS)
            .br_if(1);
        f.get_local(h).i32_const(13).binary(BinaryOp::I32Shl);
        f.get_local(h).i32_const(7).binary(BinaryOp::I32ShrU);
        f.binary(BinaryOp::I32Xor);
        f.get_local(h).binary(BinaryOp::I32Add);
        f.i32_const(0x7fff_ffff).binary(BinaryOp::I32And);
        f.set_local(h);
        f.get_local(i).i32_const(1).i32_add().set_local(i);
        f.br(0).end().end();
        f.get_local(h);
    });
    builder.finish()
}

/// A module whose `main` loops forever: the adversarial workload for
/// deadline/cancellation testing — only resource governance (a deadline,
/// a cancel token, or fuel) can stop it.
pub fn spin() -> Module {
    let mut builder = ModuleBuilder::new();
    builder.function("main", &[], &[], |f| {
        f.block(None).loop_(None).br(0).end().end();
    });
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi_vm::{EmptyHost, Instance};
    use wasabi_wasm::validate::validate;

    #[test]
    fn small_app_validates_and_runs() {
        let module = synthetic_app(&SyntheticConfig::small());
        validate(&module).expect("valid");
        let mut host = EmptyHost;
        let mut instance = Instance::instantiate(module, &mut host).expect("instantiates");
        instance.set_fuel(Some(50_000_000));
        let results = instance
            .invoke_export("main", &[], &mut host)
            .expect("runs");
        assert_eq!(results.len(), 1);
    }

    #[test]
    fn spin_validates_and_only_fuel_stops_it() {
        let module = spin();
        validate(&module).expect("valid");
        let mut host = EmptyHost;
        let mut instance = Instance::instantiate(module, &mut host).expect("instantiates");
        instance.set_fuel(Some(100_000));
        instance
            .invoke_export("main", &[], &mut host)
            .expect_err("an ungoverned spin never returns; fuel must trap it");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = synthetic_app(&SyntheticConfig::small());
        let b = synthetic_app(&SyntheticConfig::small());
        assert_eq!(
            wasabi_wasm::encode::encode(&a),
            wasabi_wasm::encode::encode(&b)
        );
    }

    #[test]
    fn different_seeds_differ() {
        let mut config = SyntheticConfig::small();
        let a = synthetic_app(&config);
        config.seed += 1;
        let b = synthetic_app(&config);
        assert_ne!(
            wasabi_wasm::encode::encode(&a),
            wasabi_wasm::encode::encode(&b)
        );
    }

    #[test]
    fn contains_the_22_arg_function() {
        // Paper §4.5: "the call with the largest number of arguments passes
        // 22 i32 values".
        let module = synthetic_app(&SyntheticConfig::small());
        let max_params = module
            .functions
            .iter()
            .map(|f| f.type_.params.len())
            .max()
            .unwrap();
        assert_eq!(max_params, 22);
    }

    #[test]
    fn target_size_scaling() {
        let config = SyntheticConfig::small().with_target_bytes(400_000);
        let module = synthetic_app(&config);
        let bytes = wasabi_wasm::encode::encode(&module).len();
        assert!(
            (200_000..1_000_000).contains(&bytes),
            "got {bytes} bytes for a 400k target"
        );
    }

    #[test]
    fn miner_module_runs() {
        let module = miner(100);
        validate(&module).expect("valid");
        let mut host = EmptyHost;
        let mut instance = Instance::instantiate(module, &mut host).unwrap();
        let results = instance.invoke_export("mine", &[], &mut host).unwrap();
        assert!(results[0].as_i32().is_some());
    }
}
