//! A small loop-nest DSL for expressing PolyBench-style numeric kernels.
//!
//! The paper evaluates Wasabi on the 30 PolyBench/C programs compiled with
//! emscripten. This repository cannot ship a C compiler, so the kernels are
//! written in this DSL and compiled to WebAssembly by [`mod@crate::compile`] —
//! preserving what the paper uses PolyBench for: compute-intensive affine
//! loop nests over `f64` arrays, dominated by `local.*`, `const`, `load`,
//! `store`, and `binary` instructions (DESIGN.md §3).

use std::ops;

/// An integer (index) expression over loop variables and constants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IExpr {
    Const(i32),
    /// A loop variable.
    Var(&'static str),
    Add(Box<IExpr>, Box<IExpr>),
    Sub(Box<IExpr>, Box<IExpr>),
    Mul(Box<IExpr>, Box<IExpr>),
    /// Truncating division by a (positive) constant.
    DivC(Box<IExpr>, i32),
    /// Remainder by a (positive) constant.
    RemC(Box<IExpr>, i32),
}

/// Integer constant.
pub fn c(v: i32) -> IExpr {
    IExpr::Const(v)
}

/// Loop variable reference.
pub fn v(name: &'static str) -> IExpr {
    IExpr::Var(name)
}

/// Truncating division by a positive constant.
pub fn idiv(e: IExpr, divisor: i32) -> IExpr {
    IExpr::DivC(Box::new(e), divisor)
}

/// Remainder by a positive constant (PolyBench's `% n` init pattern).
pub fn irem(e: IExpr, divisor: i32) -> IExpr {
    IExpr::RemC(Box::new(e), divisor)
}

impl ops::Add for IExpr {
    type Output = IExpr;
    fn add(self, rhs: IExpr) -> IExpr {
        IExpr::Add(Box::new(self), Box::new(rhs))
    }
}
impl ops::Sub for IExpr {
    type Output = IExpr;
    fn sub(self, rhs: IExpr) -> IExpr {
        IExpr::Sub(Box::new(self), Box::new(rhs))
    }
}
impl ops::Mul for IExpr {
    type Output = IExpr;
    fn mul(self, rhs: IExpr) -> IExpr {
        IExpr::Mul(Box::new(self), Box::new(rhs))
    }
}

/// A floating-point (`f64`) expression.
#[derive(Debug, Clone, PartialEq)]
pub enum FExpr {
    Const(f64),
    /// A scalar `f64` variable.
    Scalar(&'static str),
    /// An array element read.
    Load(&'static str, Vec<IExpr>),
    Add(Box<FExpr>, Box<FExpr>),
    Sub(Box<FExpr>, Box<FExpr>),
    Mul(Box<FExpr>, Box<FExpr>),
    Div(Box<FExpr>, Box<FExpr>),
    Sqrt(Box<FExpr>),
    Abs(Box<FExpr>),
    Min(Box<FExpr>, Box<FExpr>),
    Max(Box<FExpr>, Box<FExpr>),
    /// Convert an index expression to `f64` (PolyBench's
    /// `(DATA_TYPE)(i+1)` pattern).
    FromInt(Box<IExpr>),
}

/// Float constant.
pub fn fc(v: f64) -> FExpr {
    FExpr::Const(v)
}

/// Scalar variable reference.
pub fn sc(name: &'static str) -> FExpr {
    FExpr::Scalar(name)
}

/// Array element read: `ld("A", [v("i"), v("j")])`.
pub fn ld(array: &'static str, index: impl Into<Vec<IExpr>>) -> FExpr {
    FExpr::Load(array, index.into())
}

/// Index-to-float conversion.
pub fn int(e: IExpr) -> FExpr {
    FExpr::FromInt(Box::new(e))
}

/// Square root.
pub fn sqrt(e: FExpr) -> FExpr {
    FExpr::Sqrt(Box::new(e))
}

/// Absolute value.
pub fn abs(e: FExpr) -> FExpr {
    FExpr::Abs(Box::new(e))
}

/// Minimum (used by floyd-warshall).
pub fn min(a: FExpr, b: FExpr) -> FExpr {
    FExpr::Min(Box::new(a), Box::new(b))
}

/// Maximum (used by nussinov).
pub fn max(a: FExpr, b: FExpr) -> FExpr {
    FExpr::Max(Box::new(a), Box::new(b))
}

impl ops::Add for FExpr {
    type Output = FExpr;
    fn add(self, rhs: FExpr) -> FExpr {
        FExpr::Add(Box::new(self), Box::new(rhs))
    }
}
impl ops::Sub for FExpr {
    type Output = FExpr;
    fn sub(self, rhs: FExpr) -> FExpr {
        FExpr::Sub(Box::new(self), Box::new(rhs))
    }
}
impl ops::Mul for FExpr {
    type Output = FExpr;
    fn mul(self, rhs: FExpr) -> FExpr {
        FExpr::Mul(Box::new(self), Box::new(rhs))
    }
}
impl ops::Div for FExpr {
    type Output = FExpr;
    fn div(self, rhs: FExpr) -> FExpr {
        FExpr::Div(Box::new(self), Box::new(rhs))
    }
}

/// A comparison condition over indices or `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    Lt(IExpr, IExpr),
    Le(IExpr, IExpr),
    Gt(IExpr, IExpr),
    Ge(IExpr, IExpr),
    Eq(IExpr, IExpr),
    Ne(IExpr, IExpr),
    /// `f64` comparisons (correlation's stddev guard, nussinov's match).
    FLt(FExpr, FExpr),
    FLe(FExpr, FExpr),
    FEq(FExpr, FExpr),
}

/// A statement of the kernel language.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `for var in lo..hi { body }` (upward, exclusive upper bound).
    For {
        var: &'static str,
        lo: IExpr,
        hi: IExpr,
        body: Vec<Stmt>,
    },
    /// `for var in (lo..hi).rev() { body }` (downward, starts at `hi - 1`,
    /// ends at `lo` inclusive).
    ForRev {
        var: &'static str,
        lo: IExpr,
        hi: IExpr,
        body: Vec<Stmt>,
    },
    /// `array[index...] = value`.
    Store {
        array: &'static str,
        index: Vec<IExpr>,
        value: FExpr,
    },
    /// `scalar = value`.
    Set { name: &'static str, value: FExpr },
    /// `if cond { then } else { else_ }`.
    If {
        cond: Cond,
        then: Vec<Stmt>,
        else_: Vec<Stmt>,
    },
}

/// `for var in lo..hi { body }`.
pub fn for_(var: &'static str, lo: IExpr, hi: IExpr, body: Vec<Stmt>) -> Stmt {
    Stmt::For { var, lo, hi, body }
}

/// Downward loop from `hi - 1` to `lo` inclusive.
pub fn for_rev(var: &'static str, lo: IExpr, hi: IExpr, body: Vec<Stmt>) -> Stmt {
    Stmt::ForRev { var, lo, hi, body }
}

/// `array[index...] = value`.
pub fn store(array: &'static str, index: impl Into<Vec<IExpr>>, value: FExpr) -> Stmt {
    Stmt::Store {
        array,
        index: index.into(),
        value,
    }
}

/// `scalar = value`.
pub fn set(name: &'static str, value: FExpr) -> Stmt {
    Stmt::Set { name, value }
}

/// Two-armed conditional.
pub fn if_(cond: Cond, then: Vec<Stmt>, else_: Vec<Stmt>) -> Stmt {
    Stmt::If { cond, then, else_ }
}

/// An array declaration: name and dimension extents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    pub name: &'static str,
    pub dims: Vec<u32>,
}

impl ArrayDecl {
    /// Total number of `f64` elements.
    pub fn len(&self) -> u32 {
        self.dims.iter().product()
    }

    /// `true` if any dimension is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A complete kernel program: arrays, an initialization phase, and the
/// kernel loops (mirroring PolyBench's `init_array` + `kernel_*` split).
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub name: &'static str,
    pub arrays: Vec<ArrayDecl>,
    pub init: Vec<Stmt>,
    pub kernel: Vec<Stmt>,
}

impl Program {
    /// Declare an array helper.
    pub fn array(name: &'static str, dims: &[u32]) -> ArrayDecl {
        ArrayDecl {
            name,
            dims: dims.to_vec(),
        }
    }

    /// Total `f64` elements over all arrays.
    pub fn total_elements(&self) -> u32 {
        self.arrays.iter().map(ArrayDecl::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expression_operators_build_trees() {
        let e = v("i") * c(8) + c(16);
        assert_eq!(
            e,
            IExpr::Add(
                Box::new(IExpr::Mul(
                    Box::new(IExpr::Var("i")),
                    Box::new(IExpr::Const(8))
                )),
                Box::new(IExpr::Const(16))
            )
        );
    }

    #[test]
    fn float_expression_helpers() {
        let e = ld("A", [v("i")]) * fc(2.0) + sc("s");
        match e {
            FExpr::Add(lhs, rhs) => {
                assert!(matches!(*lhs, FExpr::Mul(..)));
                assert_eq!(*rhs, FExpr::Scalar("s"));
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn array_len() {
        let a = Program::array("A", &[4, 8]);
        assert_eq!(a.len(), 32);
        assert!(!a.is_empty());
    }
}
