//! Runtime traps and instantiation errors.

use std::error::Error;
use std::fmt;

/// A WebAssembly trap: abnormal termination of execution.
///
/// Covers every trap of the 1.0 specification plus the host-side failure
/// modes of this embedding (fuel exhaustion, host errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// The `unreachable` instruction was executed.
    Unreachable,
    /// Integer division or remainder by zero.
    IntegerDivideByZero,
    /// `i{32,64}.div_s` overflow (MIN / -1).
    IntegerOverflow,
    /// `trunc` of NaN or of a float outside the target integer range.
    InvalidConversionToInteger,
    /// Linear memory access outside the current bounds.
    OutOfBoundsMemoryAccess,
    /// `call_indirect` index outside the table.
    OutOfBoundsTableAccess,
    /// `call_indirect` hit an uninitialized table slot.
    UninitializedTableElement,
    /// `call_indirect` target has a different type than expected.
    IndirectCallTypeMismatch,
    /// Wasm call depth exceeded the interpreter limit.
    CallStackExhausted,
    /// The configured fuel budget was exhausted (host-side, not in the spec).
    OutOfFuel,
    /// The wall-clock deadline of the active [`Budget`](crate::Budget)
    /// passed (host-side, not in the spec).
    DeadlineExceeded,
    /// Execution was cancelled through a [`CancelToken`](crate::CancelToken)
    /// (host-side, not in the spec).
    Cancelled,
    /// `memory.grow` would exceed the budget's memory cap (host-side; the
    /// spec would return -1, but a governed run fails loudly instead).
    MemoryLimit,
    /// A host function failed.
    HostError(String),
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::Unreachable => f.write_str("unreachable executed"),
            Trap::IntegerDivideByZero => f.write_str("integer divide by zero"),
            Trap::IntegerOverflow => f.write_str("integer overflow"),
            Trap::InvalidConversionToInteger => f.write_str("invalid conversion to integer"),
            Trap::OutOfBoundsMemoryAccess => f.write_str("out of bounds memory access"),
            Trap::OutOfBoundsTableAccess => f.write_str("out of bounds table access"),
            Trap::UninitializedTableElement => f.write_str("uninitialized table element"),
            Trap::IndirectCallTypeMismatch => f.write_str("indirect call type mismatch"),
            Trap::CallStackExhausted => f.write_str("call stack exhausted"),
            Trap::OutOfFuel => f.write_str("fuel exhausted"),
            Trap::DeadlineExceeded => f.write_str("deadline exceeded"),
            Trap::Cancelled => f.write_str("execution cancelled"),
            Trap::MemoryLimit => f.write_str("memory limit exceeded"),
            Trap::HostError(msg) => write!(f, "host error: {msg}"),
        }
    }
}

impl Error for Trap {}

/// Why a module could not be instantiated.
#[derive(Debug, Clone, PartialEq)]
pub enum InstantiationError {
    /// The module failed validation.
    Invalid(wasabi_wasm::ValidationError),
    /// A function import could not be resolved by the host.
    UnresolvedFunctionImport { module: String, name: String },
    /// A global import could not be resolved by the host.
    UnresolvedGlobalImport { module: String, name: String },
    /// An element segment lies outside the table.
    ElementSegmentOutOfBounds,
    /// A data segment lies outside the initial memory.
    DataSegmentOutOfBounds,
    /// Running the start function trapped.
    StartTrapped(Trap),
    /// The requested export does not exist (for `invoke_export`).
    NoSuchExport(String),
}

impl fmt::Display for InstantiationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstantiationError::Invalid(e) => write!(f, "invalid module: {e}"),
            InstantiationError::UnresolvedFunctionImport { module, name } => {
                write!(f, "unresolved function import {module:?}.{name:?}")
            }
            InstantiationError::UnresolvedGlobalImport { module, name } => {
                write!(f, "unresolved global import {module:?}.{name:?}")
            }
            InstantiationError::ElementSegmentOutOfBounds => {
                f.write_str("element segment out of bounds")
            }
            InstantiationError::DataSegmentOutOfBounds => f.write_str("data segment out of bounds"),
            InstantiationError::StartTrapped(trap) => write!(f, "start function trapped: {trap}"),
            InstantiationError::NoSuchExport(name) => write!(f, "no such export {name:?}"),
        }
    }
}

impl Error for InstantiationError {}

impl From<wasabi_wasm::ValidationError> for InstantiationError {
    fn from(e: wasabi_wasm::ValidationError) -> Self {
        InstantiationError::Invalid(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trap_display() {
        assert_eq!(Trap::Unreachable.to_string(), "unreachable executed");
        assert_eq!(
            Trap::HostError("boom".into()).to_string(),
            "host error: boom"
        );
        assert_eq!(Trap::DeadlineExceeded.to_string(), "deadline exceeded");
        assert_eq!(Trap::Cancelled.to_string(), "execution cancelled");
        assert_eq!(Trap::MemoryLimit.to_string(), "memory limit exceeded");
    }

    #[test]
    fn instantiation_error_display() {
        let e = InstantiationError::UnresolvedFunctionImport {
            module: "wasabi".into(),
            name: "hook".into(),
        };
        assert!(e.to_string().contains("wasabi"));
    }
}
