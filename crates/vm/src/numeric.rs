//! Evaluation of the 123 numeric instructions with WebAssembly 1.0
//! semantics: two's-complement wrapping arithmetic, trapping division and
//! float→int truncation, IEEE 754 floats with NaN-propagating min/max and
//! round-half-to-even `nearest`.

use wasabi_wasm::instr::{BinaryOp, UnaryOp, Val};

use crate::trap::Trap;

/// Evaluate a unary numeric instruction.
///
/// # Errors
///
/// Trapping conversions ([`Trap::InvalidConversionToInteger`]) for `trunc`
/// of NaN or out-of-range floats.
///
/// # Panics
///
/// Panics if the operand type does not match the operation (callers run
/// validated code only).
pub fn unary(op: UnaryOp, v: Val) -> Result<Val, Trap> {
    use UnaryOp::*;
    macro_rules! get {
        ($as:ident) => {
            v.$as()
                .unwrap_or_else(|| panic!("unary {op} applied to {v:?}: module not validated?"))
        };
    }
    Ok(match op {
        I32Eqz => Val::I32((get!(as_i32) == 0) as i32),
        I64Eqz => Val::I32((get!(as_i64) == 0) as i32),

        I32Clz => Val::I32(get!(as_i32).leading_zeros() as i32),
        I32Ctz => Val::I32(get!(as_i32).trailing_zeros() as i32),
        I32Popcnt => Val::I32(get!(as_i32).count_ones() as i32),
        I64Clz => Val::I64(i64::from(get!(as_i64).leading_zeros())),
        I64Ctz => Val::I64(i64::from(get!(as_i64).trailing_zeros())),
        I64Popcnt => Val::I64(i64::from(get!(as_i64).count_ones())),

        F32Abs => Val::F32(get!(as_f32).abs()),
        F32Neg => Val::F32(-get!(as_f32)),
        F32Ceil => Val::F32(get!(as_f32).ceil()),
        F32Floor => Val::F32(get!(as_f32).floor()),
        F32Trunc => Val::F32(get!(as_f32).trunc()),
        F32Nearest => Val::F32(get!(as_f32).round_ties_even()),
        F32Sqrt => Val::F32(get!(as_f32).sqrt()),
        F64Abs => Val::F64(get!(as_f64).abs()),
        F64Neg => Val::F64(-get!(as_f64)),
        F64Ceil => Val::F64(get!(as_f64).ceil()),
        F64Floor => Val::F64(get!(as_f64).floor()),
        F64Trunc => Val::F64(get!(as_f64).trunc()),
        F64Nearest => Val::F64(get!(as_f64).round_ties_even()),
        F64Sqrt => Val::F64(get!(as_f64).sqrt()),

        I32WrapI64 => Val::I32(get!(as_i64) as i32),
        I64ExtendSI32 => Val::I64(i64::from(get!(as_i32))),
        I64ExtendUI32 => Val::I64(i64::from(get!(as_i32) as u32)),

        I32TruncSF32 => Val::I32(trunc_s32(f64::from(get!(as_f32)))?),
        I32TruncUF32 => Val::I32(trunc_u32(f64::from(get!(as_f32)))?),
        I32TruncSF64 => Val::I32(trunc_s32(get!(as_f64))?),
        I32TruncUF64 => Val::I32(trunc_u32(get!(as_f64))?),
        I64TruncSF32 => Val::I64(trunc_s64(f64::from(get!(as_f32)))?),
        I64TruncUF32 => Val::I64(trunc_u64(f64::from(get!(as_f32)))?),
        I64TruncSF64 => Val::I64(trunc_s64(get!(as_f64))?),
        I64TruncUF64 => Val::I64(trunc_u64(get!(as_f64))?),

        F32ConvertSI32 => Val::F32(get!(as_i32) as f32),
        F32ConvertUI32 => Val::F32(get!(as_i32) as u32 as f32),
        F32ConvertSI64 => Val::F32(get!(as_i64) as f32),
        F32ConvertUI64 => Val::F32(get!(as_i64) as u64 as f32),
        F64ConvertSI32 => Val::F64(f64::from(get!(as_i32))),
        F64ConvertUI32 => Val::F64(f64::from(get!(as_i32) as u32)),
        F64ConvertSI64 => Val::F64(get!(as_i64) as f64),
        F64ConvertUI64 => Val::F64(get!(as_i64) as u64 as f64),

        F32DemoteF64 => Val::F32(get!(as_f64) as f32),
        F64PromoteF32 => Val::F64(f64::from(get!(as_f32))),

        I32ReinterpretF32 => Val::I32(get!(as_f32).to_bits() as i32),
        I64ReinterpretF64 => Val::I64(get!(as_f64).to_bits() as i64),
        F32ReinterpretI32 => Val::F32(f32::from_bits(get!(as_i32) as u32)),
        F64ReinterpretI64 => Val::F64(f64::from_bits(get!(as_i64) as u64)),
    })
}

/// Evaluate a binary numeric instruction with operands `a` (first pushed)
/// and `b` (second pushed).
///
/// # Errors
///
/// [`Trap::IntegerDivideByZero`] and [`Trap::IntegerOverflow`] per the spec.
///
/// # Panics
///
/// Panics if operand types do not match the operation.
pub fn binary(op: BinaryOp, a: Val, b: Val) -> Result<Val, Trap> {
    use BinaryOp::*;
    match op {
        // i32 comparisons
        I32Eq | I32Ne | I32LtS | I32LtU | I32GtS | I32GtU | I32LeS | I32LeU | I32GeS | I32GeU => {
            let (x, y) = i32_pair(op, a, b);
            let r = match op {
                I32Eq => x == y,
                I32Ne => x != y,
                I32LtS => x < y,
                I32LtU => (x as u32) < (y as u32),
                I32GtS => x > y,
                I32GtU => (x as u32) > (y as u32),
                I32LeS => x <= y,
                I32LeU => (x as u32) <= (y as u32),
                I32GeS => x >= y,
                _ => (x as u32) >= (y as u32),
            };
            Ok(Val::I32(r as i32))
        }
        // i64 comparisons
        I64Eq | I64Ne | I64LtS | I64LtU | I64GtS | I64GtU | I64LeS | I64LeU | I64GeS | I64GeU => {
            let (x, y) = i64_pair(op, a, b);
            let r = match op {
                I64Eq => x == y,
                I64Ne => x != y,
                I64LtS => x < y,
                I64LtU => (x as u64) < (y as u64),
                I64GtS => x > y,
                I64GtU => (x as u64) > (y as u64),
                I64LeS => x <= y,
                I64LeU => (x as u64) <= (y as u64),
                I64GeS => x >= y,
                _ => (x as u64) >= (y as u64),
            };
            Ok(Val::I32(r as i32))
        }
        // float comparisons
        F32Eq | F32Ne | F32Lt | F32Gt | F32Le | F32Ge => {
            let (x, y) = f32_pair(op, a, b);
            let r = match op {
                F32Eq => x == y,
                F32Ne => x != y,
                F32Lt => x < y,
                F32Gt => x > y,
                F32Le => x <= y,
                _ => x >= y,
            };
            Ok(Val::I32(r as i32))
        }
        F64Eq | F64Ne | F64Lt | F64Gt | F64Le | F64Ge => {
            let (x, y) = f64_pair(op, a, b);
            let r = match op {
                F64Eq => x == y,
                F64Ne => x != y,
                F64Lt => x < y,
                F64Gt => x > y,
                F64Le => x <= y,
                _ => x >= y,
            };
            Ok(Val::I32(r as i32))
        }
        // i32 arithmetic
        I32Add | I32Sub | I32Mul | I32And | I32Or | I32Xor | I32Shl | I32ShrS | I32ShrU
        | I32Rotl | I32Rotr => {
            let (x, y) = i32_pair(op, a, b);
            let r = match op {
                I32Add => x.wrapping_add(y),
                I32Sub => x.wrapping_sub(y),
                I32Mul => x.wrapping_mul(y),
                I32And => x & y,
                I32Or => x | y,
                I32Xor => x ^ y,
                I32Shl => x.wrapping_shl(y as u32),
                I32ShrS => x.wrapping_shr(y as u32),
                I32ShrU => ((x as u32).wrapping_shr(y as u32)) as i32,
                I32Rotl => x.rotate_left((y as u32) % 32),
                _ => x.rotate_right((y as u32) % 32),
            };
            Ok(Val::I32(r))
        }
        I32DivS => {
            let (x, y) = i32_pair(op, a, b);
            if y == 0 {
                Err(Trap::IntegerDivideByZero)
            } else if x == i32::MIN && y == -1 {
                Err(Trap::IntegerOverflow)
            } else {
                Ok(Val::I32(x.wrapping_div(y)))
            }
        }
        I32DivU => {
            let (x, y) = i32_pair(op, a, b);
            if y == 0 {
                Err(Trap::IntegerDivideByZero)
            } else {
                Ok(Val::I32(((x as u32) / (y as u32)) as i32))
            }
        }
        I32RemS => {
            let (x, y) = i32_pair(op, a, b);
            if y == 0 {
                Err(Trap::IntegerDivideByZero)
            } else {
                Ok(Val::I32(x.wrapping_rem(y)))
            }
        }
        I32RemU => {
            let (x, y) = i32_pair(op, a, b);
            if y == 0 {
                Err(Trap::IntegerDivideByZero)
            } else {
                Ok(Val::I32(((x as u32) % (y as u32)) as i32))
            }
        }
        // i64 arithmetic
        I64Add | I64Sub | I64Mul | I64And | I64Or | I64Xor | I64Shl | I64ShrS | I64ShrU
        | I64Rotl | I64Rotr => {
            let (x, y) = i64_pair(op, a, b);
            let r = match op {
                I64Add => x.wrapping_add(y),
                I64Sub => x.wrapping_sub(y),
                I64Mul => x.wrapping_mul(y),
                I64And => x & y,
                I64Or => x | y,
                I64Xor => x ^ y,
                I64Shl => x.wrapping_shl(y as u32),
                I64ShrS => x.wrapping_shr(y as u32),
                I64ShrU => ((x as u64).wrapping_shr(y as u32)) as i64,
                I64Rotl => x.rotate_left((y as u64 % 64) as u32),
                _ => x.rotate_right((y as u64 % 64) as u32),
            };
            Ok(Val::I64(r))
        }
        I64DivS => {
            let (x, y) = i64_pair(op, a, b);
            if y == 0 {
                Err(Trap::IntegerDivideByZero)
            } else if x == i64::MIN && y == -1 {
                Err(Trap::IntegerOverflow)
            } else {
                Ok(Val::I64(x.wrapping_div(y)))
            }
        }
        I64DivU => {
            let (x, y) = i64_pair(op, a, b);
            if y == 0 {
                Err(Trap::IntegerDivideByZero)
            } else {
                Ok(Val::I64(((x as u64) / (y as u64)) as i64))
            }
        }
        I64RemS => {
            let (x, y) = i64_pair(op, a, b);
            if y == 0 {
                Err(Trap::IntegerDivideByZero)
            } else {
                Ok(Val::I64(x.wrapping_rem(y)))
            }
        }
        I64RemU => {
            let (x, y) = i64_pair(op, a, b);
            if y == 0 {
                Err(Trap::IntegerDivideByZero)
            } else {
                Ok(Val::I64(((x as u64) % (y as u64)) as i64))
            }
        }
        // f32 arithmetic
        F32Add | F32Sub | F32Mul | F32Div | F32Min | F32Max | F32Copysign => {
            let (x, y) = f32_pair(op, a, b);
            let r = match op {
                F32Add => x + y,
                F32Sub => x - y,
                F32Mul => x * y,
                F32Div => x / y,
                F32Min => fmin32(x, y),
                F32Max => fmax32(x, y),
                _ => x.copysign(y),
            };
            Ok(Val::F32(r))
        }
        // f64 arithmetic
        F64Add | F64Sub | F64Mul | F64Div | F64Min | F64Max | F64Copysign => {
            let (x, y) = f64_pair(op, a, b);
            let r = match op {
                F64Add => x + y,
                F64Sub => x - y,
                F64Mul => x * y,
                F64Div => x / y,
                F64Min => fmin64(x, y),
                F64Max => fmax64(x, y),
                _ => x.copysign(y),
            };
            Ok(Val::F64(r))
        }
    }
}

fn i32_pair(op: BinaryOp, a: Val, b: Val) -> (i32, i32) {
    match (a, b) {
        (Val::I32(x), Val::I32(y)) => (x, y),
        _ => panic!("binary {op} applied to ({a:?}, {b:?}): module not validated?"),
    }
}

fn i64_pair(op: BinaryOp, a: Val, b: Val) -> (i64, i64) {
    match (a, b) {
        (Val::I64(x), Val::I64(y)) => (x, y),
        _ => panic!("binary {op} applied to ({a:?}, {b:?}): module not validated?"),
    }
}

fn f32_pair(op: BinaryOp, a: Val, b: Val) -> (f32, f32) {
    match (a, b) {
        (Val::F32(x), Val::F32(y)) => (x, y),
        _ => panic!("binary {op} applied to ({a:?}, {b:?}): module not validated?"),
    }
}

fn f64_pair(op: BinaryOp, a: Val, b: Val) -> (f64, f64) {
    match (a, b) {
        (Val::F64(x), Val::F64(y)) => (x, y),
        _ => panic!("binary {op} applied to ({a:?}, {b:?}): module not validated?"),
    }
}

// Wasm min/max propagate NaN (unlike IEEE 754 minNum / Rust's f32::min) and
// order -0 < +0.
fn fmin32(a: f32, b: f32) -> f32 {
    if a.is_nan() || b.is_nan() {
        f32::NAN
    } else if a == b {
        if a.is_sign_negative() {
            a
        } else {
            b
        }
    } else if a < b {
        a
    } else {
        b
    }
}

fn fmax32(a: f32, b: f32) -> f32 {
    if a.is_nan() || b.is_nan() {
        f32::NAN
    } else if a == b {
        if a.is_sign_positive() {
            a
        } else {
            b
        }
    } else if a > b {
        a
    } else {
        b
    }
}

fn fmin64(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        f64::NAN
    } else if a == b {
        if a.is_sign_negative() {
            a
        } else {
            b
        }
    } else if a < b {
        a
    } else {
        b
    }
}

fn fmax64(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        f64::NAN
    } else if a == b {
        if a.is_sign_positive() {
            a
        } else {
            b
        }
    } else if a > b {
        a
    } else {
        b
    }
}

// Trapping float→int truncations. All f32 inputs are converted to f64 first
// (exact), so range checks are done once, in f64.
fn trunc_s32(v: f64) -> Result<i32, Trap> {
    if v.is_nan() {
        return Err(Trap::InvalidConversionToInteger);
    }
    let t = v.trunc();
    if t < -2147483648.0 || t > 2147483647.0 {
        return Err(Trap::InvalidConversionToInteger);
    }
    Ok(t as i32)
}

fn trunc_u32(v: f64) -> Result<i32, Trap> {
    if v.is_nan() {
        return Err(Trap::InvalidConversionToInteger);
    }
    let t = v.trunc();
    if t < 0.0 || t > 4294967295.0 {
        return Err(Trap::InvalidConversionToInteger);
    }
    Ok(t as u32 as i32)
}

fn trunc_s64(v: f64) -> Result<i64, Trap> {
    if v.is_nan() {
        return Err(Trap::InvalidConversionToInteger);
    }
    let t = v.trunc();
    // 2^63 is exactly representable; i64::MAX is not. Valid: [-2^63, 2^63).
    if t < -9223372036854775808.0 || t >= 9223372036854775808.0 {
        return Err(Trap::InvalidConversionToInteger);
    }
    Ok(t as i64)
}

fn trunc_u64(v: f64) -> Result<i64, Trap> {
    if v.is_nan() {
        return Err(Trap::InvalidConversionToInteger);
    }
    let t = v.trunc();
    if t < 0.0 || t >= 18446744073709551616.0 {
        return Err(Trap::InvalidConversionToInteger);
    }
    Ok(t as u64 as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use BinaryOp::*;
    use UnaryOp::*;

    fn un(op: UnaryOp, v: Val) -> Val {
        unary(op, v).expect("no trap")
    }

    fn bi(op: BinaryOp, a: Val, b: Val) -> Val {
        binary(op, a, b).expect("no trap")
    }

    #[test]
    fn wrapping_arithmetic() {
        assert_eq!(
            bi(I32Add, Val::I32(i32::MAX), Val::I32(1)),
            Val::I32(i32::MIN)
        );
        assert_eq!(
            bi(I32Mul, Val::I32(0x10000), Val::I32(0x10000)),
            Val::I32(0)
        );
        assert_eq!(
            bi(I64Sub, Val::I64(i64::MIN), Val::I64(1)),
            Val::I64(i64::MAX)
        );
    }

    #[test]
    fn division_traps() {
        assert_eq!(
            binary(I32DivS, Val::I32(1), Val::I32(0)),
            Err(Trap::IntegerDivideByZero)
        );
        assert_eq!(
            binary(I32DivS, Val::I32(i32::MIN), Val::I32(-1)),
            Err(Trap::IntegerOverflow)
        );
        assert_eq!(
            binary(I64RemU, Val::I64(1), Val::I64(0)),
            Err(Trap::IntegerDivideByZero)
        );
        // rem_s(MIN, -1) is 0, not a trap.
        assert_eq!(bi(I32RemS, Val::I32(i32::MIN), Val::I32(-1)), Val::I32(0));
    }

    #[test]
    fn unsigned_vs_signed_division() {
        assert_eq!(bi(I32DivS, Val::I32(-7), Val::I32(2)), Val::I32(-3));
        assert_eq!(
            bi(I32DivU, Val::I32(-7), Val::I32(2)),
            Val::I32(((u32::MAX - 6) / 2) as i32)
        );
    }

    #[test]
    fn shift_amounts_are_masked() {
        assert_eq!(bi(I32Shl, Val::I32(1), Val::I32(33)), Val::I32(2));
        assert_eq!(bi(I32ShrU, Val::I32(-1), Val::I32(32)), Val::I32(-1));
        assert_eq!(bi(I64Shl, Val::I64(1), Val::I64(65)), Val::I64(2));
    }

    #[test]
    fn shr_s_vs_shr_u() {
        assert_eq!(bi(I32ShrS, Val::I32(-8), Val::I32(1)), Val::I32(-4));
        assert_eq!(bi(I32ShrU, Val::I32(-8), Val::I32(1)), Val::I32(0x7ffffffc));
    }

    #[test]
    fn rotates() {
        assert_eq!(
            bi(I32Rotl, Val::I32(0x8000_0001u32 as i32), Val::I32(1)),
            Val::I32(3)
        );
        assert_eq!(
            bi(I32Rotr, Val::I32(3), Val::I32(1)),
            Val::I32(0x8000_0001u32 as i32)
        );
    }

    #[test]
    fn bit_counting() {
        assert_eq!(un(I32Clz, Val::I32(1)), Val::I32(31));
        assert_eq!(un(I32Ctz, Val::I32(8)), Val::I32(3));
        assert_eq!(un(I32Popcnt, Val::I32(-1)), Val::I32(32));
        assert_eq!(un(I64Clz, Val::I64(1)), Val::I64(63));
    }

    #[test]
    fn comparisons_signedness() {
        assert_eq!(bi(I32LtS, Val::I32(-1), Val::I32(0)), Val::I32(1));
        assert_eq!(bi(I32LtU, Val::I32(-1), Val::I32(0)), Val::I32(0));
        assert_eq!(bi(I64GtU, Val::I64(-1), Val::I64(1)), Val::I32(1));
    }

    #[test]
    fn float_min_max_nan_propagation() {
        let r = bi(F64Min, Val::F64(f64::NAN), Val::F64(1.0));
        assert!(r.as_f64().unwrap().is_nan());
        let r = bi(F32Max, Val::F32(1.0), Val::F32(f32::NAN));
        assert!(r.as_f32().unwrap().is_nan());
    }

    #[test]
    fn float_min_max_signed_zero() {
        assert!(bi(F64Min, Val::F64(0.0), Val::F64(-0.0))
            .as_f64()
            .unwrap()
            .is_sign_negative());
        assert!(bi(F64Max, Val::F64(0.0), Val::F64(-0.0))
            .as_f64()
            .unwrap()
            .is_sign_positive());
    }

    #[test]
    fn nearest_rounds_ties_to_even() {
        assert_eq!(un(F64Nearest, Val::F64(2.5)), Val::F64(2.0));
        assert_eq!(un(F64Nearest, Val::F64(3.5)), Val::F64(4.0));
        assert_eq!(un(F64Nearest, Val::F64(-2.5)), Val::F64(-2.0));
        assert_eq!(un(F32Nearest, Val::F32(0.5)), Val::F32(0.0));
    }

    #[test]
    fn trunc_conversions_trap() {
        assert_eq!(
            unary(I32TruncSF64, Val::F64(f64::NAN)),
            Err(Trap::InvalidConversionToInteger)
        );
        assert_eq!(
            unary(I32TruncSF64, Val::F64(2147483648.0)),
            Err(Trap::InvalidConversionToInteger)
        );
        assert_eq!(
            un(I32TruncSF64, Val::F64(2147483647.9)),
            Val::I32(2147483647)
        );
        assert_eq!(
            un(I32TruncSF64, Val::F64(-2147483648.9)),
            Val::I32(i32::MIN)
        );
        assert_eq!(
            unary(I32TruncUF64, Val::F64(-1.0)),
            Err(Trap::InvalidConversionToInteger)
        );
        assert_eq!(un(I32TruncUF64, Val::F64(-0.5)), Val::I32(0));
        assert_eq!(
            unary(I64TruncSF64, Val::F64(9.3e18)),
            Err(Trap::InvalidConversionToInteger)
        );
        assert_eq!(
            un(I64TruncSF64, Val::F64(-9223372036854775808.0)),
            Val::I64(i64::MIN)
        );
        assert_eq!(
            un(I64TruncUF64, Val::F64(18446744073709549568.0)),
            Val::I64(-2048)
        );
    }

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(un(I64ExtendSI32, Val::I32(-1)), Val::I64(-1));
        assert_eq!(un(I64ExtendUI32, Val::I32(-1)), Val::I64(0xffff_ffff));
        assert_eq!(un(I32WrapI64, Val::I64(0x1_0000_0002)), Val::I32(2));
        assert_eq!(un(F64ConvertUI32, Val::I32(-1)), Val::F64(4294967295.0));
        assert_eq!(
            un(F32ConvertSI64, Val::I64(1 << 40)),
            Val::F32(1.0995116e12)
        );
    }

    #[test]
    fn reinterpret_is_bit_preserving() {
        let v = Val::F64(-0.0);
        let bits = un(I64ReinterpretF64, v);
        assert_eq!(bits, Val::I64(i64::MIN));
        assert_eq!(un(F64ReinterpretI64, bits), v);
        let v32 = Val::F32(f32::NAN);
        let b32 = un(I32ReinterpretF32, v32);
        assert_eq!(un(F32ReinterpretI32, b32), v32);
    }

    #[test]
    fn copysign() {
        assert_eq!(
            bi(F64Copysign, Val::F64(3.0), Val::F64(-1.0)),
            Val::F64(-3.0)
        );
        assert_eq!(
            bi(F32Copysign, Val::F32(-3.0), Val::F32(1.0)),
            Val::F32(3.0)
        );
    }

    #[test]
    fn eqz() {
        assert_eq!(un(I32Eqz, Val::I32(0)), Val::I32(1));
        assert_eq!(un(I32Eqz, Val::I32(5)), Val::I32(0));
        assert_eq!(un(I64Eqz, Val::I64(0)), Val::I32(1));
    }

    #[test]
    fn all_ops_evaluable_on_zero_inputs() {
        // Smoke test: every numeric instruction accepts zero operands of its
        // declared type (division traps are expected).
        for &op in UnaryOp::ALL {
            let _ = unary(op, Val::zero(op.input()));
        }
        for &op in BinaryOp::ALL {
            let _ = binary(op, Val::zero(op.input()), Val::zero(op.input()));
        }
    }
}
