//! # wasabi-vm — WebAssembly execution substrate
//!
//! A from-scratch interpreter for WebAssembly 1.0, playing the role of the
//! browser engine (Firefox in the paper's evaluation) for the Wasabi
//! reproduction. Instrumented binaries import hook functions; the [`host`]
//! module is the boundary where those imports call back into Rust — the
//! analogue of the JavaScript host environment.
//!
//! The interpreter:
//!
//! - executes a **flat, pre-translated IR** ([`TranslatedModule`]): each
//!   function body is translated once into a dense op stream with resolved
//!   branch targets, arities, and unwind heights, plus fused
//!   superinstructions — no label stack or `end`/`else` bookkeeping at
//!   runtime (the previous structured-walk semantics survives as the
//!   [`mod@reference`] oracle for differential testing),
//! - executes only validated modules (instantiation validates first),
//! - implements all numeric semantics of the spec ([`numeric`]): wrapping
//!   integer arithmetic, trapping division and float→int truncation,
//!   NaN-propagating `min`/`max`, round-ties-even `nearest`,
//! - implements all traps, plus host-side fuel and call-depth limits and
//!   an optional [`Budget`] (wall-clock deadline, cooperative
//!   cancellation, memory-growth cap) polled from the hot loop,
//! - counts executed instructions ([`Instance::executed_instrs`]), which the
//!   benchmark harness uses as a deterministic cost metric alongside wall
//!   time.
//!
//! See [`Instance`] for the entry point.

pub mod budget;
mod codec;
pub mod cohort;
mod flat;
pub mod host;
pub mod interp;
pub mod memory;
pub mod numeric;
pub mod reference;
pub mod table;
pub mod trap;

pub use budget::{Budget, CancelToken, BUDGET_POLL_INTERVAL};
pub use cohort::{CohortHost, CohortRunner, RunOutcome, DEFAULT_COHORT_CHUNK};
pub use flat::{HookImport, InstrumentedFunc};
pub use host::{EmptyHost, Host, HostCtx, HostFuncId, HostFunctions};
pub use interp::{Instance, Resumable, StepOutcome, TranslatedModule, DEFAULT_MAX_CALL_DEPTH};
pub use memory::LinearMemory;
pub use reference::Reference;
pub use table::FuncTable;
pub use trap::{InstantiationError, Trap};

/// Runtime values are the same representation as AST constants.
pub use wasabi_wasm::Val as Value;
