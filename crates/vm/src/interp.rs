//! The interpreter: instantiation and execution of validated modules.
//!
//! This is the execution substrate that stands in for the browser engine in
//! the paper's evaluation (DESIGN.md §3). It is a straightforward stack
//! machine over the structured instruction sequence, with branch targets
//! precomputed at instantiation time.

use std::sync::Arc;

use wasabi_wasm::instr::{FunctionSpace, GlobalOp, Idx, Instr, Label, LocalOp, Val};
use wasabi_wasm::module::{GlobalKind, Module};
use wasabi_wasm::validate::validate;

use crate::host::{Host, HostCtx, HostFuncId};
use crate::memory::LinearMemory;
use crate::numeric;
use crate::table::FuncTable;
use crate::trap::{InstantiationError, Trap};

/// Default limit on nested WebAssembly calls.
///
/// Each WebAssembly frame is an interpreter stack frame, so the limit is
/// conservative enough for 2 MiB threads even in debug builds; raise it with
/// [`Instance::set_max_call_depth`] for deeply recursive workloads.
pub const DEFAULT_MAX_CALL_DEPTH: usize = 300;

/// Where a function index leads: interpreted code or a host function.
#[derive(Debug, Clone, Copy)]
enum FuncTarget {
    Wasm,
    Host(HostFuncId),
}

/// Precomputed structured-control-flow targets for one function body.
#[derive(Debug, Clone, Default)]
struct JumpTable {
    /// For `block`/`loop`/`if` at pc: index of the matching `end`.
    end: Vec<u32>,
    /// For `if` at pc: index of the matching `else` (`u32::MAX` if absent).
    else_: Vec<u32>,
}

fn compute_jump_table(body: &[Instr]) -> JumpTable {
    let mut table = JumpTable {
        end: vec![0; body.len()],
        else_: vec![u32::MAX; body.len()],
    };
    let mut open: Vec<usize> = Vec::new();
    for (pc, instr) in body.iter().enumerate() {
        match instr {
            Instr::Block(_) | Instr::Loop(_) | Instr::If(_) => open.push(pc),
            Instr::Else => {
                let if_pc = *open.last().expect("validated: else inside if");
                table.else_[if_pc] = pc as u32;
            }
            Instr::End => {
                if let Some(start) = open.pop() {
                    table.end[start] = pc as u32;
                }
                // else: the function body's own end.
            }
            _ => {}
        }
    }
    table
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CtrlKind {
    Function,
    Block,
    Loop,
    IfOrElse,
}

#[derive(Debug, Clone, Copy)]
struct Ctrl {
    kind: CtrlKind,
    /// pc of the opening instruction.
    start_pc: usize,
    /// pc of the matching `end`.
    end_pc: usize,
    /// Value stack height at entry.
    height: usize,
    /// Number of result values of the block.
    arity: usize,
}

impl Ctrl {
    /// Values carried by a branch to this frame (0 for loops).
    fn label_arity(&self) -> usize {
        if self.kind == CtrlKind::Loop {
            0
        } else {
            self.arity
        }
    }
}

/// An instantiated module, ready to execute.
///
/// # Examples
///
/// ```
/// use wasabi_vm::{Instance, host::EmptyHost};
/// use wasabi_wasm::builder::ModuleBuilder;
/// use wasabi_wasm::{ValType, Val};
///
/// let mut builder = ModuleBuilder::new();
/// builder.function("add1", &[ValType::I32], &[ValType::I32], |f| {
///     f.get_local(0u32).i32_const(1).i32_add();
/// });
/// let mut host = EmptyHost;
/// let mut instance = Instance::instantiate(builder.finish(), &mut host)?;
/// let results = instance.invoke_export("add1", &[Val::I32(41)], &mut host)?;
/// assert_eq!(results, vec![Val::I32(42)]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Instance {
    module: Arc<Module>,
    jump_tables: Arc<Vec<JumpTable>>,
    func_targets: Vec<FuncTarget>,
    memory: Option<LinearMemory>,
    table: Option<FuncTable>,
    globals: Vec<Val>,
    fuel: Option<u64>,
    executed_instrs: u64,
    max_call_depth: usize,
}

impl Instance {
    /// Validate and instantiate `module` against `host`, running data and
    /// element segment initialization and the start function (if any).
    ///
    /// Imported memories and tables are instantiated fresh with their
    /// declared limits (this embedding is single-instance; see DESIGN.md).
    ///
    /// # Errors
    ///
    /// See [`InstantiationError`].
    pub fn instantiate(module: Module, host: &mut dyn Host) -> Result<Self, InstantiationError> {
        validate(&module)?;

        let mut func_targets = Vec::with_capacity(module.functions.len());
        for function in &module.functions {
            match function.import() {
                Some(import) => {
                    let id = host
                        .resolve(&import.module, &import.name, &function.type_)
                        .ok_or_else(|| InstantiationError::UnresolvedFunctionImport {
                            module: import.module.clone(),
                            name: import.name.clone(),
                        })?;
                    func_targets.push(FuncTarget::Host(id));
                }
                None => func_targets.push(FuncTarget::Wasm),
            }
        }

        let mut globals = Vec::with_capacity(module.globals.len());
        for global in &module.globals {
            match &global.kind {
                GlobalKind::Import(import) => {
                    let value = host
                        .resolve_global(&import.module, &import.name, &global.type_)
                        .ok_or_else(|| InstantiationError::UnresolvedGlobalImport {
                            module: import.module.clone(),
                            name: import.name.clone(),
                        })?;
                    globals.push(value);
                }
                GlobalKind::Init(init) => globals.push(eval_const_expr(init, &globals)),
            }
        }

        let mut memory = module
            .memories
            .first()
            .map(|m| LinearMemory::new(m.type_.0));
        if let (Some(mem), Some(memory)) = (module.memories.first(), memory.as_mut()) {
            for data in &mem.data {
                let offset = eval_const_expr(&data.offset, &globals)
                    .as_i32()
                    .expect("validated: i32 offset") as u32;
                memory
                    .init(offset, &data.bytes)
                    .map_err(|_| InstantiationError::DataSegmentOutOfBounds)?;
            }
        }

        let mut table = module.tables.first().map(|t| FuncTable::new(t.type_.0));
        if let (Some(t), Some(table)) = (module.tables.first(), table.as_mut()) {
            for element in &t.elements {
                let offset = eval_const_expr(&element.offset, &globals)
                    .as_i32()
                    .expect("validated: i32 offset") as u32;
                table
                    .init(offset, &element.functions)
                    .map_err(|_| InstantiationError::ElementSegmentOutOfBounds)?;
            }
        }

        let jump_tables = module
            .functions
            .iter()
            .map(|f| {
                f.code()
                    .map(|c| compute_jump_table(&c.body))
                    .unwrap_or_default()
            })
            .collect();

        let mut instance = Instance {
            module: Arc::new(module),
            jump_tables: Arc::new(jump_tables),
            func_targets,
            memory,
            table,
            globals,
            fuel: None,
            executed_instrs: 0,
            max_call_depth: DEFAULT_MAX_CALL_DEPTH,
        };

        if let Some(start) = instance.module.start {
            instance
                .invoke(start, &[], host)
                .map_err(InstantiationError::StartTrapped)?;
        }

        Ok(instance)
    }

    /// Set an optional fuel budget: execution traps with [`Trap::OutOfFuel`]
    /// after this many instructions. `None` disables the limit.
    pub fn set_fuel(&mut self, fuel: Option<u64>) {
        self.fuel = fuel;
    }

    /// Limit on nested WebAssembly calls (default
    /// [`DEFAULT_MAX_CALL_DEPTH`]).
    pub fn set_max_call_depth(&mut self, depth: usize) {
        self.max_call_depth = depth;
    }

    /// Total number of WebAssembly instructions executed by this instance.
    pub fn executed_instrs(&self) -> u64 {
        self.executed_instrs
    }

    /// The module this instance was created from.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The instance's linear memory, if any.
    pub fn memory(&self) -> Option<&LinearMemory> {
        self.memory.as_ref()
    }

    /// Mutable access to the linear memory, if any.
    pub fn memory_mut(&mut self) -> Option<&mut LinearMemory> {
        self.memory.as_mut()
    }

    /// The instance's function table, if any.
    pub fn table(&self) -> Option<&FuncTable> {
        self.table.as_ref()
    }

    /// Current values of all globals.
    pub fn globals(&self) -> &[Val] {
        &self.globals
    }

    /// Invoke an exported function by name.
    ///
    /// # Errors
    ///
    /// Traps propagate; a missing export or argument type mismatch is
    /// reported as a [`Trap::HostError`].
    pub fn invoke_export(
        &mut self,
        name: &str,
        args: &[Val],
        host: &mut dyn Host,
    ) -> Result<Vec<Val>, Trap> {
        let idx = self
            .module
            .export_function(name)
            .ok_or_else(|| Trap::HostError(format!("no exported function {name:?}")))?;
        self.invoke(idx, args, host)
    }

    /// Invoke the function at `func_idx`.
    ///
    /// # Errors
    ///
    /// Traps propagate; argument count/type mismatches are a
    /// [`Trap::HostError`].
    pub fn invoke(
        &mut self,
        func_idx: Idx<FunctionSpace>,
        args: &[Val],
        host: &mut dyn Host,
    ) -> Result<Vec<Val>, Trap> {
        let ty = &self.module.functions[func_idx.to_usize()].type_;
        if ty.params.len() != args.len() || ty.params.iter().zip(args).any(|(&p, a)| a.ty() != p) {
            return Err(Trap::HostError(format!(
                "invoke arguments {args:?} do not match type {ty}"
            )));
        }
        self.call_function(func_idx, args.to_vec(), host, 0)
    }

    fn call_function(
        &mut self,
        func_idx: Idx<FunctionSpace>,
        args: Vec<Val>,
        host: &mut dyn Host,
        depth: usize,
    ) -> Result<Vec<Val>, Trap> {
        if depth >= self.max_call_depth {
            return Err(Trap::CallStackExhausted);
        }
        match self.func_targets[func_idx.to_usize()] {
            FuncTarget::Host(id) => {
                let ctx = HostCtx {
                    memory: self.memory.as_mut(),
                    table: self.table.as_mut(),
                    globals: &mut self.globals,
                };
                host.call(id, &args, ctx)
            }
            FuncTarget::Wasm => self.run_wasm_function(func_idx, args, host, depth),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn run_wasm_function(
        &mut self,
        func_idx: Idx<FunctionSpace>,
        args: Vec<Val>,
        host: &mut dyn Host,
        depth: usize,
    ) -> Result<Vec<Val>, Trap> {
        // Keep the code reachable while `self` is mutated during execution.
        let module = Arc::clone(&self.module);
        let jump_tables = Arc::clone(&self.jump_tables);
        let function = &module.functions[func_idx.to_usize()];
        let code = function.code().expect("call target is a wasm function");
        let body = &code.body;
        let jump = &jump_tables[func_idx.to_usize()];

        let mut locals = args;
        locals.extend(code.locals.iter().map(|&ty| Val::zero(ty)));

        let mut stack: Vec<Val> = Vec::with_capacity(16);
        let mut ctrl: Vec<Ctrl> = Vec::with_capacity(8);
        ctrl.push(Ctrl {
            kind: CtrlKind::Function,
            start_pc: 0,
            end_pc: body.len().saturating_sub(1),
            height: 0,
            arity: function.type_.results.len(),
        });

        let func_arity = function.type_.results.len();
        let mut pc = 0usize;

        macro_rules! pop {
            () => {
                stack.pop().expect("validated: operand on stack")
            };
        }
        macro_rules! pop_i32 {
            () => {
                pop!().as_i32().expect("validated: i32 operand")
            };
        }

        /// Pop the top `n` values, preserving their order.
        fn pop_n(stack: &mut Vec<Val>, n: usize) -> Vec<Val> {
            stack.split_off(stack.len() - n)
        }

        loop {
            self.executed_instrs += 1;
            if let Some(fuel) = self.fuel.as_mut() {
                if *fuel == 0 {
                    return Err(Trap::OutOfFuel);
                }
                *fuel -= 1;
            }

            let instr = &body[pc];
            match instr {
                Instr::Nop => {}
                Instr::Unreachable => return Err(Trap::Unreachable),

                Instr::Block(bt) | Instr::Loop(bt) => {
                    ctrl.push(Ctrl {
                        kind: if matches!(instr, Instr::Loop(_)) {
                            CtrlKind::Loop
                        } else {
                            CtrlKind::Block
                        },
                        start_pc: pc,
                        end_pc: jump.end[pc] as usize,
                        height: stack.len(),
                        arity: usize::from(bt.0.is_some()),
                    });
                }
                Instr::If(bt) => {
                    let cond = pop_i32!();
                    let end_pc = jump.end[pc] as usize;
                    let else_pc = jump.else_[pc];
                    let frame = Ctrl {
                        kind: CtrlKind::IfOrElse,
                        start_pc: pc,
                        end_pc,
                        height: stack.len(),
                        arity: usize::from(bt.0.is_some()),
                    };
                    if cond != 0 {
                        ctrl.push(frame);
                    } else if else_pc != u32::MAX {
                        ctrl.push(frame);
                        pc = else_pc as usize; // continue after the `else`
                    } else {
                        pc = end_pc; // skip the block, including its `end`
                    }
                }
                Instr::Else => {
                    // Falling into `else` means the then-branch finished:
                    // jump to the matching `end` (which pops the frame).
                    pc = ctrl.last().expect("validated: frame").end_pc;
                    continue;
                }
                Instr::End => {
                    let frame = ctrl.pop().expect("validated: frame");
                    if frame.kind == CtrlKind::Function {
                        debug_assert!(ctrl.is_empty());
                        return Ok(pop_n(&mut stack, func_arity));
                    }
                }

                Instr::Br(label) => {
                    if let Some(results) = branch(&mut ctrl, &mut stack, *label, &mut pc) {
                        return Ok(results);
                    }
                    continue;
                }
                Instr::BrIf(label) => {
                    let cond = pop_i32!();
                    if cond != 0 {
                        if let Some(results) = branch(&mut ctrl, &mut stack, *label, &mut pc) {
                            return Ok(results);
                        }
                        continue;
                    }
                }
                Instr::BrTable { table, default } => {
                    let idx = pop_i32!() as u32 as usize;
                    let label = *table.get(idx).unwrap_or(default);
                    if let Some(results) = branch(&mut ctrl, &mut stack, label, &mut pc) {
                        return Ok(results);
                    }
                    continue;
                }
                Instr::Return => {
                    return Ok(pop_n(&mut stack, func_arity));
                }

                Instr::Call(callee) => {
                    let param_count = module.functions[callee.to_usize()].type_.params.len();
                    let args = pop_n(&mut stack, param_count);
                    let results = self.call_function(*callee, args, host, depth + 1)?;
                    stack.extend(results);
                }
                Instr::CallIndirect(expected_ty, _) => {
                    let table_idx = pop_i32!() as u32;
                    let target = self
                        .table
                        .as_ref()
                        .expect("validated: table exists")
                        .lookup(table_idx)?;
                    let actual_ty = &module.functions[target.to_usize()].type_;
                    if actual_ty != expected_ty {
                        return Err(Trap::IndirectCallTypeMismatch);
                    }
                    let args = pop_n(&mut stack, expected_ty.params.len());
                    let results = self.call_function(target, args, host, depth + 1)?;
                    stack.extend(results);
                }

                Instr::Drop => {
                    pop!();
                }
                Instr::Select => {
                    let cond = pop_i32!();
                    let second = pop!();
                    let first = pop!();
                    stack.push(if cond != 0 { first } else { second });
                }

                Instr::Local(op, idx) => match op {
                    LocalOp::Get => stack.push(locals[idx.to_usize()]),
                    LocalOp::Set => locals[idx.to_usize()] = pop!(),
                    LocalOp::Tee => {
                        locals[idx.to_usize()] = *stack.last().expect("validated: operand");
                    }
                },
                Instr::Global(op, idx) => match op {
                    GlobalOp::Get => stack.push(self.globals[idx.to_usize()]),
                    GlobalOp::Set => self.globals[idx.to_usize()] = pop!(),
                },

                Instr::Load(op, memarg) => {
                    let addr = pop_i32!() as u32;
                    let memory = self.memory.as_ref().expect("validated: memory exists");
                    let value = load_value(memory, *op, addr, memarg.offset)?;
                    stack.push(value);
                }
                Instr::Store(op, memarg) => {
                    let value = pop!();
                    let addr = pop_i32!() as u32;
                    let memory = self.memory.as_mut().expect("validated: memory exists");
                    store_value(memory, *op, addr, memarg.offset, value)?;
                }
                Instr::MemorySize(_) => {
                    let memory = self.memory.as_ref().expect("validated: memory exists");
                    stack.push(Val::I32(memory.size_pages() as i32));
                }
                Instr::MemoryGrow(_) => {
                    let delta = pop_i32!() as u32;
                    let memory = self.memory.as_mut().expect("validated: memory exists");
                    stack.push(Val::I32(memory.grow(delta)));
                }

                Instr::Const(val) => stack.push(*val),
                Instr::Unary(op) => {
                    let v = pop!();
                    stack.push(numeric::unary(*op, v)?);
                }
                Instr::Binary(op) => {
                    let b = pop!();
                    let a = pop!();
                    stack.push(numeric::binary(*op, a, b)?);
                }
            }
            pc += 1;
        }
    }
}

/// Perform a branch to `label`. Returns `Some(results)` if the branch leaves
/// the function (branch to the function frame), otherwise updates `pc` to
/// the next instruction.
fn branch(
    ctrl: &mut Vec<Ctrl>,
    stack: &mut Vec<Val>,
    label: Label,
    pc: &mut usize,
) -> Option<Vec<Val>> {
    let target_idx = ctrl.len() - 1 - label.to_usize();
    let target = ctrl[target_idx];
    if target.kind == CtrlKind::Loop {
        // Backward jump: keep the loop frame, restart after the `loop`.
        ctrl.truncate(target_idx + 1);
        stack.truncate(target.height);
        *pc = target.start_pc + 1;
        None
    } else {
        // Forward jump: carry the label arity, drop intermediate values.
        let carried = stack.split_off(stack.len() - target.label_arity());
        stack.truncate(target.height);
        stack.extend(carried);
        ctrl.truncate(target_idx);
        if ctrl.is_empty() {
            // Branch to the function frame: return.
            let n = target.arity;
            return Some(stack.split_off(stack.len() - n));
        }
        *pc = target.end_pc + 1;
        None
    }
}

fn eval_const_expr(expr: &[Instr], globals: &[Val]) -> Val {
    match expr {
        [Instr::Const(val), Instr::End] => *val,
        [Instr::Global(GlobalOp::Get, idx), Instr::End] => globals[idx.to_usize()],
        _ => panic!("validated: unsupported constant expression {expr:?}"),
    }
}

fn load_value(
    memory: &LinearMemory,
    op: wasabi_wasm::LoadOp,
    addr: u32,
    offset: u32,
) -> Result<Val, Trap> {
    use wasabi_wasm::LoadOp::*;
    Ok(match op {
        I32Load => Val::I32(i32::from_le_bytes(memory.read::<4>(addr, offset)?)),
        I64Load => Val::I64(i64::from_le_bytes(memory.read::<8>(addr, offset)?)),
        F32Load => Val::F32(f32::from_le_bytes(memory.read::<4>(addr, offset)?)),
        F64Load => Val::F64(f64::from_le_bytes(memory.read::<8>(addr, offset)?)),
        I32Load8S => Val::I32(i32::from(i8::from_le_bytes(
            memory.read::<1>(addr, offset)?,
        ))),
        I32Load8U => Val::I32(i32::from(u8::from_le_bytes(
            memory.read::<1>(addr, offset)?,
        ))),
        I32Load16S => Val::I32(i32::from(i16::from_le_bytes(
            memory.read::<2>(addr, offset)?,
        ))),
        I32Load16U => Val::I32(i32::from(u16::from_le_bytes(
            memory.read::<2>(addr, offset)?,
        ))),
        I64Load8S => Val::I64(i64::from(i8::from_le_bytes(
            memory.read::<1>(addr, offset)?,
        ))),
        I64Load8U => Val::I64(i64::from(u8::from_le_bytes(
            memory.read::<1>(addr, offset)?,
        ))),
        I64Load16S => Val::I64(i64::from(i16::from_le_bytes(
            memory.read::<2>(addr, offset)?,
        ))),
        I64Load16U => Val::I64(i64::from(u16::from_le_bytes(
            memory.read::<2>(addr, offset)?,
        ))),
        I64Load32S => Val::I64(i64::from(i32::from_le_bytes(
            memory.read::<4>(addr, offset)?,
        ))),
        I64Load32U => Val::I64(i64::from(u32::from_le_bytes(
            memory.read::<4>(addr, offset)?,
        ))),
    })
}

fn store_value(
    memory: &mut LinearMemory,
    op: wasabi_wasm::StoreOp,
    addr: u32,
    offset: u32,
    value: Val,
) -> Result<(), Trap> {
    use wasabi_wasm::StoreOp::*;
    match op {
        I32Store => memory.write::<4>(
            addr,
            offset,
            value.as_i32().expect("validated").to_le_bytes(),
        ),
        I64Store => memory.write::<8>(
            addr,
            offset,
            value.as_i64().expect("validated").to_le_bytes(),
        ),
        F32Store => memory.write::<4>(
            addr,
            offset,
            value.as_f32().expect("validated").to_le_bytes(),
        ),
        F64Store => memory.write::<8>(
            addr,
            offset,
            value.as_f64().expect("validated").to_le_bytes(),
        ),
        I32Store8 => memory.write::<1>(
            addr,
            offset,
            [(value.as_i32().expect("validated") & 0xff) as u8],
        ),
        I32Store16 => memory.write::<2>(
            addr,
            offset,
            ((value.as_i32().expect("validated") & 0xffff) as u16).to_le_bytes(),
        ),
        I64Store8 => memory.write::<1>(
            addr,
            offset,
            [(value.as_i64().expect("validated") & 0xff) as u8],
        ),
        I64Store16 => memory.write::<2>(
            addr,
            offset,
            ((value.as_i64().expect("validated") & 0xffff) as u16).to_le_bytes(),
        ),
        I64Store32 => memory.write::<4>(
            addr,
            offset,
            ((value.as_i64().expect("validated") & 0xffff_ffff) as u32).to_le_bytes(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{EmptyHost, HostFunctions};
    use wasabi_wasm::builder::ModuleBuilder;
    use wasabi_wasm::instr::BinaryOp;
    use wasabi_wasm::types::ValType;

    fn run(
        build: impl FnOnce(&mut ModuleBuilder),
        export: &str,
        args: &[Val],
    ) -> Result<Vec<Val>, Trap> {
        let mut builder = ModuleBuilder::new();
        build(&mut builder);
        let mut host = EmptyHost;
        let mut instance =
            Instance::instantiate(builder.finish(), &mut host).expect("instantiates");
        instance.invoke_export(export, args, &mut host)
    }

    #[test]
    fn arithmetic_function() {
        let r = run(
            |b| {
                b.function("mul_add", &[ValType::I32; 3], &[ValType::I32], |f| {
                    f.get_local(0u32)
                        .get_local(1u32)
                        .i32_mul()
                        .get_local(2u32)
                        .i32_add();
                });
            },
            "mul_add",
            &[Val::I32(6), Val::I32(7), Val::I32(8)],
        )
        .unwrap();
        assert_eq!(r, vec![Val::I32(50)]);
    }

    #[test]
    fn loop_sums_first_n_integers() {
        let r = run(
            |b| {
                b.function("sum", &[ValType::I32], &[ValType::I32], |f| {
                    let i = f.local(ValType::I32);
                    let acc = f.local(ValType::I32);
                    f.block(None).loop_(None);
                    f.get_local(i)
                        .get_local(0u32)
                        .binary(BinaryOp::I32GeS)
                        .br_if(1);
                    f.get_local(acc).get_local(i).i32_add().set_local(acc);
                    f.get_local(i).i32_const(1).i32_add().set_local(i);
                    f.br(0).end().end();
                    f.get_local(acc);
                });
            },
            "sum",
            &[Val::I32(10)],
        )
        .unwrap();
        assert_eq!(r, vec![Val::I32(45)]);
    }

    #[test]
    fn if_else_branches() {
        let build = |b: &mut ModuleBuilder| {
            b.function("abs", &[ValType::I32], &[ValType::I32], |f| {
                f.get_local(0u32).i32_const(0).binary(BinaryOp::I32LtS);
                f.if_(Some(ValType::I32));
                f.i32_const(0).get_local(0u32).i32_sub();
                f.else_();
                f.get_local(0u32);
                f.end();
            });
        };
        assert_eq!(
            run(build, "abs", &[Val::I32(-5)]).unwrap(),
            vec![Val::I32(5)]
        );
        assert_eq!(
            run(build, "abs", &[Val::I32(7)]).unwrap(),
            vec![Val::I32(7)]
        );
    }

    #[test]
    fn if_without_else_skips() {
        let build = |b: &mut ModuleBuilder| {
            b.function("f", &[ValType::I32], &[ValType::I32], |f| {
                let r = f.local(ValType::I32);
                f.i32_const(1).set_local(r);
                f.get_local(0u32).if_(None);
                f.i32_const(99).set_local(r);
                f.end();
                f.get_local(r);
            });
        };
        assert_eq!(run(build, "f", &[Val::I32(0)]).unwrap(), vec![Val::I32(1)]);
        assert_eq!(run(build, "f", &[Val::I32(1)]).unwrap(), vec![Val::I32(99)]);
    }

    #[test]
    fn paper_figure_4_branch_targets() {
        // block block get_local 0 br_if 1 (X) end (Y) end
        // local = true jumps to after the outer block.
        let build = |b: &mut ModuleBuilder| {
            b.function("f", &[ValType::I32], &[ValType::I32], |f| {
                let r = f.local(ValType::I32);
                f.block(None).block(None);
                f.get_local(0u32).br_if(1);
                f.get_local(r).i32_const(1).i32_add().set_local(r); // skipped if taken
                f.end();
                f.get_local(r).i32_const(10).i32_add().set_local(r); // skipped if taken
                f.end();
                f.get_local(r);
            });
        };
        assert_eq!(run(build, "f", &[Val::I32(1)]).unwrap(), vec![Val::I32(0)]);
        assert_eq!(run(build, "f", &[Val::I32(0)]).unwrap(), vec![Val::I32(11)]);
    }

    #[test]
    fn br_table_dispatch() {
        let build = |b: &mut ModuleBuilder| {
            b.function("classify", &[ValType::I32], &[ValType::I32], |f| {
                f.block(None).block(None).block(None);
                f.get_local(0u32).br_table(vec![0, 1], 2);
                f.end();
                f.i32_const(100).return_();
                f.end();
                f.i32_const(200).return_();
                f.end();
                f.i32_const(300);
            });
        };
        assert_eq!(
            run(build, "classify", &[Val::I32(0)]).unwrap(),
            vec![Val::I32(100)]
        );
        assert_eq!(
            run(build, "classify", &[Val::I32(1)]).unwrap(),
            vec![Val::I32(200)]
        );
        assert_eq!(
            run(build, "classify", &[Val::I32(7)]).unwrap(),
            vec![Val::I32(300)]
        );
    }

    #[test]
    fn memory_roundtrip_and_narrow_accesses() {
        use wasabi_wasm::{LoadOp, StoreOp};
        let r = run(
            |b| {
                b.memory(1, None);
                b.function("f", &[], &[ValType::I32], |f| {
                    f.i32_const(16).i32_const(-2).store(StoreOp::I32Store, 0);
                    f.i32_const(16).load(LoadOp::I32Load8U, 0);
                });
            },
            "f",
            &[],
        )
        .unwrap();
        assert_eq!(r, vec![Val::I32(0xfe)]);
    }

    #[test]
    fn oob_memory_access_traps() {
        use wasabi_wasm::LoadOp;
        let r = run(
            |b| {
                b.memory(1, None);
                b.function("f", &[], &[ValType::I32], |f| {
                    f.i32_const(65536).load(LoadOp::I32Load, 0);
                });
            },
            "f",
            &[],
        );
        assert_eq!(r.unwrap_err(), Trap::OutOfBoundsMemoryAccess);
    }

    #[test]
    fn memory_grow_and_size() {
        let r = run(
            |b| {
                b.memory(1, None);
                b.function("f", &[], &[ValType::I32], |f| {
                    f.i32_const(2).memory_grow().drop_();
                    f.memory_size();
                });
            },
            "f",
            &[],
        )
        .unwrap();
        assert_eq!(r, vec![Val::I32(3)]);
    }

    #[test]
    fn direct_calls() {
        let r = run(
            |b| {
                let sq = b.function("", &[ValType::I32], &[ValType::I32], |f| {
                    f.get_local(0u32).get_local(0u32).i32_mul();
                });
                b.function("sq_plus_one", &[ValType::I32], &[ValType::I32], |f| {
                    f.get_local(0u32).call(sq).i32_const(1).i32_add();
                });
            },
            "sq_plus_one",
            &[Val::I32(9)],
        )
        .unwrap();
        assert_eq!(r, vec![Val::I32(82)]);
    }

    #[test]
    fn indirect_calls_with_type_check() {
        let r = run(
            |b| {
                let id = b.function("", &[ValType::I32], &[ValType::I32], |f| {
                    f.get_local(0u32);
                });
                let dbl = b.function("", &[ValType::I32], &[ValType::I32], |f| {
                    f.get_local(0u32).i32_const(2).i32_mul();
                });
                b.table(2);
                b.elements(0, vec![id, dbl]);
                b.function(
                    "dispatch",
                    &[ValType::I32, ValType::I32],
                    &[ValType::I32],
                    |f| {
                        f.get_local(1u32).get_local(0u32);
                        f.call_indirect(&[ValType::I32], &[ValType::I32]);
                    },
                );
            },
            "dispatch",
            &[Val::I32(1), Val::I32(21)],
        )
        .unwrap();
        assert_eq!(r, vec![Val::I32(42)]);
    }

    #[test]
    fn indirect_call_type_mismatch_traps() {
        let r = run(
            |b| {
                let nullary = b.function("", &[], &[], |_| {});
                b.table(1);
                b.elements(0, vec![nullary]);
                b.function("f", &[], &[ValType::I32], |f| {
                    f.i32_const(0).i32_const(0);
                    f.call_indirect(&[ValType::I32], &[ValType::I32]);
                });
            },
            "f",
            &[],
        );
        assert_eq!(r.unwrap_err(), Trap::IndirectCallTypeMismatch);
    }

    #[test]
    fn host_function_call() {
        let mut builder = ModuleBuilder::new();
        let log = builder.import_function("env", "log", &[ValType::I32], &[]);
        builder.function("f", &[], &[], |f| {
            f.i32_const(7).call(log);
            f.i32_const(8).call(log);
        });
        let mut host = HostFunctions::new();
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let seen2 = std::rc::Rc::clone(&seen);
        host.register("env", "log", move |args, _ctx| {
            seen2.borrow_mut().push(args[0]);
            Ok(vec![])
        });
        let mut instance = Instance::instantiate(builder.finish(), &mut host).unwrap();
        instance.invoke_export("f", &[], &mut host).unwrap();
        assert_eq!(*seen.borrow(), vec![Val::I32(7), Val::I32(8)]);
    }

    #[test]
    fn unresolved_import_fails_instantiation() {
        let mut builder = ModuleBuilder::new();
        builder.import_function("env", "missing", &[], &[]);
        let mut host = EmptyHost;
        let err = Instance::instantiate(builder.finish(), &mut host).unwrap_err();
        assert!(matches!(
            err,
            InstantiationError::UnresolvedFunctionImport { .. }
        ));
    }

    #[test]
    fn start_function_runs_at_instantiation() {
        let mut builder = ModuleBuilder::new();
        let g = builder.global(Val::I32(0));
        let start = builder.function("", &[], &[], |f| {
            f.i32_const(42).set_global(g);
        });
        builder.start(start);
        let mut host = EmptyHost;
        let instance = Instance::instantiate(builder.finish(), &mut host).unwrap();
        assert_eq!(instance.globals()[0], Val::I32(42));
    }

    #[test]
    fn data_segments_initialize_memory() {
        let mut builder = ModuleBuilder::new();
        builder.memory(1, None);
        builder.data(10, vec![0xaa, 0xbb]);
        builder.function("f", &[], &[], |_| {});
        let mut host = EmptyHost;
        let instance = Instance::instantiate(builder.finish(), &mut host).unwrap();
        let mem = instance.memory().unwrap();
        assert_eq!(mem.as_slice()[10], 0xaa);
        assert_eq!(mem.as_slice()[11], 0xbb);
    }

    #[test]
    fn out_of_bounds_data_segment_fails() {
        let mut builder = ModuleBuilder::new();
        builder.memory(1, None);
        builder.data(65535, vec![1, 2, 3]);
        builder.function("f", &[], &[], |_| {});
        let mut host = EmptyHost;
        let err = Instance::instantiate(builder.finish(), &mut host).unwrap_err();
        assert_eq!(err, InstantiationError::DataSegmentOutOfBounds);
    }

    #[test]
    fn unreachable_traps() {
        let r = run(
            |b| {
                b.function("f", &[], &[], |f| {
                    f.unreachable();
                });
            },
            "f",
            &[],
        );
        assert_eq!(r.unwrap_err(), Trap::Unreachable);
    }

    #[test]
    fn fuel_limits_execution() {
        let mut builder = ModuleBuilder::new();
        builder.function("spin", &[], &[], |f| {
            f.loop_(None).br(0).end();
        });
        let mut host = EmptyHost;
        let mut instance = Instance::instantiate(builder.finish(), &mut host).unwrap();
        instance.set_fuel(Some(10_000));
        let err = instance.invoke_export("spin", &[], &mut host).unwrap_err();
        assert_eq!(err, Trap::OutOfFuel);
    }

    #[test]
    fn call_stack_exhaustion_traps() {
        let mut builder = ModuleBuilder::new();
        // Direct infinite recursion.
        let mut module = {
            builder.function("rec", &[], &[], |_| {});
            builder.finish()
        };
        // Patch the body to call itself (builder has no self-reference).
        let self_idx = module.export_function("rec").unwrap();
        module.functions[self_idx.to_usize()]
            .code_mut()
            .unwrap()
            .body
            .insert(0, Instr::Call(self_idx));
        let mut host = EmptyHost;
        let mut instance = Instance::instantiate(module, &mut host).unwrap();
        instance.set_max_call_depth(64);
        let err = instance.invoke_export("rec", &[], &mut host).unwrap_err();
        assert_eq!(err, Trap::CallStackExhausted);
    }

    #[test]
    fn executed_instr_count_increases() {
        let mut builder = ModuleBuilder::new();
        builder.function("f", &[], &[ValType::I32], |f| {
            f.i32_const(1).i32_const(2).i32_add();
        });
        let mut host = EmptyHost;
        let mut instance = Instance::instantiate(builder.finish(), &mut host).unwrap();
        instance.invoke_export("f", &[], &mut host).unwrap();
        // const, const, add, end
        assert_eq!(instance.executed_instrs(), 4);
    }

    #[test]
    fn select_picks_operand() {
        let build = |b: &mut ModuleBuilder| {
            b.function("f", &[ValType::I32], &[ValType::I32], |f| {
                f.i32_const(10).i32_const(20).get_local(0u32).select();
            });
        };
        assert_eq!(run(build, "f", &[Val::I32(1)]).unwrap(), vec![Val::I32(10)]);
        assert_eq!(run(build, "f", &[Val::I32(0)]).unwrap(), vec![Val::I32(20)]);
    }

    #[test]
    fn block_with_result_via_branch() {
        let r = run(
            |b| {
                b.function("f", &[], &[ValType::I32], |f| {
                    f.block(Some(ValType::I32));
                    f.i32_const(5);
                    f.br(0);
                    f.end();
                });
            },
            "f",
            &[],
        )
        .unwrap();
        assert_eq!(r, vec![Val::I32(5)]);
    }

    #[test]
    fn invoke_argument_validation() {
        let mut builder = ModuleBuilder::new();
        builder.function("f", &[ValType::I32], &[], |_| {});
        let mut host = EmptyHost;
        let mut instance = Instance::instantiate(builder.finish(), &mut host).unwrap();
        let err = instance
            .invoke_export("f", &[Val::F64(1.0)], &mut host)
            .unwrap_err();
        assert!(matches!(err, Trap::HostError(_)));
    }
}
